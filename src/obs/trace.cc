#include "obs/trace.h"

#include "obs/json.h"

namespace sigsetdb {

namespace {

void WriteSpan(JsonWriter* w, const TraceSpan& span) {
  w->BeginObject();
  w->Field("name", span.name);
  w->Field("page_reads", span.page_reads);
  w->Field("page_writes", span.page_writes);
  w->Field("pages", span.pages());
  if (span.pages_skipped > 0) w->Field("pages_skipped", span.pages_skipped);
  if (span.pages_cow > 0) w->Field("pages_cow", span.pages_cow);
  if (span.pages_hot > 0) w->Field("pages_hot", span.pages_hot);
  if (span.wall_ms > 0.0) w->Field("wall_ms", span.wall_ms);
  if (span.predicted_pages >= 0.0) {
    w->Field("predicted_pages", span.predicted_pages);
  }
  if (span.candidates >= 0) w->Field("candidates", span.candidates);
  if (span.false_drops >= 0) w->Field("false_drops", span.false_drops);
  if (!span.children.empty()) {
    w->Key("children");
    w->BeginArray();
    for (const TraceSpan& child : span.children) WriteSpan(w, child);
    w->EndArray();
  }
  w->EndObject();
}

}  // namespace

TraceSpan* TraceSpan::FindChild(const std::string& child_name) {
  for (TraceSpan& child : children) {
    if (child.name == child_name) return &child;
  }
  return nullptr;
}

TraceSpan* QueryTrace::AddStage(std::string name) {
  stages_.emplace_back();
  stages_.back().name = std::move(name);
  return &stages_.back();
}

TraceSpan* AddSnapshotStage(QueryTrace* trace, std::string name,
                            const IoSnapshots& before,
                            const IoSnapshots& after) {
  TraceSpan* span = trace->AddStage(std::move(name));
  for (size_t i = 0; i < after.size() && i < before.size(); ++i) {
    const IoStats delta = after[i].second - before[i].second;
    TraceSpan child;
    child.name = after[i].first;
    child.page_reads = delta.reads();
    child.page_writes = delta.writes();
    child.pages_skipped = delta.skips();
    child.pages_cow = delta.cows();
    child.pages_hot = delta.hots();
    span->page_reads += delta.reads();
    span->page_writes += delta.writes();
    span->pages_skipped += delta.skips();
    span->pages_cow += delta.cows();
    span->pages_hot += delta.hots();
    span->children.push_back(std::move(child));
  }
  return span;
}

uint64_t QueryTrace::TotalReads() const {
  uint64_t total = 0;
  for (const TraceSpan& s : stages_) total += s.page_reads;
  return total;
}

uint64_t QueryTrace::TotalWrites() const {
  uint64_t total = 0;
  for (const TraceSpan& s : stages_) total += s.page_writes;
  return total;
}

uint64_t QueryTrace::TotalSkipped() const {
  uint64_t total = 0;
  for (const TraceSpan& s : stages_) total += s.pages_skipped;
  return total;
}

uint64_t QueryTrace::TotalCow() const {
  uint64_t total = 0;
  for (const TraceSpan& s : stages_) total += s.pages_cow;
  return total;
}

uint64_t QueryTrace::TotalHot() const {
  uint64_t total = 0;
  for (const TraceSpan& s : stages_) total += s.pages_hot;
  return total;
}

double QueryTrace::TotalWallMs() const {
  double total = 0;
  for (const TraceSpan& s : stages_) total += s.wall_ms;
  return total;
}

std::string QueryTrace::ToJson() const {
  JsonWriter w;
  w.BeginObject();
  w.Field("plan", plan);
  w.Field("kind", kind);
  w.Field("dq", dq);
  w.Field("measured_reads", TotalReads());
  w.Field("measured_writes", TotalWrites());
  w.Field("measured_pages", TotalPages());
  if (TotalSkipped() > 0) w.Field("measured_skipped", TotalSkipped());
  if (TotalCow() > 0) w.Field("measured_cow", TotalCow());
  if (TotalHot() > 0) w.Field("measured_hot", TotalHot());
  if (predicted_total >= 0.0) w.Field("predicted_total", predicted_total);
  w.Field("wall_ms", TotalWallMs());
  w.Key("stages");
  w.BeginArray();
  for (const TraceSpan& s : stages_) WriteSpan(&w, s);
  w.EndArray();
  w.EndObject();
  return w.str();
}

}  // namespace sigsetdb
