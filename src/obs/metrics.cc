#include "obs/metrics.h"

#include <bit>
#include <vector>

#include "obs/json.h"

namespace sigsetdb {

size_t Histogram::BucketFor(uint64_t value) {
  if (value == 0) return 0;
  return static_cast<size_t>(64 - std::countl_zero(value));
}

uint64_t Histogram::BucketLowerBound(size_t i) {
  if (i == 0) return 0;
  return uint64_t{1} << (i - 1);
}

void Histogram::Record(uint64_t value) {
  buckets_[BucketFor(value)].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(value, std::memory_order_relaxed);
}

double Histogram::mean() const {
  uint64_t n = count();
  return n == 0 ? 0.0 : static_cast<double>(sum()) / static_cast<double>(n);
}

uint64_t Histogram::Percentile(double p) const {
  if (p < 0.0) p = 0.0;
  if (p > 1.0) p = 1.0;
  uint64_t n = count();
  if (n == 0) return 0;
  // Rank of the requested quantile, 1-based.
  uint64_t rank = static_cast<uint64_t>(p * static_cast<double>(n - 1)) + 1;
  uint64_t seen = 0;
  for (size_t i = 0; i < kNumBuckets; ++i) {
    seen += bucket_count(i);
    if (seen >= rank) {
      // Upper bound of bucket i (its lower bound for the zero bucket).
      return i == 0 ? 0 : (uint64_t{1} << i) - 1;
    }
  }
  return BucketLowerBound(kNumBuckets - 1);
}

void Histogram::Reset() {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0, std::memory_order_relaxed);
}

Counter* MetricsRegistry::counter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = counters_[name];
  if (slot == nullptr) slot = std::make_unique<Counter>();
  return slot.get();
}

Gauge* MetricsRegistry::gauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = gauges_[name];
  if (slot == nullptr) slot = std::make_unique<Gauge>();
  return slot.get();
}

Histogram* MetricsRegistry::histogram(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = histograms_[name];
  if (slot == nullptr) slot = std::make_unique<Histogram>();
  return slot.get();
}

uint64_t MetricsRegistry::CounterValue(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = counters_.find(name);
  return it == counters_.end() ? 0 : it->second->value();
}

double MetricsRegistry::GaugeValue(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = gauges_.find(name);
  return it == gauges_.end() ? 0.0 : it->second->value();
}

const Histogram* MetricsRegistry::FindHistogram(
    const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = histograms_.find(name);
  return it == histograms_.end() ? nullptr : it->second.get();
}

void MetricsRegistry::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, c] : counters_) c->Reset();
  for (auto& [name, g] : gauges_) g->Reset();
  for (auto& [name, h] : histograms_) h->Reset();
}

MetricsSnapshot MetricsRegistry::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  MetricsSnapshot snap;
  snap.counters.reserve(counters_.size());
  for (const auto& [name, c] : counters_) {
    snap.counters.emplace_back(name, c->value());
  }
  snap.gauges.reserve(gauges_.size());
  for (const auto& [name, g] : gauges_) {
    snap.gauges.emplace_back(name, g->value());
  }
  snap.histograms.reserve(histograms_.size());
  for (const auto& [name, h] : histograms_) {
    HistogramSnapshot hs;
    hs.name = name;
    hs.count = h->count();
    hs.sum = h->sum();
    for (size_t i = 0; i < Histogram::kNumBuckets; ++i) {
      hs.buckets[i] = h->bucket_count(i);
    }
    snap.histograms.push_back(std::move(hs));
  }
  return snap;
}

std::string MetricsRegistry::ToJson() const {
  std::lock_guard<std::mutex> lock(mu_);
  JsonWriter w;
  w.BeginObject();
  w.Key("counters");
  w.BeginObject();
  for (const auto& [name, c] : counters_) w.Field(name, c->value());
  w.EndObject();
  w.Key("gauges");
  w.BeginObject();
  for (const auto& [name, g] : gauges_) w.Field(name, g->value());
  w.EndObject();
  w.Key("histograms");
  w.BeginObject();
  for (const auto& [name, h] : histograms_) {
    w.Key(name);
    w.BeginObject();
    w.Field("count", h->count());
    w.Field("sum", h->sum());
    w.Field("mean", h->mean());
    w.Field("p50", h->Percentile(0.5));
    w.Field("p95", h->Percentile(0.95));
    w.Field("p99", h->Percentile(0.99));
    w.EndObject();
  }
  w.EndObject();
  w.EndObject();
  return w.str();
}

void MetricsRegistry::Render(std::ostream& os) const {
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& [name, c] : counters_) {
    os << name << " = " << c->value() << "\n";
  }
  for (const auto& [name, g] : gauges_) {
    os << name << " = " << g->value() << "\n";
  }
  for (const auto& [name, h] : histograms_) {
    os << name << " = {count=" << h->count() << " mean=" << h->mean()
       << " p50=" << h->Percentile(0.5) << " p99=" << h->Percentile(0.99)
       << "}\n";
  }
}

}  // namespace sigsetdb
