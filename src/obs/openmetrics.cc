#include "obs/openmetrics.h"

#include <algorithm>
#include <cinttypes>
#include <cstdarg>
#include <cstdint>
#include <cstdio>

namespace sigsetdb {

namespace {

void AppendF(std::string* out, const char* fmt, ...) {
  char buf[256];
  va_list args;
  va_start(args, fmt);
  const int n = std::vsnprintf(buf, sizeof(buf), fmt, args);
  va_end(args);
  if (n > 0) out->append(buf, std::min(static_cast<size_t>(n), sizeof(buf)));
}

// %.17g round-trips doubles; OpenMetrics wants plain decimal or scientific.
void AppendDouble(std::string* out, double v) {
  AppendF(out, "%.17g", v);
}

}  // namespace

std::string SanitizeMetricName(const std::string& name) {
  std::string out;
  out.reserve(name.size());
  for (char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_';
    out.push_back(ok ? c : '_');
  }
  return out;
}

std::string ExportOpenMetrics(const MetricsRegistry& registry,
                              const std::string& prefix) {
  const MetricsSnapshot snap = registry.Snapshot();
  std::string out;

  for (const auto& [name, value] : snap.counters) {
    const std::string metric = prefix + "_" + SanitizeMetricName(name);
    out += "# TYPE " + metric + " counter\n";
    AppendF(&out, "%s_total %" PRIu64 "\n", metric.c_str(), value);
  }
  for (const auto& [name, value] : snap.gauges) {
    const std::string metric = prefix + "_" + SanitizeMetricName(name);
    out += "# TYPE " + metric + " gauge\n";
    out += metric + " ";
    AppendDouble(&out, value);
    out += "\n";
  }
  for (const HistogramSnapshot& h : snap.histograms) {
    const std::string metric = prefix + "_" + SanitizeMetricName(h.name);
    out += "# TYPE " + metric + " histogram\n";
    // Cumulative buckets.  Bucket 0 holds exactly the value 0 and bucket
    // i >= 1 holds [2^(i-1), 2^i), so its inclusive upper bound is 2^i - 1.
    // Empty tail buckets collapse into +Inf.
    size_t highest = 0;
    for (size_t i = 0; i < h.buckets.size(); ++i) {
      if (h.buckets[i] != 0) highest = i;
    }
    uint64_t cumulative = 0;
    for (size_t i = 0; i <= highest; ++i) {
      cumulative += h.buckets[i];
      const uint64_t le = i == 0 ? 0
                          : i >= 64 ? UINT64_MAX
                                    : (uint64_t{1} << i) - 1;
      AppendF(&out, "%s_bucket{le=\"%" PRIu64 "\"} %" PRIu64 "\n",
              metric.c_str(), le, cumulative);
    }
    AppendF(&out, "%s_bucket{le=\"+Inf\"} %" PRIu64 "\n", metric.c_str(),
            h.count);
    AppendF(&out, "%s_sum %" PRIu64 "\n", metric.c_str(), h.sum);
    AppendF(&out, "%s_count %" PRIu64 "\n", metric.c_str(), h.count);
  }
  out += "# EOF\n";
  return out;
}

Status WriteOpenMetricsFile(const MetricsRegistry& registry,
                            const std::string& path,
                            const std::string& prefix) {
  const std::string body = ExportOpenMetrics(registry, prefix);
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    return Status::IoError("cannot open metrics file " + path);
  }
  const size_t written = std::fwrite(body.data(), 1, body.size(), f);
  const int closed = std::fclose(f);
  if (written != body.size() || closed != 0) {
    return Status::IoError("short write to metrics file " + path);
  }
  return Status::OK();
}

}  // namespace sigsetdb
