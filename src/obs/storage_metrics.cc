#include "obs/storage_metrics.h"

namespace sigsetdb {

namespace {

// Raises the registry counter to `live` (counters are monotonic; a live
// value below the counter — e.g. after a pool swap — leaves it unchanged).
void SyncCounter(MetricsRegistry* registry, const std::string& name,
                 uint64_t live) {
  Counter* counter = registry->counter(name);
  const uint64_t current = counter->value();
  if (live > current) counter->Increment(live - current);
}

}  // namespace

void ExportBufferPoolMetrics(const CachedPageFile& pool,
                             const std::string& prefix,
                             MetricsRegistry* registry) {
  SyncCounter(registry, prefix + ".hits", pool.hits());
  SyncCounter(registry, prefix + ".misses", pool.misses());
  SyncCounter(registry, prefix + ".evictions", pool.evictions());
  for (size_t s = 0; s < pool.num_shards(); ++s) {
    const std::string shard = prefix + ".shard" + std::to_string(s);
    SyncCounter(registry, shard + ".hits", pool.shard_hits(s));
    SyncCounter(registry, shard + ".misses", pool.shard_misses(s));
    SyncCounter(registry, shard + ".evictions", pool.shard_evictions(s));
  }
}

void ExportStorageMetrics(const StorageManager& storage,
                          MetricsRegistry* registry) {
  uint64_t hits = 0, misses = 0, evictions = 0;
  bool any_pool = false;
  storage.ForEachFile([&](const PageFile& file) {
    SyncCounter(registry, "io." + file.name() + ".reads",
                file.stats().reads());
    SyncCounter(registry, "io." + file.name() + ".writes",
                file.stats().writes());
    if (file.stats().skips() > 0) {
      SyncCounter(registry, "io." + file.name() + ".skipped",
                  file.stats().skips());
    }
    if (file.stats().cows() > 0) {
      SyncCounter(registry, "io." + file.name() + ".cow",
                  file.stats().cows());
    }
    if (file.stats().hots() > 0) {
      SyncCounter(registry, "io." + file.name() + ".hot",
                  file.stats().hots());
    }
    const auto* pool = dynamic_cast<const CachedPageFile*>(&file);
    if (pool != nullptr) {
      any_pool = true;
      hits += pool->hits();
      misses += pool->misses();
      evictions += pool->evictions();
      ExportBufferPoolMetrics(*pool, "buffer." + file.name(), registry);
    }
  });
  if (any_pool) {
    SyncCounter(registry, "buffer.hits", hits);
    SyncCounter(registry, "buffer.misses", misses);
    SyncCounter(registry, "buffer.evictions", evictions);
  }
}

}  // namespace sigsetdb
