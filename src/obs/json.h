// Minimal JSON emitter shared by the observability exporters (metrics
// snapshots, query traces, bench records).
//
// The writer is append-only and streaming: callers open objects/arrays,
// emit keys and scalar values, and read the finished document from str().
// Comma/colon placement is tracked internally, so call sites read like the
// document they produce.  No external JSON dependency — the container image
// is frozen, and the subset needed here (objects, arrays, strings, numbers,
// booleans) is small enough to own.

#ifndef SIGSET_OBS_JSON_H_
#define SIGSET_OBS_JSON_H_

#include <cstdint>
#include <string>
#include <vector>

namespace sigsetdb {

// Streaming JSON document builder.
//
//   JsonWriter w;
//   w.BeginObject();
//   w.Key("pages"); w.Uint(42);
//   w.Key("stages"); w.BeginArray(); ... w.EndArray();
//   w.EndObject();
//   std::string doc = w.str();
class JsonWriter {
 public:
  void BeginObject();
  void EndObject();
  void BeginArray();
  void EndArray();

  // Emits the member key inside an object; the next value call completes
  // the member.
  void Key(const std::string& key);

  void String(const std::string& value);
  void Uint(uint64_t value);
  void Int(int64_t value);
  // Finite doubles are printed with enough precision to round-trip; NaN and
  // infinities (not representable in JSON) are emitted as null.
  void Double(double value);
  void Bool(bool value);
  void Null();

  // Convenience: Key + scalar in one call.
  void Field(const std::string& key, const std::string& value);
  void Field(const std::string& key, const char* value);
  void Field(const std::string& key, uint64_t value);
  void Field(const std::string& key, int64_t value);
  void Field(const std::string& key, double value);
  void Field(const std::string& key, bool value);

  // Key + Double, with negative values emitted as null — the library-wide
  // convention for "not measured / no model counterpart" sentinels (bench
  // records, trace predictions).
  void FieldOrNull(const std::string& key, double value);

  const std::string& str() const { return out_; }

  // JSON string escaping (quotes, backslashes, control characters).
  static std::string Escape(const std::string& s);

 private:
  // Emits the separator a new value needs at the current position.
  void BeforeValue();

  std::string out_;
  // One entry per open container: true once it holds at least one element.
  std::vector<bool> has_elements_;
  bool after_key_ = false;
};

}  // namespace sigsetdb

#endif  // SIGSET_OBS_JSON_H_
