// DriftWatchdog: monitors measured-vs-predicted cost residuals.
//
// The paper's §4 cost model is this repo's performance oracle; the
// observability layer already pairs every traced stage with the model's
// prediction for exactly that stage (model/cost_breakdown.h).  The watchdog
// closes the loop operationally: it accumulates the residuals per
// (facility, stage) key, exports running means as drift.* metrics, and —
// when the mean residual exceeds configurable absolute AND relative bounds
// over enough samples — raises a structured warning: a drift.warnings
// counter tick plus a kDriftWarning flight-recorder event naming the stage.
//
// Observation sits off the query hot path (one mutex-guarded accumulate per
// traced stage, a few per query); the per-op recording discipline stays
// with the lock-free histograms.

#ifndef SIGSET_OBS_DRIFT_WATCHDOG_H_
#define SIGSET_OBS_DRIFT_WATCHDOG_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "obs/flight_recorder.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace sigsetdb {

struct DriftOptions {
  // A stage is flagged only when its mean |measured - predicted| exceeds
  // BOTH bounds: more than `abs_tolerance_pages` pages off AND more than
  // `rel_tolerance` of the mean prediction.  The conjunction keeps tiny
  // stages (predicted 0.1 pages, measured 2) and large stages (predicted
  // 4000, measured 4100) from flapping.
  double rel_tolerance = 1.0;
  double abs_tolerance_pages = 16.0;
  // Residual means are noise below this many observations; no warning
  // fires earlier.
  uint64_t min_samples = 32;
};

class DriftWatchdog {
 public:
  // `metrics` receives the drift.* exports (required); `recorder` receives
  // warning events (may be nullptr).  Neither is owned.
  DriftWatchdog(MetricsRegistry* metrics, FlightRecorder* recorder,
                DriftOptions options);

  // One stage observation, in pages.
  void Observe(const std::string& stage, double measured, double predicted);

  // Feeds every prediction-carrying stage of a finished trace, keyed
  // "<facility>.<stage>" (plus "<facility>.total" when the trace carries a
  // whole-plan prediction).
  void ObserveTrace(const QueryTrace& trace);

  struct StageStats {
    uint64_t samples = 0;
    double sum_measured = 0;
    double sum_predicted = 0;
    double sum_abs_residual = 0;
    bool warning = false;  // currently outside bounds

    double mean_abs_residual() const {
      return samples == 0 ? 0.0 : sum_abs_residual / samples;
    }
    // Mean residual relative to the mean prediction (floored at one page so
    // near-zero predictions don't divide to infinity).
    double mean_rel_residual() const {
      if (samples == 0) return 0.0;
      const double mean_pred = sum_predicted / samples;
      return mean_abs_residual() / (mean_pred < 1.0 ? 1.0 : mean_pred);
    }
  };

  // Sorted copy of the per-stage accumulators.
  std::vector<std::pair<std::string, StageStats>> Stats() const;

  // Warnings raised so far (rising edges; a stage re-arms when it returns
  // within bounds).
  uint64_t warnings() const {
    return warnings_.load(std::memory_order_relaxed);
  }

  const DriftOptions& options() const { return options_; }

 private:
  MetricsRegistry* metrics_;
  FlightRecorder* recorder_;
  DriftOptions options_;
  std::atomic<uint64_t> warnings_{0};
  mutable std::mutex mu_;
  std::map<std::string, StageStats> stages_;
};

}  // namespace sigsetdb

#endif  // SIGSET_OBS_DRIFT_WATCHDOG_H_
