#include "obs/drift_watchdog.h"

#include <cmath>

namespace sigsetdb {

namespace {
// "candidate selection" -> "candidate_selection" (metric-name friendly).
std::string StageKeyPart(const std::string& name) {
  std::string out = name;
  for (char& c : out) {
    if (c == ' ') c = '_';
  }
  return out;
}
}  // namespace

DriftWatchdog::DriftWatchdog(MetricsRegistry* metrics,
                             FlightRecorder* recorder, DriftOptions options)
    : metrics_(metrics), recorder_(recorder), options_(options) {}

void DriftWatchdog::Observe(const std::string& stage, double measured,
                            double predicted) {
  bool raised = false;
  double mean_abs = 0, mean_rel = 0;
  uint64_t samples = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    StageStats& s = stages_[stage];
    ++s.samples;
    s.sum_measured += measured;
    s.sum_predicted += predicted;
    s.sum_abs_residual += std::fabs(measured - predicted);
    samples = s.samples;
    mean_abs = s.mean_abs_residual();
    mean_rel = s.mean_rel_residual();
    if (s.samples >= options_.min_samples) {
      const bool outside = mean_abs > options_.abs_tolerance_pages &&
                           mean_rel > options_.rel_tolerance;
      raised = outside && !s.warning;  // rising edge only
      s.warning = outside;
    }
  }
  // Exports happen outside the accumulator lock (registry lookups take the
  // registry's own mutex).
  metrics_->gauge("drift." + stage + ".mean_abs_residual")->Set(mean_abs);
  metrics_->gauge("drift." + stage + ".mean_rel_residual")->Set(mean_rel);
  metrics_->gauge("drift." + stage + ".samples")
      ->Set(static_cast<double>(samples));
  if (raised) {
    warnings_.fetch_add(1, std::memory_order_relaxed);
    metrics_->counter("drift.warnings")->Increment();
    if (recorder_ != nullptr) {
      FlightEvent event;
      event.op = FlightOp::kDriftWarning;
      event.SetDetail(stage + " abs=" + std::to_string(mean_abs));
      recorder_->Record(event);
    }
  }
}

void DriftWatchdog::ObserveTrace(const QueryTrace& trace) {
  // The plan string leads with the facility ("bssf smart(k=2)"); Database
  // plans prefix the attribute ("tags via bssf smart").
  std::string plan = trace.plan;
  const size_t via = plan.find(" via ");
  if (via != std::string::npos) plan = plan.substr(via + 5);
  const size_t space = plan.find(' ');
  const std::string facility =
      space == std::string::npos ? plan : plan.substr(0, space);
  if (facility.empty()) return;
  for (const TraceSpan& stage : trace.stages()) {
    if (stage.predicted_pages < 0) continue;
    Observe(facility + "." + StageKeyPart(stage.name),
            static_cast<double>(stage.pages()), stage.predicted_pages);
  }
  if (trace.predicted_total >= 0) {
    Observe(facility + ".total", static_cast<double>(trace.TotalPages()),
            trace.predicted_total);
  }
}

std::vector<std::pair<std::string, DriftWatchdog::StageStats>>
DriftWatchdog::Stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return {stages_.begin(), stages_.end()};
}

}  // namespace sigsetdb
