#include "obs/flight_recorder.h"

#include <algorithm>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <utility>

#include "obs/json.h"

#ifndef _WIN32
#include <unistd.h>
#endif

namespace sigsetdb {

const char* FlightOpName(FlightOp op) {
  switch (op) {
    case FlightOp::kInsert:
      return "insert";
    case FlightOp::kDelete:
      return "delete";
    case FlightOp::kBatch:
      return "batch";
    case FlightOp::kCompact:
      return "compact";
    case FlightOp::kCheckpoint:
      return "checkpoint";
    case FlightOp::kQuery:
      return "query";
    case FlightOp::kSnapshotQuery:
      return "snapshot_query";
    case FlightOp::kJoin:
      return "join";
    case FlightOp::kWalCommit:
      return "wal_commit";
    case FlightOp::kDriftWarning:
      return "drift_warning";
    case FlightOp::kFatal:
      return "fatal";
  }
  return "unknown";
}

void FlightEvent::SetDetail(const std::string& s) {
  const size_t n = std::min(s.size(), sizeof(detail) - 1);
  std::memcpy(detail, s.data(), n);
  detail[n] = '\0';
}

void FlightEvent::SetDelta(const IoStats& delta) {
  page_reads = static_cast<uint32_t>(delta.reads());
  page_writes = static_cast<uint32_t>(delta.writes());
  pages_skipped = static_cast<uint32_t>(delta.skips());
  pages_cow = static_cast<uint32_t>(delta.cows());
}

namespace {
size_t RoundUpPow2(size_t n) {
  size_t p = 8;
  while (p < n) p <<= 1;
  return p;
}
}  // namespace

FlightRecorder::FlightRecorder(size_t capacity)
    : slots_(new Slot[RoundUpPow2(capacity)]),
      mask_(RoundUpPow2(capacity) - 1),
      start_time_(std::chrono::steady_clock::now()) {}

void FlightRecorder::Record(FlightEvent event) {
  static_assert(sizeof(FlightEvent) <= kWords * 8);
  const uint64_t ticket = next_.fetch_add(1, std::memory_order_relaxed);
  event.seq = ticket;
  event.micros = static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - start_time_)
          .count());
  uint64_t words[kWords] = {};
  std::memcpy(words, &event, sizeof(event));
  Slot& slot = slots_[ticket & mask_];
  // Seqlock writer: stamp start first so a concurrent reader that has
  // already copied the old payload sees a mismatched frame and drops it.
  slot.start.store(ticket + 1, std::memory_order_release);
  for (size_t i = 0; i < kWords; ++i) {
    slot.words[i].store(words[i], std::memory_order_relaxed);
  }
  slot.end.store(ticket + 1, std::memory_order_release);
}

std::vector<FlightEvent> FlightRecorder::Events() const {
  const uint64_t n = next_.load(std::memory_order_acquire);
  const uint64_t cap = mask_ + 1;
  const uint64_t first = n > cap ? n - cap : 0;
  std::vector<FlightEvent> out;
  out.reserve(static_cast<size_t>(n - first));
  for (uint64_t t = first; t < n; ++t) {
    const Slot& slot = slots_[t & mask_];
    // Accept only a frame whose both stamps match this ticket: a writer
    // mid-overwrite has start ahead of end, and a completed overwrite has
    // both stamps at a later ticket.
    if (slot.end.load(std::memory_order_acquire) != t + 1) continue;
    uint64_t words[kWords];
    for (size_t i = 0; i < kWords; ++i) {
      words[i] = slot.words[i].load(std::memory_order_relaxed);
    }
    std::atomic_thread_fence(std::memory_order_acquire);
    if (slot.start.load(std::memory_order_relaxed) != t + 1) continue;
    FlightEvent event;
    std::memcpy(&event, words, sizeof(event));
    out.push_back(event);
  }
  return out;
}

std::string FlightRecorder::PostmortemText(const std::string& reason) const {
  std::vector<FlightEvent> events = Events();
  std::string out;
  out += "=== sigsetdb flight-recorder postmortem ===\n";
  out += "reason: " + reason + "\n";
  out += "events: " + std::to_string(events.size()) + " of " +
         std::to_string(total_recorded()) + " recorded (ring capacity " +
         std::to_string(capacity()) + ")\n";
  out +=
      "  seq        t_us op             r     w  skip   cow      lsn epoch"
      " status detail\n";
  char line[256];
  for (const FlightEvent& e : events) {
    std::snprintf(line, sizeof(line),
                  "%5llu %11llu %-14s %5u %5u %5u %5u %8llu %5llu %6d %s\n",
                  static_cast<unsigned long long>(e.seq),
                  static_cast<unsigned long long>(e.micros), FlightOpName(e.op),
                  e.page_reads, e.page_writes, e.pages_skipped, e.pages_cow,
                  static_cast<unsigned long long>(e.wal_lsn),
                  static_cast<unsigned long long>(e.epoch), e.status_code,
                  e.detail);
    out += line;
  }
  return out;
}

std::string FlightRecorder::PostmortemJson(const std::string& reason) const {
  std::vector<FlightEvent> events = Events();
  JsonWriter w;
  w.BeginObject();
  w.Field("reason", reason);
  w.Field("total_recorded", total_recorded());
  w.Field("capacity", static_cast<uint64_t>(capacity()));
  w.Key("events");
  w.BeginArray();
  for (const FlightEvent& e : events) {
    w.BeginObject();
    w.Field("seq", e.seq);
    w.Field("t_us", e.micros);
    w.Field("op", FlightOpName(e.op));
    w.Field("status_code", static_cast<int64_t>(e.status_code));
    w.Field("fingerprint", e.fingerprint);
    w.Field("epoch", e.epoch);
    w.Field("wal_lsn", e.wal_lsn);
    w.Field("page_reads", static_cast<uint64_t>(e.page_reads));
    w.Field("page_writes", static_cast<uint64_t>(e.page_writes));
    w.Field("pages_skipped", static_cast<uint64_t>(e.pages_skipped));
    w.Field("pages_cow", static_cast<uint64_t>(e.pages_cow));
    w.Field("detail", std::string(e.detail));
    w.EndObject();
  }
  w.EndArray();
  w.EndObject();
  return w.str();
}

Status FlightRecorder::WritePostmortem(const std::string& path_prefix,
                                       const std::string& reason) const {
  const std::string text = PostmortemText(reason);
  const std::string json = PostmortemJson(reason);
  for (const auto& [suffix, body] :
       {std::pair<const char*, const std::string*>{".txt", &text},
        std::pair<const char*, const std::string*>{".json", &json}}) {
    const std::string path = path_prefix + suffix;
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) {
      return Status::IoError("cannot open postmortem file " + path);
    }
    const size_t written = std::fwrite(body->data(), 1, body->size(), f);
    const int closed = std::fclose(f);
    if (written != body->size() || closed != 0) {
      return Status::IoError("short write to postmortem file " + path);
    }
  }
  return Status::OK();
}

uint64_t FlightRecorder::Fingerprint(int kind,
                                     const std::vector<uint64_t>& set) {
  // FNV-1a over the kind tag and the (normalized) element sequence.
  uint64_t h = 1469598103934665603ull;
  auto mix = [&h](uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h ^= (v >> (i * 8)) & 0xff;
      h *= 1099511628211ull;
    }
  };
  mix(static_cast<uint64_t>(kind));
  for (uint64_t e : set) mix(e);
  return h;
}

namespace {

std::atomic<FlightRecorder*> g_signal_recorder{nullptr};

#ifndef _WIN32
void SignalPostmortem(int signo) {
  FlightRecorder* recorder =
      g_signal_recorder.load(std::memory_order_acquire);
  if (recorder != nullptr) {
    // Best effort: snprintf/write only, no allocation beyond the events
    // copy.  A crash handler that itself crashes just re-raises sooner.
    char head[128];
    int n = std::snprintf(head, sizeof(head),
                          "\n=== sigsetdb postmortem (signal %d) ===\n",
                          signo);
    if (n > 0) (void)!write(STDERR_FILENO, head, static_cast<size_t>(n));
    for (const FlightEvent& e : recorder->Events()) {
      char line[192];
      n = std::snprintf(line, sizeof(line),
                        "%llu %s status=%d lsn=%llu epoch=%llu r=%u w=%u %s\n",
                        static_cast<unsigned long long>(e.seq),
                        FlightOpName(e.op), e.status_code,
                        static_cast<unsigned long long>(e.wal_lsn),
                        static_cast<unsigned long long>(e.epoch),
                        e.page_reads, e.page_writes, e.detail);
      if (n > 0) (void)!write(STDERR_FILENO, line, static_cast<size_t>(n));
    }
  }
  std::signal(signo, SIG_DFL);
  std::raise(signo);
}
#endif

}  // namespace

void FlightRecorder::InstallSignalHandler(FlightRecorder* recorder) {
  g_signal_recorder.store(recorder, std::memory_order_release);
#ifndef _WIN32
  for (int signo : {SIGSEGV, SIGBUS, SIGABRT}) {
    std::signal(signo, recorder != nullptr ? SignalPostmortem : SIG_DFL);
  }
#endif
}

}  // namespace sigsetdb
