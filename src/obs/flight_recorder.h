// FlightRecorder: a fixed-size lock-free ring of recent database events —
// the "what was the system doing just before it died" instrument.
//
// Every entry point (mutations, queries, snapshot reads, WAL commits)
// records one FlightEvent: op type, query fingerprint, epoch, WAL LSN, the
// op's page-delta summary, and its Status.  The ring keeps the most recent
// `capacity` events; on a fatal Status, a failpoint crash, or a signal the
// recorder renders them as a human-readable and a JSON postmortem, so every
// simulated crash in the recovery matrix leaves an inspectable artifact.
//
// Concurrency: recording is wait-free for producers (one fetch_add for the
// ticket, then relaxed word stores into the slot between two stamp stores).
// Slots follow the seqlock discipline with the event payload stored as
// atomic words, so concurrent Record/Events interleavings are race-free
// under the C++ memory model (TSan-clean, asserted by the stress test): a
// reader accepts a slot only when both stamps equal the ticket it expects,
// which a writer mid-overwrite cannot satisfy.  Dumping never blocks
// recording and vice versa.

#ifndef SIGSET_OBS_FLIGHT_RECORDER_H_
#define SIGSET_OBS_FLIGHT_RECORDER_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "storage/io_stats.h"
#include "util/status.h"

namespace sigsetdb {

// What kind of operation an event records.
enum class FlightOp : uint8_t {
  kInsert = 0,
  kDelete,
  kBatch,
  kCompact,
  kCheckpoint,
  kQuery,
  kSnapshotQuery,
  kJoin,
  kWalCommit,
  kDriftWarning,
  kFatal,
};

// Stable lower-case name ("insert", "drift_warning", ...).
const char* FlightOpName(FlightOp op);

// One recorded event.  Trivially copyable by design: the ring stores the
// raw bytes as atomic words, and the signal-handler dump walks them without
// allocating.
struct FlightEvent {
  uint64_t seq = 0;     // assigned by Record(): global order across producers
  uint64_t micros = 0;  // steady-clock offset from recorder construction
  uint64_t fingerprint = 0;  // query fingerprint; 0 for non-queries
  uint64_t epoch = 0;        // published epoch at record time (0 = none)
  uint64_t wal_lsn = 0;      // last WAL lsn at record time (0 = no WAL)
  uint32_t page_reads = 0;   // the op's IoStats delta
  uint32_t page_writes = 0;
  uint32_t pages_skipped = 0;
  uint32_t pages_cow = 0;
  int32_t status_code = 0;  // StatusCode as int; 0 = OK
  FlightOp op = FlightOp::kQuery;
  char detail[47] = {};  // plan / error message, NUL-terminated, truncated

  void SetDetail(const std::string& s);
  void SetDelta(const IoStats& delta);
};

class FlightRecorder {
 public:
  // `capacity` is rounded up to a power of two (minimum 8).
  explicit FlightRecorder(size_t capacity = 512);

  // Records one event (seq and micros are stamped here).  Wait-free;
  // callable from any thread, including concurrently with Events().
  void Record(FlightEvent event);

  // The most recent events, oldest first.  Slots a concurrent writer is
  // mid-overwrite in are dropped (detectably torn), so the result is always
  // a consistent subset.
  std::vector<FlightEvent> Events() const;

  // Postmortem renderings of Events() plus `reason` as the headline.
  std::string PostmortemText(const std::string& reason) const;
  std::string PostmortemJson(const std::string& reason) const;

  // Writes "<path_prefix>.txt" and "<path_prefix>.json" via stdio — never
  // the PageFile layer, so fault injection and page-access counts are
  // untouched by a dump.
  Status WritePostmortem(const std::string& path_prefix,
                         const std::string& reason) const;

  // Events recorded over the recorder's lifetime (>= capacity() means the
  // ring has wrapped and old events were overwritten).
  uint64_t total_recorded() const {
    return next_.load(std::memory_order_relaxed);
  }
  size_t capacity() const { return mask_ + 1; }

  // Stable fingerprint of a query predicate (kind + element set), so
  // postmortems can correlate repeated shapes without logging the set.
  static uint64_t Fingerprint(int kind, const std::vector<uint64_t>& set);

  // Installs a best-effort SIGSEGV/SIGBUS/SIGABRT handler that dumps
  // `recorder`'s postmortem text to stderr, then re-raises with the default
  // disposition.  One recorder per process; nullptr uninstalls.  Meant for
  // benches and tools, not tests (gtest death tests install their own).
  static void InstallSignalHandler(FlightRecorder* recorder);

 private:
  // Event payload as relaxed-atomic words (seqlock data), framed by the
  // start/end ticket stamps.
  static constexpr size_t kWords = (sizeof(FlightEvent) + 7) / 8;
  struct Slot {
    std::atomic<uint64_t> start{0};  // ticket + 1 while/after writing
    std::atomic<uint64_t> end{0};    // ticket + 1 once the payload is whole
    std::atomic<uint64_t> words[kWords] = {};
  };

  std::unique_ptr<Slot[]> slots_;
  size_t mask_;
  std::atomic<uint64_t> next_{0};
  std::chrono::steady_clock::time_point start_time_;
};

}  // namespace sigsetdb

#endif  // SIGSET_OBS_FLIGHT_RECORDER_H_
