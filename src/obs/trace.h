// Per-query structured tracing: where did this query's page accesses go?
//
// The paper's cost model predicts the page accesses of each *phase* of a
// query — signature/slice scan, OID-file look-up, false-drop resolution,
// B-tree descent — but the repo's IoStats only reports per-file totals.  A
// QueryTrace records one TraceSpan per executor stage, each carrying the
// stage's page-read/write delta, wall time, candidate/false-drop counts,
// and (filled in by the db layer from src/model/cost_breakdown.h) the
// model's predicted pages for that stage, so every trace doubles as a
// model-vs-measured experiment.
//
// Tracing is strictly opt-in: executors take a `QueryTrace*` that defaults
// to nullptr, and every tracing action is behind a null check.  The off
// path performs no clock reads, no allocation, and — critically — no page
// accesses, so page-access counts are bit-for-bit identical with tracing
// disabled (a property the test suite asserts).  The on path only
// *snapshots* IoStats around stages; it never issues I/O of its own, so
// measured page counts are identical with tracing on, too.

#ifndef SIGSET_OBS_TRACE_H_
#define SIGSET_OBS_TRACE_H_

#include <chrono>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "storage/io_stats.h"

namespace sigsetdb {

// One stage (or sub-stage) of a query's execution.
struct TraceSpan {
  std::string name;         // "slice scan", "resolve", ...
  uint64_t page_reads = 0;  // measured delta over the stage
  uint64_t page_writes = 0;
  // Page reads the skip index proved unnecessary (not part of pages():
  // a skipped page is an access that never happened).
  uint64_t pages_skipped = 0;
  // Copy-on-write page copies (snapshots enabled only; see
  // storage/versioned_page_file.h).  Not part of pages(): a CoW copy is
  // version-chain bookkeeping, not a logical access the paper counts.
  uint64_t pages_cow = 0;
  // Slice-page reads served from the pinned hot tier (hot tier enabled
  // only; see sig/hot_tier.h).  Not part of pages(): a hot hit is served
  // from memory, so the buffer pool never sees the access.
  uint64_t pages_hot = 0;
  double wall_ms = 0.0;          // 0 when not timed (sub-stages)
  double predicted_pages = -1.0;  // model prediction; < 0 = none attached
  // Stage-specific counts; -1 = not applicable.
  int64_t candidates = -1;   // drops delivered / resolved in this stage
  int64_t false_drops = -1;  // candidates failing resolution
  std::vector<TraceSpan> children;  // breakdown of this stage by file

  uint64_t pages() const { return page_reads + page_writes; }

  // Finds a direct child by name; nullptr when absent.
  TraceSpan* FindChild(const std::string& child_name);
};

// The trace of one set query, stage by stage.
class QueryTrace {
 public:
  std::string plan;   // "bssf smart(k=2)" — filled by the planner
  std::string kind;   // QueryKindName of the executed predicate
  int64_t dq = 0;     // query cardinality
  double predicted_total = -1.0;  // model RC for the whole plan; < 0 = none

  // Appends a top-level stage and returns a pointer valid until the next
  // AddStage call (spans live in a deque-free vector; callers fill the span
  // immediately, never across stages).
  TraceSpan* AddStage(std::string name);

  const std::vector<TraceSpan>& stages() const { return stages_; }
  std::vector<TraceSpan>& mutable_stages() { return stages_; }

  // Sums over top-level stages (children subdivide their parent and are
  // excluded, so the sum equals the query's IoStats delta).
  uint64_t TotalReads() const;
  uint64_t TotalWrites() const;
  uint64_t TotalSkipped() const;
  uint64_t TotalCow() const;
  uint64_t TotalHot() const;
  uint64_t TotalPages() const { return TotalReads() + TotalWrites(); }
  double TotalWallMs() const;

  // Serializes the full trace (plan, stages, children, predictions).
  std::string ToJson() const;

 private:
  std::vector<TraceSpan> stages_;
};

// One (file label, counter snapshot) per file touched by a stage — the
// return shape of SetAccessFacility::StageStats().
using IoSnapshots = std::vector<std::pair<std::string, IoStats>>;

// Appends a stage whose children are the per-file deltas `after - before`
// (one child per label, parent totals = children sums) and returns it for
// the caller to finish (wall time, counts).  Pure counter arithmetic.
TraceSpan* AddSnapshotStage(QueryTrace* trace, std::string name,
                            const IoSnapshots& before,
                            const IoSnapshots& after);

// Scoped wall-clock for trace stages; read with ElapsedMs().  Constructing
// with enabled = false skips even the clock read (the executor's off path).
class TraceTimer {
 public:
  explicit TraceTimer(bool enabled = true)
      : start_(enabled ? std::chrono::steady_clock::now()
                       : std::chrono::steady_clock::time_point{}) {}
  double ElapsedMs() const {
    return std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now() - start_)
        .count();
  }

 private:
  std::chrono::steady_clock::time_point start_;
};

}  // namespace sigsetdb

#endif  // SIGSET_OBS_TRACE_H_
