#include "obs/trace_event.h"

#include <algorithm>
#include <cstdio>

#include "obs/json.h"

namespace sigsetdb {

namespace {

// Durations are measured in ms doubles; the trace format wants integer
// microseconds.  Clamp to >= 1 so zero-length spans stay visible.
uint64_t DurUs(double wall_ms) {
  const double us = wall_ms * 1000.0;
  return us < 1.0 ? 1 : static_cast<uint64_t>(us);
}

// Renders a span's measurements (and prediction, when attached) as the
// trace-event "args" object.
std::string SpanArgs(const TraceSpan& span) {
  JsonWriter w;
  w.BeginObject();
  w.Field("page_reads", span.page_reads);
  w.Field("page_writes", span.page_writes);
  w.Field("pages_skipped", span.pages_skipped);
  w.Field("pages_cow", span.pages_cow);
  w.Field("pages_hot", span.pages_hot);
  if (span.predicted_pages >= 0) {
    w.Field("predicted_pages", span.predicted_pages);
  }
  if (span.candidates >= 0) w.Field("candidates", span.candidates);
  if (span.false_drops >= 0) w.Field("false_drops", span.false_drops);
  // Untimed children (the per-file breakdown) fold into their parent here;
  // timed children become spans of their own.
  for (const TraceSpan& child : span.children) {
    if (child.wall_ms <= 0.0) {
      w.Field("pages." + child.name, child.pages());
    }
  }
  w.EndObject();
  return w.str();
}

}  // namespace

int TraceEventWriter::TidForTrack(const std::string& track_name) {
  auto it = track_tids_.find(track_name);
  if (it != track_tids_.end()) return it->second;
  const int tid = 2 + static_cast<int>(track_tids_.size());
  track_tids_.emplace(track_name, tid);
  return tid;
}

void TraceEventWriter::AddTrace(const QueryTrace& trace) {
  ++trace_count_;
  const uint64_t query_start = cursor_us_;
  uint64_t offset = 0;

  for (const TraceSpan& stage : trace.stages()) {
    Event ev;
    ev.name = stage.name;
    ev.ts_us = query_start + offset;
    ev.dur_us = DurUs(stage.wall_ms);
    ev.tid = 1;
    ev.args_json = SpanArgs(stage);
    // Timed children ran inside this stage on pool threads; give each its
    // own track so the fan-out is visible as parallel rows.
    for (const TraceSpan& child : stage.children) {
      if (child.wall_ms <= 0.0) continue;
      Event cev;
      cev.name = child.name;
      cev.ts_us = ev.ts_us;
      cev.dur_us = std::min(DurUs(child.wall_ms), ev.dur_us);
      cev.tid = TidForTrack(child.name);
      cev.args_json = SpanArgs(child);
      events_.push_back(std::move(cev));
    }
    offset += ev.dur_us;
    events_.push_back(std::move(ev));
  }

  // The enclosing query-level span (emitted last, rendered as the parent).
  Event query;
  query.name = trace.kind.empty() ? "query" : trace.kind + " " + trace.plan;
  query.ts_us = query_start;
  query.dur_us = offset == 0 ? 1 : offset;
  query.tid = 1;
  {
    JsonWriter w;
    w.BeginObject();
    w.Field("plan", trace.plan);
    w.Field("dq", trace.dq);
    w.Field("pages", trace.TotalPages());
    w.Field("pages_skipped", trace.TotalSkipped());
    w.Field("pages_cow", trace.TotalCow());
    w.Field("pages_hot", trace.TotalHot());
    if (trace.predicted_total >= 0) {
      w.Field("predicted_pages", trace.predicted_total);
    }
    w.EndObject();
    query.args_json = w.str();
  }
  events_.push_back(std::move(query));

  cursor_us_ += query.dur_us + 10;  // small gap between traces
}

std::string TraceEventWriter::ToJson() const {
  std::string out = "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  auto append = [&out, &first](const std::string& obj) {
    if (!first) out += ",";
    first = false;
    out += obj;
  };

  // Thread-name metadata: track 1 is the query timeline, the rest are the
  // named worker tracks.
  {
    JsonWriter w;
    w.BeginObject();
    w.Field("ph", "M");
    w.Field("name", "thread_name");
    w.Field("pid", uint64_t{1});
    w.Field("tid", uint64_t{1});
    w.Key("args");
    w.BeginObject();
    w.Field("name", "queries");
    w.EndObject();
    w.EndObject();
    append(w.str());
  }
  for (const auto& [track, tid] : track_tids_) {
    JsonWriter w;
    w.BeginObject();
    w.Field("ph", "M");
    w.Field("name", "thread_name");
    w.Field("pid", uint64_t{1});
    w.Field("tid", static_cast<uint64_t>(tid));
    w.Key("args");
    w.BeginObject();
    w.Field("name", "resolve " + track);
    w.EndObject();
    w.EndObject();
    append(w.str());
  }

  for (const Event& ev : events_) {
    JsonWriter w;
    w.BeginObject();
    w.Field("name", ev.name);
    w.Field("cat", "query");
    w.Field("ph", "X");
    w.Field("ts", ev.ts_us);
    w.Field("dur", ev.dur_us);
    w.Field("pid", uint64_t{1});
    w.Field("tid", static_cast<uint64_t>(ev.tid));
    w.EndObject();
    std::string obj = w.str();
    if (!ev.args_json.empty()) {
      // Splice the pre-rendered args object in before the closing brace.
      obj.insert(obj.size() - 1, ",\"args\":" + ev.args_json);
    }
    append(obj);
  }
  out += "]}";
  return out;
}

Status TraceEventWriter::WriteFile(const std::string& path) const {
  const std::string body = ToJson();
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    return Status::IoError("cannot open trace file " + path);
  }
  const size_t written = std::fwrite(body.data(), 1, body.size(), f);
  const int closed = std::fclose(f);
  if (written != body.size() || closed != 0) {
    return Status::IoError("short write to trace file " + path);
  }
  return Status::OK();
}

std::string TraceEventJson(const QueryTrace& trace) {
  TraceEventWriter writer;
  writer.AddTrace(trace);
  return writer.ToJson();
}

}  // namespace sigsetdb
