// Chrome trace-event JSON export of QueryTrace spans, loadable in Perfetto
// (https://ui.perfetto.dev) or chrome://tracing.
//
// A QueryTrace measures stage *durations* (wall_ms per stage, executed
// back-to-back), not absolute timestamps, so the writer lays each trace out
// on a synthetic timeline: stages occupy consecutive intervals sized by
// their measured wall time, nested under one query-level span.  Timed child
// spans — the parallel resolution workers — get their own named tracks
// (tid per worker), so a Perfetto view shows the fan-out the thread pool
// actually achieved; untimed children (the per-file page breakdown of
// candidate selection) become args on their stage.  Page deltas, candidate
// counts, and model predictions ride along as args on every span.
//
// The output is the stable "JSON Object Format": {"traceEvents": [...]}
// with complete ("ph":"X") events and thread-name metadata.

#ifndef SIGSET_OBS_TRACE_EVENT_H_
#define SIGSET_OBS_TRACE_EVENT_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "obs/trace.h"
#include "util/status.h"

namespace sigsetdb {

class TraceEventWriter {
 public:
  // Appends one finished trace at the current end of the synthetic
  // timeline.  Traces appear in AddTrace order, separated by a small gap.
  void AddTrace(const QueryTrace& trace);

  // The accumulated document: {"displayTimeUnit":"ms","traceEvents":[...]}.
  std::string ToJson() const;

  Status WriteFile(const std::string& path) const;

  size_t num_events() const { return events_.size(); }

 private:
  struct Event {
    std::string name;
    uint64_t ts_us = 0;
    uint64_t dur_us = 0;
    int tid = 1;
    // Pre-rendered JSON object for "args" (empty = omit).
    std::string args_json;
  };

  // Track ids: 1 is the query/stage track; workers get stable ids per name.
  int TidForTrack(const std::string& track_name);

  std::vector<Event> events_;
  std::map<std::string, int> track_tids_;  // name -> tid (metadata emitted)
  uint64_t cursor_us_ = 0;
  uint64_t trace_count_ = 0;
};

// One-shot convenience: a single trace as a complete document.
std::string TraceEventJson(const QueryTrace& trace);

}  // namespace sigsetdb

#endif  // SIGSET_OBS_TRACE_EVENT_H_
