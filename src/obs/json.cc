#include "obs/json.h"

#include <cmath>
#include <cstdio>

namespace sigsetdb {

void JsonWriter::BeforeValue() {
  if (after_key_) {
    after_key_ = false;
    return;
  }
  if (!has_elements_.empty()) {
    if (has_elements_.back()) out_ += ',';
    has_elements_.back() = true;
  }
}

void JsonWriter::BeginObject() {
  BeforeValue();
  out_ += '{';
  has_elements_.push_back(false);
}

void JsonWriter::EndObject() {
  out_ += '}';
  has_elements_.pop_back();
}

void JsonWriter::BeginArray() {
  BeforeValue();
  out_ += '[';
  has_elements_.push_back(false);
}

void JsonWriter::EndArray() {
  out_ += ']';
  has_elements_.pop_back();
}

void JsonWriter::Key(const std::string& key) {
  if (!has_elements_.empty()) {
    if (has_elements_.back()) out_ += ',';
    has_elements_.back() = true;
  }
  out_ += '"';
  out_ += Escape(key);
  out_ += "\":";
  after_key_ = true;
}

void JsonWriter::String(const std::string& value) {
  BeforeValue();
  out_ += '"';
  out_ += Escape(value);
  out_ += '"';
}

void JsonWriter::Uint(uint64_t value) {
  BeforeValue();
  out_ += std::to_string(value);
}

void JsonWriter::Int(int64_t value) {
  BeforeValue();
  out_ += std::to_string(value);
}

void JsonWriter::Double(double value) {
  BeforeValue();
  if (!std::isfinite(value)) {
    out_ += "null";
    return;
  }
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.17g", value);
  out_ += buf;
}

void JsonWriter::Bool(bool value) {
  BeforeValue();
  out_ += value ? "true" : "false";
}

void JsonWriter::Null() {
  BeforeValue();
  out_ += "null";
}

void JsonWriter::Field(const std::string& key, const std::string& value) {
  Key(key);
  String(value);
}

void JsonWriter::Field(const std::string& key, const char* value) {
  Key(key);
  String(value);
}

void JsonWriter::Field(const std::string& key, uint64_t value) {
  Key(key);
  Uint(value);
}

void JsonWriter::Field(const std::string& key, int64_t value) {
  Key(key);
  Int(value);
}

void JsonWriter::Field(const std::string& key, double value) {
  Key(key);
  Double(value);
}

void JsonWriter::Field(const std::string& key, bool value) {
  Key(key);
  Bool(value);
}

void JsonWriter::FieldOrNull(const std::string& key, double value) {
  Key(key);
  if (value < 0) {
    Null();
  } else {
    Double(value);
  }
}

std::string JsonWriter::Escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (unsigned char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += static_cast<char>(c);
        }
    }
  }
  return out;
}

}  // namespace sigsetdb
