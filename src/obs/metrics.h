// MetricsRegistry: named counters, gauges, and log-scale latency histograms
// for the whole database process.
//
// The paper denominates every result in page accesses; the registry is how
// those accesses — and the latencies, cache hits, and drop counts around
// them — become queryable at run time instead of only at bench-print time.
//
// Concurrency discipline mirrors IoStats: the *hot path* is lock-free.
// Callers resolve a metric to a stable pointer once (registration takes a
// mutex) and then increment relaxed atomics; parallel query workers follow
// the same worker-local-then-merge pattern they already use for IoStats
// (accumulate locally, Add() once on join).  Snapshot/export takes the
// registration mutex only to walk the name maps — the values themselves are
// relaxed loads, which is exact at any quiescent point.

#ifndef SIGSET_OBS_METRICS_H_
#define SIGSET_OBS_METRICS_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <ostream>
#include <string>
#include <utility>
#include <vector>

namespace sigsetdb {

// Monotonically increasing event count.
class Counter {
 public:
  void Increment(uint64_t n = 1) {
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  uint64_t value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

// Point-in-time double value (also used to accumulate fractional model
// predictions, which Counter's integer domain cannot hold).
class Gauge {
 public:
  void Set(double v) { value_.store(v, std::memory_order_relaxed); }
  void Add(double v) { value_.fetch_add(v, std::memory_order_relaxed); }
  double value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0.0, std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

// Log-scale histogram of non-negative integer samples (microsecond
// latencies, page counts).  Bucket 0 holds the value 0; bucket i >= 1 holds
// [2^(i-1), 2^i).  Recording is one relaxed fetch_add per sample plus the
// sum/count updates — no locks, no allocation.
class Histogram {
 public:
  static constexpr size_t kNumBuckets = 65;

  void Record(uint64_t value);

  uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  uint64_t sum() const { return sum_.load(std::memory_order_relaxed); }
  double mean() const;

  // Upper bound of the bucket containing the p-quantile (p in [0, 1]), an
  // over-estimate by at most 2x — adequate for log-scale latency tracking.
  uint64_t Percentile(double p) const;

  uint64_t bucket_count(size_t i) const {
    return buckets_[i].load(std::memory_order_relaxed);
  }
  // Smallest value landing in bucket i.
  static uint64_t BucketLowerBound(size_t i);

  void Reset();

 private:
  static size_t BucketFor(uint64_t value);

  std::atomic<uint64_t> buckets_[kNumBuckets] = {};
  std::atomic<uint64_t> count_{0};
  std::atomic<uint64_t> sum_{0};
};

// Point-in-time copy of one histogram, full bucket array included.  The
// exporters (OpenMetrics exposition, JSON) need the buckets themselves, not
// just derived quantiles; the copy is taken with relaxed loads, exact at any
// quiescent point.
struct HistogramSnapshot {
  std::string name;
  uint64_t count = 0;
  uint64_t sum = 0;
  std::array<uint64_t, Histogram::kNumBuckets> buckets{};
};

// Point-in-time copy of every registered metric, sorted by name (the
// registry's maps are ordered).
struct MetricsSnapshot {
  std::vector<std::pair<std::string, uint64_t>> counters;
  std::vector<std::pair<std::string, double>> gauges;
  std::vector<HistogramSnapshot> histograms;
};

// Name -> metric registry.  Metric pointers are stable for the registry's
// lifetime (values are heap-allocated and never moved), so callers may cache
// them across queries.
class MetricsRegistry {
 public:
  // Get-or-create.  A name registers at most one kind of metric; reusing a
  // name across kinds returns distinct objects (the maps are per-kind), so
  // pick distinct names by convention.
  Counter* counter(const std::string& name);
  Gauge* gauge(const std::string& name);
  Histogram* histogram(const std::string& name);

  // Read-only lookups; 0 / nullptr when the name was never registered.
  uint64_t CounterValue(const std::string& name) const;
  double GaugeValue(const std::string& name) const;
  const Histogram* FindHistogram(const std::string& name) const;

  // Zeroes every registered metric (names stay registered).
  void Reset();

  // Copies every registered metric (counters, gauges, histogram buckets).
  // The registration mutex guards only the map walk; values are relaxed
  // loads.  This is the exporters' single entry point into the registry.
  MetricsSnapshot Snapshot() const;

  // Full snapshot as one JSON object:
  //   {"counters":{...},"gauges":{...},"histograms":{name:{count,sum,mean,
  //    p50,p95,p99}}}
  std::string ToJson() const;

  // Human-readable dump (sorted by name) for shells and debugging.
  void Render(std::ostream& os) const;

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

}  // namespace sigsetdb

#endif  // SIGSET_OBS_METRICS_H_
