// OpenMetrics / Prometheus text exposition of a MetricsRegistry.
//
// Every registered counter, gauge, and histogram is rendered in the
// OpenMetrics text format (https://prometheus.io/docs/specs/om/): counters
// get the `_total` sample suffix, histograms expose cumulative
// `_bucket{le="..."}` series (the log-histogram's power-of-two upper bounds)
// plus `_sum`/`_count`, and the exposition ends with the mandatory `# EOF`.
// Dotted registry names ("query.bssf.count") are sanitized to the metric
// charset ("query_bssf_count") and namespaced under `prefix`.
//
// The export walks a MetricsSnapshot — one mutex acquisition for the name
// maps, relaxed value loads — so scraping never blocks the recording hot
// path.

#ifndef SIGSET_OBS_OPENMETRICS_H_
#define SIGSET_OBS_OPENMETRICS_H_

#include <string>

#include "obs/metrics.h"
#include "util/status.h"

namespace sigsetdb {

// Maps a registry name onto the OpenMetrics charset [a-zA-Z0-9_]; every
// other byte becomes '_'.
std::string SanitizeMetricName(const std::string& name);

// Renders the full registry as one OpenMetrics exposition (terminated by
// "# EOF\n").  Metric names become "<prefix>_<sanitized name>".
std::string ExportOpenMetrics(const MetricsRegistry& registry,
                              const std::string& prefix = "sigset");

// ExportOpenMetrics to a file (stdio; atomicity is not needed for scrape
// targets, the format is line-oriented).
Status WriteOpenMetricsFile(const MetricsRegistry& registry,
                            const std::string& path,
                            const std::string& prefix = "sigset");

}  // namespace sigsetdb

#endif  // SIGSET_OBS_OPENMETRICS_H_
