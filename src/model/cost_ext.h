// Cost-model extension: the set-equality and overlap operators the paper
// lists as future work (§6), priced in the same page-access framework.
//
// Derivations (same ideal-hash independence assumptions as §3.2):
//
//  * Equality prefilter.  Candidates are targets whose *entire signature*
//    equals the query signature.  With per-bit one-probabilities
//    p_t = 1−(1−m/F)^Dt and p_q (with Dq), independent across bits, the
//    probability that an unrelated target agrees on every bit is
//        Fd_eq = (p_t·p_q + (1−p_t)(1−p_q))^F,
//    which is astronomically small at any realistic F — equality is the
//    signature filter's best case.  SSF still scans SC_SIG pages; BSSF
//    must read all F slices (every bit position participates).
//
//  * Overlap.  The filter drops a target when any of the Dq element
//    signatures is covered by the target signature; per element that is
//    the Dq=1 superset false-drop rate, so
//        Fd_ov = 1 − (1 − Fd_sup(Dq=1))^Dq.
//    BSSF reads m slices per element (the per-element filters are run
//    independently, matching the implementation); NIX answers exactly via
//    the union of postings.

#ifndef SIGSET_MODEL_COST_EXT_H_
#define SIGSET_MODEL_COST_EXT_H_

#include "model/params.h"

namespace sigsetdb {

// Probability that the signatures of two unrelated sets (cardinalities dt,
// dq) are bit-for-bit equal.
double FalseDropEquals(const SignatureParams& sig, int64_t dt, int64_t dq);

// Probability that a target set signature covers at least one of the Dq
// query-element signatures while sharing no element.
double FalseDropOverlap(const SignatureParams& sig, int64_t dt, int64_t dq);

// Retrieval costs for T = Q.
double SsfRetrievalEquals(const DatabaseParams& db, const SignatureParams& sig,
                          int64_t dt, int64_t dq);
double BssfRetrievalEquals(const DatabaseParams& db,
                           const SignatureParams& sig, int64_t dt, int64_t dq);
double NixRetrievalEquals(const DatabaseParams& db, const NixParams& nix,
                          int64_t dt, int64_t dq);

// Retrieval costs for T ∩ Q ≠ ∅.
double SsfRetrievalOverlap(const DatabaseParams& db,
                           const SignatureParams& sig, int64_t dt, int64_t dq);
double BssfRetrievalOverlap(const DatabaseParams& db,
                            const SignatureParams& sig, int64_t dt,
                            int64_t dq);
double NixRetrievalOverlap(const DatabaseParams& db, const NixParams& nix,
                           int64_t dt, int64_t dq);

}  // namespace sigsetdb

#endif  // SIGSET_MODEL_COST_EXT_H_
