#include "model/cost_breakdown.h"

#include <algorithm>

#include "model/actual_drops.h"
#include "model/cost_bssf.h"
#include "model/cost_nix.h"
#include "model/cost_ssf.h"
#include "model/false_drop.h"

namespace sigsetdb {

namespace {

// Shared tail of the signature-file formulas: LC_OID plus the resolution
// charges, given the false-drop probability `fd` of the candidate filter
// and the final predicate's actual drops `a_final` (candidates that are
// true answers never count as false drops, even under a smart filter run
// at reduced cardinality).
void FillSignatureTail(const DatabaseParams& db, double fd, double a_filter,
                       double a_final, CostBreakdown* out) {
  double n = static_cast<double>(db.n);
  out->oid_lookup = OidLookupCost(db, fd, a_filter);
  out->resolution = db.p_s * a_filter + db.p_u * fd * (n - a_filter);
  out->expected_candidates = a_filter + fd * (n - a_filter);
  out->expected_false_drops =
      std::max(0.0, out->expected_candidates - a_final);
}

}  // namespace

CostBreakdown SsfBreakdown(const DatabaseParams& db,
                           const SignatureParams& sig, int64_t dt, int64_t dq,
                           QueryKind kind) {
  CostBreakdown out;
  out.candidate_selection =
      static_cast<double>(SsfSignaturePages(db, sig));
  double fd = kind == QueryKind::kSuperset ? FalseDropSuperset(sig, dt, dq)
                                           : FalseDropSubset(sig, dt, dq);
  double a = kind == QueryKind::kSuperset ? ActualDropsSuperset(db, dt, dq)
                                          : ActualDropsSubset(db, dt, dq);
  FillSignatureTail(db, fd, a, a, &out);
  return out;
}

CostBreakdown BssfSupersetBreakdown(const DatabaseParams& db,
                                    const SignatureParams& sig, int64_t dt,
                                    int64_t dq, int64_t k) {
  CostBreakdown out;
  // A k-element filter prices exactly like the plain strategy at query
  // cardinality k (the remaining Dq−k elements are checked during
  // resolution at no I/O cost) — see BssfSmartSupersetCost.
  double m_q = ExpectedSignatureWeight(sig, k);
  out.candidate_selection = static_cast<double>(BssfSlicePages(db)) * m_q;
  double fd = FalseDropSuperset(sig, dt, k);
  FillSignatureTail(db, fd, ActualDropsSuperset(db, dt, k),
                    ActualDropsSuperset(db, dt, dq), &out);
  return out;
}

CostBreakdown BssfSubsetBreakdown(const DatabaseParams& db,
                                  const SignatureParams& sig, int64_t dt,
                                  int64_t dq, int64_t s) {
  CostBreakdown out;
  double spp = static_cast<double>(BssfSlicePages(db));
  double fd;
  if (s < 0) {
    double m_q = ExpectedSignatureWeight(sig, dq);
    out.candidate_selection = spp * (static_cast<double>(sig.f) - m_q);
    fd = FalseDropSubset(sig, dt, dq);
  } else {
    out.candidate_selection = spp * static_cast<double>(s);
    fd = FalseDropSubsetPartial(sig, dt, static_cast<double>(s));
  }
  double a = ActualDropsSubset(db, dt, dq);
  FillSignatureTail(db, fd, a, a, &out);
  if (s >= 0) {
    // BssfSmartSubsetCost floors the partial-scan cost at the plain eq. 8
    // cost (the full scan is always available as a fallback, and the
    // partial-scan false-drop approximation overshoots slightly near
    // s = F − m_q).  Mirror the floor so totals match the advised cost.
    CostBreakdown plain = BssfSubsetBreakdown(db, sig, dt, dq, -1);
    if (plain.total() <= out.total()) return plain;
  }
  return out;
}

CostBreakdown NixSupersetBreakdown(const DatabaseParams& db,
                                   const NixParams& nix, int64_t dt,
                                   int64_t dq, int64_t k) {
  CostBreakdown out;
  double rc = static_cast<double>(NixLookupCost(db, nix, dt));
  out.candidate_selection = rc * static_cast<double>(k);
  // The k-way postings intersection is exact at cardinality k; every
  // candidate is fetched once (P_s each — qualifying objects are returned
  // to the user either way).
  double candidates = ActualDropsSuperset(db, dt, k);
  out.resolution = db.p_s * candidates;
  out.expected_candidates = candidates;
  out.expected_false_drops =
      std::max(0.0, candidates - ActualDropsSuperset(db, dt, dq));
  return out;
}

CostBreakdown NixSubsetBreakdown(const DatabaseParams& db,
                                 const NixParams& nix, int64_t dt,
                                 int64_t dq) {
  CostBreakdown out;
  double rc = static_cast<double>(NixLookupCost(db, nix, dt));
  out.candidate_selection = rc * static_cast<double>(dq);
  double failing = NixSubsetFailingCandidates(db, dt, dq);
  double a = ActualDropsSubset(db, dt, dq);
  out.resolution = db.p_u * failing + db.p_s * a;
  out.expected_candidates = failing + a;
  out.expected_false_drops = failing;
  return out;
}

}  // namespace sigsetdb
