// Constant parameters of the paper's cost model (Table 2) and their derived
// quantities.  Defaults reproduce the paper exactly; tests use scaled-down
// instances to cross-validate the model against the executable structures.

#ifndef SIGSET_MODEL_PARAMS_H_
#define SIGSET_MODEL_PARAMS_H_

#include <cstdint>

#include "util/math.h"

namespace sigsetdb {

// Database-wide constants (paper Table 2).
struct DatabaseParams {
  int64_t n = 32000;        // N: total number of objects
  int64_t page_bytes = 4096;  // P: disk page size
  int64_t oid_bytes = 8;    // oid: OID size
  int64_t v = 13000;        // V: cardinality of the set domain
  int64_t bits_per_byte = 8;  // b
  double p_s = 1.0;         // page accesses per object, successful retrieval
  double p_u = 1.0;         // page accesses per object, unsuccessful retrieval

  // O_d = ⌊P/oid⌋ (512 for the paper's values).
  int64_t OidsPerPage() const { return page_bytes / oid_bytes; }

  // SC_OID = ⌈N/O_d⌉ (63).
  int64_t OidFilePages() const { return CeilDiv(n, OidsPerPage()); }

  // Bits per page, P·b (32768).
  int64_t PageBits() const { return page_bytes * bits_per_byte; }
};

// Signature design parameters used by the model (mirrors sig::SignatureConfig
// but lives here so the model library has no dependency on the executables).
struct SignatureParams {
  int64_t f;  // F: signature size in bits
  int64_t m;  // m: one bits per element signature
};

// NIX-specific constants (paper Table 4).
struct NixParams {
  int64_t key_bytes = 8;    // kl
  int64_t count_bytes = 2;  // field holding the number of OID entries
  int64_t fanout = 218;     // f: average non-leaf fanout
};

}  // namespace sigsetdb

#endif  // SIGSET_MODEL_PARAMS_H_
