// Analytical costs of the Bit-Sliced Signature File (paper §4.2) and the
// smart object-retrieval strategies of §5.1.3 / §5.2.2 (Appendix C).

#ifndef SIGSET_MODEL_COST_BSSF_H_
#define SIGSET_MODEL_COST_BSSF_H_

#include "model/params.h"
#include "sig/facility.h"

namespace sigsetdb {

// Pages per bit slice, ⌈N/(P·b)⌉ (1 for the paper's N = 32,000).
int64_t BssfSlicePages(const DatabaseParams& db);

// RC for T ⊇ Q (paper eq. 8, first form):
//   ⌈N/(P·b)⌉·m_q + LC_OID + P_s·A + P_u·Fd·(N−A),
// with m_q the expected query-signature weight for cardinality Dq.
double BssfRetrievalSuperset(const DatabaseParams& db,
                             const SignatureParams& sig, int64_t dt,
                             int64_t dq);

// RC for T ⊆ Q (paper eq. 8, second form):
//   ⌈N/(P·b)⌉·(F − m_q) + LC_OID + P_s·A + P_u·Fd·(N−A).
double BssfRetrievalSubset(const DatabaseParams& db,
                           const SignatureParams& sig, int64_t dt, int64_t dq);

// Smart T ⊇ Q (paper §5.1.3): form the query signature from only k of the
// Dq query elements and resolve the extra candidates.  Returns the minimum
// cost over k = 1..Dq; `*best_k` (optional) receives the minimizer.
// Cost(k) is exactly BssfRetrievalSuperset at query cardinality k — the
// remaining Dq−k elements are checked during resolution for free.
double BssfSmartSupersetCost(const DatabaseParams& db,
                             const SignatureParams& sig, int64_t dt,
                             int64_t dq, int64_t* best_k = nullptr);

// Smart T ⊆ Q (paper §5.2.2): scan only s ≤ F − m_q of the query's zero
// slices; Fd(s) = (1 − s/F)^(m·Dt).  Returns the minimum cost over s;
// `*best_s` (optional) receives the minimizer.
double BssfSmartSubsetCost(const DatabaseParams& db,
                           const SignatureParams& sig, int64_t dt, int64_t dq,
                           int64_t* best_s = nullptr);

// The query cardinality at which the plain T ⊆ Q cost is minimal
// (re-derivation of Appendix C; see DESIGN.md for the OCR note):
//   u* = 1 − (spp·F / (m·Dt·(SC_OID + P_u·N)))^(1/(m·Dt−1)),
//   Dq_opt = −(F/m)·ln u*.
double BssfDqOpt(const DatabaseParams& db, const SignatureParams& sig,
                 int64_t dt);

// Expected slice-page reads the skip index saves a T ⊇ Q scan (extension).
// Per page column the AND scan dies — and all m_q of its reads are skipped —
// as soon as ANY scanned slice's page is entirely zero.  With L live
// signatures on a column and per-bit density m_t/F, a single slice page is
// all-zero with probability q = (1 − m_t/F)^L, so
//   E[skipped] = Σ_columns m_q · (1 − (1 − q)^m_q).
// This is a lower bound: the group-granular summaries can also kill columns
// whose zeros are spread across slices.  Dominant regimes: near-empty
// stores, heavily deleted stores (L shrinks), and tiny Dt.
double BssfExpectedSupersetSkippedPages(const DatabaseParams& db,
                                        const SignatureParams& sig, int64_t dt,
                                        int64_t dq);

// Expected slice-page reads the skip index saves a T ⊆ Q scan: an OR scan
// skips exactly its empty pages, so E[skipped] = Σ_columns (F − m_q) · q.
double BssfExpectedSubsetSkippedPages(const DatabaseParams& db,
                                      const SignatureParams& sig, int64_t dt,
                                      int64_t dq);

// Expected slice-page reads a scan is served from the pinned hot tier
// (extension; sig/hot_tier.h) instead of the page file.  Steady state with
// uniform query elements: the tier pins `capacity_pages` of the F·spp slice
// pages, so each of the scan's page reads hits with probability
// min(1, capacity / (F·spp)) and
//   E[hot] = scanned_pages · min(1, capacity / (F·spp)),
// with scanned_pages = spp·m_q for T ⊇ Q and spp·(F − m_q) for T ⊆ Q.
// A lower bound under skew: the tier pins the *hottest* pages, which a
// skewed query stream rereads more often than the uniform rate.  The hot
// term moves reads, it never removes them — RC in page accesses is
// unchanged; only the reads-vs-hot split shifts.
double BssfExpectedHotPages(const DatabaseParams& db,
                            const SignatureParams& sig, int64_t dq,
                            int64_t capacity_pages, bool superset_scan);

// SC = ⌈N/(P·b)⌉·F + SC_OID.
int64_t BssfStorageCost(const DatabaseParams& db, const SignatureParams& sig);

// UC_I = F + 1 (paper's worst case: touch every slice file + OID append).
double BssfInsertCost(const SignatureParams& sig);

// Expected insert cost of the sparse variant (extension, paper §6): only the
// m_t one-bit slices are touched, so UC_I ≈ m_t + 1.
double BssfInsertCostSparse(const SignatureParams& sig, int64_t dt);

// UC_D = SC_OID / 2 (same delete-flag scan as SSF).
double BssfDeleteCost(const DatabaseParams& db);

}  // namespace sigsetdb

#endif  // SIGSET_MODEL_COST_BSSF_H_
