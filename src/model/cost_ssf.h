// Analytical costs of the Sequential Signature File (paper §4.1).

#ifndef SIGSET_MODEL_COST_SSF_H_
#define SIGSET_MODEL_COST_SSF_H_

#include "model/params.h"
#include "sig/facility.h"

namespace sigsetdb {

// SC_SIG = ⌈N / ⌊P·b/F⌋⌉ — signature-file pages (a full scan's cost).
int64_t SsfSignaturePages(const DatabaseParams& db, const SignatureParams& sig);

// LC_OID = SC_OID · min(Fd·(O_d − α) + α, 1) with α = A/SC_OID — the
// expected OID-file look-up cost for false-drop rate `fd` and actual-drop
// count `a` (shared by SSF and BSSF).
double OidLookupCost(const DatabaseParams& db, double fd, double a);

// RC = SC_SIG + LC_OID + P_s·A + P_u·Fd·(N − A)  (paper eq. 7).
// Valid for both query types; `kind` selects the false-drop formula.
double SsfRetrievalCost(const DatabaseParams& db, const SignatureParams& sig,
                        int64_t dt, int64_t dq, QueryKind kind);

// SC = SC_SIG + SC_OID.
int64_t SsfStorageCost(const DatabaseParams& db, const SignatureParams& sig);

// UC_I = 2 (append one signature page + one OID page).
double SsfInsertCost();

// UC_D = SC_OID / 2 (expected scan to set the delete flag).
double SsfDeleteCost(const DatabaseParams& db);

}  // namespace sigsetdb

#endif  // SIGSET_MODEL_COST_SSF_H_
