#include "model/false_drop.h"

#include <cmath>

namespace sigsetdb {

namespace {

double F(const SignatureParams& sig) { return static_cast<double>(sig.f); }
double M(const SignatureParams& sig) { return static_cast<double>(sig.m); }

// Probability that a fixed bit position is 1 in a signature of d elements.
double BitSetProbExact(const SignatureParams& sig, int64_t d) {
  return 1.0 - std::pow(1.0 - M(sig) / F(sig), static_cast<double>(d));
}

double BitSetProbApprox(const SignatureParams& sig, int64_t d) {
  return 1.0 - std::exp(-M(sig) * static_cast<double>(d) / F(sig));
}

}  // namespace

double ExpectedSignatureWeight(const SignatureParams& sig, int64_t d) {
  return F(sig) * BitSetProbExact(sig, d);
}

double ExpectedSignatureWeightApprox(const SignatureParams& sig, int64_t d) {
  return F(sig) * BitSetProbApprox(sig, d);
}

double FalseDropSuperset(const SignatureParams& sig, int64_t dt, int64_t dq) {
  return std::pow(BitSetProbExact(sig, dt),
                  M(sig) * static_cast<double>(dq));
}

double FalseDropSupersetApprox(const SignatureParams& sig, int64_t dt,
                               int64_t dq) {
  return std::pow(BitSetProbApprox(sig, dt),
                  M(sig) * static_cast<double>(dq));
}

double FalseDropSubset(const SignatureParams& sig, int64_t dt, int64_t dq) {
  return std::pow(BitSetProbExact(sig, dq),
                  M(sig) * static_cast<double>(dt));
}

double FalseDropSubsetApprox(const SignatureParams& sig, int64_t dt,
                             int64_t dq) {
  return std::pow(BitSetProbApprox(sig, dq),
                  M(sig) * static_cast<double>(dt));
}

double FalseDropSubsetPartial(const SignatureParams& sig, int64_t dt,
                              double scanned_slices) {
  double miss = 1.0 - scanned_slices / F(sig);
  if (miss < 0.0) miss = 0.0;
  return std::pow(miss, M(sig) * static_cast<double>(dt));
}

double OptimalM(int64_t f, int64_t dt) {
  return static_cast<double>(f) * std::log(2.0) / static_cast<double>(dt);
}

double FalseDropSupersetAtOptimalM(int64_t f, int64_t dt, int64_t dq) {
  double exponent = static_cast<double>(dq) * static_cast<double>(f) *
                    std::log(2.0) / static_cast<double>(dt);
  return std::pow(0.5, exponent);
}

}  // namespace sigsetdb
