#include "model/cost_bssf.h"

#include <algorithm>
#include <cmath>

#include "model/actual_drops.h"
#include "model/cost_ssf.h"
#include "model/false_drop.h"

namespace sigsetdb {

int64_t BssfSlicePages(const DatabaseParams& db) {
  return CeilDiv(db.n, db.PageBits());
}

double BssfRetrievalSuperset(const DatabaseParams& db,
                             const SignatureParams& sig, int64_t dt,
                             int64_t dq) {
  double m_q = ExpectedSignatureWeight(sig, dq);
  double fd = FalseDropSuperset(sig, dt, dq);
  double a = ActualDropsSuperset(db, dt, dq);
  double n = static_cast<double>(db.n);
  return static_cast<double>(BssfSlicePages(db)) * m_q +
         OidLookupCost(db, fd, a) + db.p_s * a + db.p_u * fd * (n - a);
}

double BssfRetrievalSubset(const DatabaseParams& db,
                           const SignatureParams& sig, int64_t dt,
                           int64_t dq) {
  double m_q = ExpectedSignatureWeight(sig, dq);
  double fd = FalseDropSubset(sig, dt, dq);
  double a = ActualDropsSubset(db, dt, dq);
  double n = static_cast<double>(db.n);
  return static_cast<double>(BssfSlicePages(db)) *
             (static_cast<double>(sig.f) - m_q) +
         OidLookupCost(db, fd, a) + db.p_s * a + db.p_u * fd * (n - a);
}

namespace {

// Per page column: L live slots (PageBits on full columns, the remainder on
// the last) and q = (1 − m_t/F)^L, the chance one scanned slice's page of
// that column is entirely zero.  `per_column` maps (q, scanned slices) to
// the column's expected skip count; summed over the store's columns.
double SumOverColumns(const DatabaseParams& db, const SignatureParams& sig,
                      int64_t dt, double scanned,
                      double (*per_column)(double q, double scanned)) {
  if (db.n <= 0 || scanned <= 0.0) return 0.0;
  const double bit_density =
      ExpectedSignatureWeight(sig, dt) / static_cast<double>(sig.f);
  const int64_t page_bits = db.PageBits();
  const int64_t columns = CeilDiv(db.n, page_bits);
  double total = 0.0;
  for (int64_t c = 0; c < columns; ++c) {
    const int64_t live = std::min(page_bits, db.n - c * page_bits);
    const double q =
        std::pow(1.0 - bit_density, static_cast<double>(live));
    total += per_column(q, scanned);
  }
  return total;
}

}  // namespace

double BssfExpectedSupersetSkippedPages(const DatabaseParams& db,
                                        const SignatureParams& sig, int64_t dt,
                                        int64_t dq) {
  const double m_q = ExpectedSignatureWeight(sig, dq);
  return SumOverColumns(db, sig, dt, m_q, [](double q, double scanned) {
    // The column dies (all `scanned` reads skipped) when any scanned
    // slice's page is empty.
    return scanned * (1.0 - std::pow(1.0 - q, scanned));
  });
}

double BssfExpectedSubsetSkippedPages(const DatabaseParams& db,
                                      const SignatureParams& sig, int64_t dt,
                                      int64_t dq) {
  const double m_q = ExpectedSignatureWeight(sig, dq);
  const double scanned = static_cast<double>(sig.f) - m_q;
  return SumOverColumns(db, sig, dt, scanned, [](double q, double s) {
    // OR scans skip exactly their empty pages.
    return s * q;
  });
}

double BssfExpectedHotPages(const DatabaseParams& db,
                            const SignatureParams& sig, int64_t dq,
                            int64_t capacity_pages, bool superset_scan) {
  if (capacity_pages <= 0) return 0.0;
  const double spp = static_cast<double>(BssfSlicePages(db));
  const double m_q = ExpectedSignatureWeight(sig, dq);
  const double scanned =
      spp * (superset_scan ? m_q : static_cast<double>(sig.f) - m_q);
  const double store_pages = spp * static_cast<double>(sig.f);
  if (store_pages <= 0.0) return 0.0;
  const double hit =
      std::min(1.0, static_cast<double>(capacity_pages) / store_pages);
  return scanned * hit;
}

double BssfSmartSupersetCost(const DatabaseParams& db,
                             const SignatureParams& sig, int64_t dt,
                             int64_t dq, int64_t* best_k) {
  double best = BssfRetrievalSuperset(db, sig, dt, dq);
  int64_t arg = dq;
  for (int64_t k = 1; k < dq; ++k) {
    // Using k elements is equivalent to running the plain strategy for a
    // query of cardinality k: candidates = A(k) + Fd(k)·(N − A(k)) and all
    // of them are fetched once (the full Dq-element check happens on the
    // fetched object at no extra I/O).
    double cost = BssfRetrievalSuperset(db, sig, dt, k);
    if (cost < best) {
      best = cost;
      arg = k;
    }
  }
  if (best_k != nullptr) *best_k = arg;
  return best;
}

double BssfSmartSubsetCost(const DatabaseParams& db,
                           const SignatureParams& sig, int64_t dt, int64_t dq,
                           int64_t* best_s) {
  double m_q = ExpectedSignatureWeight(sig, dq);
  int64_t max_s = static_cast<int64_t>(
      std::floor(static_cast<double>(sig.f) - m_q));
  double a = ActualDropsSubset(db, dt, dq);
  double n = static_cast<double>(db.n);
  double spp = static_cast<double>(BssfSlicePages(db));
  // The plain strategy (scan every zero slice, eq. 8) is always available
  // as a fallback, so the smart cost can never exceed it; starting from it
  // also irons out the tiny mismatch between the partial-scan false-drop
  // approximation at s = F − m_q and eq. 6.
  double best = BssfRetrievalSubset(db, sig, dt, dq);
  int64_t arg = max_s;
  for (int64_t s = 0; s <= max_s; ++s) {
    double fd = FalseDropSubsetPartial(sig, dt, static_cast<double>(s));
    double cost = spp * static_cast<double>(s) + OidLookupCost(db, fd, a) +
                  db.p_s * a + db.p_u * fd * (n - a);
    if (cost < best) {
      best = cost;
      arg = s;
    }
  }
  if (best_s != nullptr) *best_s = arg;
  return best;
}

double BssfDqOpt(const DatabaseParams& db, const SignatureParams& sig,
                 int64_t dt) {
  // Minimize RC(Dq) ≈ spp·F·u + C·(1−u)^(m·Dt) over u = e^(−m·Dq/F), where
  // C = SC_OID + P_u·N.  Setting dRC/du = 0:
  //   (1−u*)^(m·Dt−1) = spp·F / (C·m·Dt).
  double f = static_cast<double>(sig.f);
  double m = static_cast<double>(sig.m);
  double mdt = m * static_cast<double>(dt);
  double c = static_cast<double>(db.OidFilePages()) +
             db.p_u * static_cast<double>(db.n);
  double spp = static_cast<double>(BssfSlicePages(db));
  double rhs = spp * f / (c * mdt);
  double u_star = 1.0 - std::pow(rhs, 1.0 / (mdt - 1.0));
  if (u_star <= 0.0) return 0.0;  // scanning slices never pays off
  return -(f / m) * std::log(u_star);
}

int64_t BssfStorageCost(const DatabaseParams& db, const SignatureParams& sig) {
  return BssfSlicePages(db) * sig.f + db.OidFilePages();
}

double BssfInsertCost(const SignatureParams& sig) {
  return static_cast<double>(sig.f) + 1.0;
}

double BssfInsertCostSparse(const SignatureParams& sig, int64_t dt) {
  return ExpectedSignatureWeight(sig, dt) + 1.0;
}

double BssfDeleteCost(const DatabaseParams& db) {
  return static_cast<double>(db.OidFilePages()) / 2.0;
}

}  // namespace sigsetdb
