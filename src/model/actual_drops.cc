#include "model/actual_drops.h"

namespace sigsetdb {

double ActualDropsSuperset(const DatabaseParams& db, int64_t dt, int64_t dq) {
  if (dq > dt) return 0.0;
  return static_cast<double>(db.n) *
         ChooseRatio(db.v - dq, dt - dq, db.v, dt);
}

double ActualDropsSubset(const DatabaseParams& db, int64_t dt, int64_t dq) {
  if (dt > dq) return 0.0;
  return static_cast<double>(db.n) * ChooseRatio(dq, dt, db.v, dt);
}

double ActualDropsEquals(const DatabaseParams& db, int64_t dt, int64_t dq) {
  if (dt != dq) return 0.0;
  return static_cast<double>(db.n) * ChooseRatio(db.v, 0, db.v, dt);
}

double ActualDropsOverlap(const DatabaseParams& db, int64_t dt, int64_t dq) {
  return static_cast<double>(db.n) *
         (1.0 - ChooseRatio(db.v - dq, dt, db.v, dt));
}

double NixSubsetFailingCandidates(const DatabaseParams& db, int64_t dt,
                                  int64_t dq) {
  double sum = 0.0;
  for (int64_t j = 1; j < dt; ++j) {
    sum += HypergeometricPmf(db.v, dq, dt, j);
  }
  return static_cast<double>(db.n) * sum;
}

}  // namespace sigsetdb
