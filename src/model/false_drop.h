// False-drop probabilities and expected signature weights (paper §3.2 and
// Appendix A).
//
// All functions offer the *exact* ideal-hash expressions; the approximate
// exponential forms the paper prints (valid for m/F ≪ 1) are available for
// comparison and are what the figure benches annotate.

#ifndef SIGSET_MODEL_FALSE_DROP_H_
#define SIGSET_MODEL_FALSE_DROP_H_

#include "model/params.h"

namespace sigsetdb {

// Expected number of one bits in a set signature of cardinality d:
//   m_t = F·(1 − (1 − m/F)^d)           (exact)
//       ≈ F·(1 − e^(−m·d/F))            (paper's approximation)
// The same formula gives m_q with d = Dq.
double ExpectedSignatureWeight(const SignatureParams& sig, int64_t d);
double ExpectedSignatureWeightApprox(const SignatureParams& sig, int64_t d);

// False-drop probability for T ⊇ Q (paper eq. 2):
//   Fd = (1 − (1 − m/F)^Dt)^(m·Dq) ≈ (1 − e^(−m·Dt/F))^(m·Dq).
double FalseDropSuperset(const SignatureParams& sig, int64_t dt, int64_t dq);
double FalseDropSupersetApprox(const SignatureParams& sig, int64_t dt,
                               int64_t dq);

// False-drop probability for T ⊆ Q (paper eq. 6):
//   Fd = (1 − (1 − m/F)^Dq)^(m·Dt) ≈ (1 − e^(−m·Dq/F))^(m·Dt).
double FalseDropSubset(const SignatureParams& sig, int64_t dt, int64_t dq);
double FalseDropSubsetApprox(const SignatureParams& sig, int64_t dt,
                             int64_t dq);

// False-drop probability for T ⊆ Q when only `s` of the query signature's
// zero slices are scanned (the smart strategy of §5.2.2): a target survives
// iff none of its m·Dt bit settings landed on a scanned slice,
//   Fd(s) = (1 − s/F)^(m·Dt).
// With s = F − m_q this reduces to eq. 6.
double FalseDropSubsetPartial(const SignatureParams& sig, int64_t dt,
                              double scanned_slices);

// The m minimizing the superset false-drop probability (paper eq. 3):
//   m_opt = F·ln2 / Dt.
double OptimalM(int64_t f, int64_t dt);

// Fd at m = m_opt (paper eq. 4): (1/2)^(Dq·F·ln2/Dt).
double FalseDropSupersetAtOptimalM(int64_t f, int64_t dt, int64_t dq);

}  // namespace sigsetdb

#endif  // SIGSET_MODEL_FALSE_DROP_H_
