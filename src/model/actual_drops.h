// Expected actual-drop counts (paper §4.4): how many of the N uniformly
// drawn Dt-subsets of the V-element domain satisfy the query predicate.
// Extensions for the equality and overlap operators (paper §6 future work)
// follow the same combinatorial style.

#ifndef SIGSET_MODEL_ACTUAL_DROPS_H_
#define SIGSET_MODEL_ACTUAL_DROPS_H_

#include "model/params.h"

namespace sigsetdb {

// T ⊇ Q (requires Dt ≥ Dq for a nonzero result):
//   A = N · C(V−Dq, Dt−Dq) / C(V, Dt).
double ActualDropsSuperset(const DatabaseParams& db, int64_t dt, int64_t dq);

// T ⊆ Q (requires Dq ≥ Dt for a nonzero result):
//   A = N · C(Dq, Dt) / C(V, Dt).
double ActualDropsSubset(const DatabaseParams& db, int64_t dt, int64_t dq);

// T = Q (extension): A = N / C(V, Dt) when Dq = Dt, else 0.
double ActualDropsEquals(const DatabaseParams& db, int64_t dt, int64_t dq);

// T ∩ Q ≠ ∅ (extension): A = N · (1 − C(V−Dq, Dt)/C(V, Dt)).
double ActualDropsOverlap(const DatabaseParams& db, int64_t dt, int64_t dq);

// Expected number of candidate objects a NIX union retrieves for T ⊆ Q that
// then *fail* the check (Appendix B's middle term divided by P_u·N...·):
//   N · Σ_{j=1..Dt−1} C(Dq,j)·C(V−Dq,Dt−j)/C(V,Dt).
double NixSubsetFailingCandidates(const DatabaseParams& db, int64_t dt,
                                  int64_t dq);

}  // namespace sigsetdb

#endif  // SIGSET_MODEL_ACTUAL_DROPS_H_
