#include "model/cost_batch.h"

#include <algorithm>
#include <cmath>

#include "model/cost_nix.h"
#include "model/false_drop.h"

namespace sigsetdb {

double SsfBatchInsertCost(const DatabaseParams& db, const SignatureParams& sig,
                          int64_t n) {
  if (n < 1) return 0.0;
  int64_t spp = db.PageBits() / sig.f;
  return static_cast<double>(CeilDiv(n, spp) + CeilDiv(n, db.OidsPerPage())) /
         static_cast<double>(n);
}

double BssfBatchInsertCost(const SignatureParams& sig, const DatabaseParams& db,
                           int64_t n) {
  if (n < 1) return 0.0;
  return (static_cast<double>(sig.f) +
          static_cast<double>(CeilDiv(n, db.OidsPerPage()))) /
         static_cast<double>(n);
}

double BssfBatchInsertCostSparse(const SignatureParams& sig,
                                 const DatabaseParams& db, int64_t dt,
                                 int64_t n) {
  if (n < 1) return 0.0;
  double f = static_cast<double>(sig.f);
  double m_t = ExpectedSignatureWeight(sig, dt);
  double dirty_slices = f * (1.0 - std::pow(1.0 - m_t / f, n));
  return (dirty_slices + static_cast<double>(CeilDiv(n, db.OidsPerPage()))) /
         static_cast<double>(n);
}

double NixBatchInsertCost(const DatabaseParams& db, const NixParams& nix,
                          int64_t dt, int64_t n) {
  if (n < 1) return 0.0;
  double v = static_cast<double>(db.v);
  double postings = static_cast<double>(n) * static_cast<double>(dt);
  double distinct_keys = v * (1.0 - std::pow(1.0 - 1.0 / v, postings));
  double rc = static_cast<double>(NixLookupCost(db, nix, dt));
  return rc * distinct_keys / static_cast<double>(n);
}

double SigBatchDeleteCost(const DatabaseParams& db, int64_t n) {
  if (n < 1) return 0.0;
  double sc_oid = static_cast<double>(db.OidFilePages());
  return (sc_oid + std::min(static_cast<double>(n), sc_oid)) /
         static_cast<double>(n);
}

}  // namespace sigsetdb
