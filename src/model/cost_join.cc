#include "model/cost_join.h"

#include "model/actual_drops.h"
#include "model/false_drop.h"
#include "util/math.h"

namespace sigsetdb {

namespace {
// Slotted-page constants (storage/slotted_page.h): 4-byte header, 4-byte
// slot-directory entry; object records serialize as 4 + 8·dt bytes.
constexpr int64_t kPageHeaderBytes = 4;
constexpr int64_t kSlotEntryBytes = 4;
constexpr int64_t kRecordHeaderBytes = 4;
constexpr int64_t kElementBytes = 8;
}  // namespace

int64_t ObjectFilePages(const DatabaseParams& db, int64_t dt) {
  if (db.n <= 0) return 0;
  const int64_t footprint =
      kSlotEntryBytes + kRecordHeaderBytes + kElementBytes * (dt < 0 ? 0 : dt);
  int64_t per_page = (db.page_bytes - kPageHeaderBytes) / footprint;
  if (per_page < 1) per_page = 1;
  return CeilDiv(db.n, per_page);
}

double JoinPairSelectivity(const DatabaseParams& db_s, int64_t dt_r,
                           int64_t dt_s) {
  if (dt_r > dt_s) return 0.0;
  return ChooseRatio(db_s.v - dt_r, dt_s - dt_r, db_s.v, dt_s);
}

double JoinExpectedResultPairs(const DatabaseParams& db_s, int64_t dt_r,
                               int64_t dt_s, int64_t n_r) {
  return static_cast<double>(n_r) * static_cast<double>(db_s.n) *
         JoinPairSelectivity(db_s, dt_r, dt_s);
}

double JoinPairFalseDropProbability(const SignatureParams& sig, int64_t dt_r,
                                    int64_t dt_s) {
  // r plays the query (Dq = dt_r), s the target (Dt = dt_s) in eq. 2.
  return FalseDropSuperset(sig, dt_s, dt_r);
}

double JoinExpectedCandidatePairs(const DatabaseParams& db_s,
                                  const SignatureParams& sig, int64_t dt_r,
                                  int64_t dt_s, int64_t n_r) {
  const double a = ActualDropsSuperset(db_s, dt_s, dt_r);  // per r
  const double fd = JoinPairFalseDropProbability(sig, dt_r, dt_s);
  return static_cast<double>(n_r) *
         (a + fd * (static_cast<double>(db_s.n) - a));
}

JoinCostBreakdown JoinNestedLoopCost(const DatabaseParams& db_r, int64_t dt_r,
                                     const DatabaseParams& db_s, int64_t dt_s,
                                     double per_probe_cost,
                                     double per_probe_candidates) {
  JoinCostBreakdown bd;
  bd.r_scan = static_cast<double>(ObjectFilePages(db_r, dt_r));
  bd.probe = static_cast<double>(db_r.n) * per_probe_cost;
  bd.expected_candidate_pairs =
      static_cast<double>(db_r.n) * per_probe_candidates;
  bd.expected_result_pairs =
      JoinExpectedResultPairs(db_s, dt_r, dt_s, db_r.n);
  return bd;
}

JoinCostBreakdown JoinSignatureHashCost(const DatabaseParams& db_r,
                                        int64_t dt_r,
                                        const DatabaseParams& db_s,
                                        int64_t dt_s,
                                        const SignatureParams& sig) {
  JoinCostBreakdown bd;
  bd.r_scan = static_cast<double>(ObjectFilePages(db_r, dt_r));
  bd.s_scan = static_cast<double>(ObjectFilePages(db_s, dt_s));
  bd.expected_candidate_pairs =
      JoinExpectedCandidatePairs(db_s, sig, dt_r, dt_s, db_r.n);
  bd.expected_result_pairs =
      JoinExpectedResultPairs(db_s, dt_r, dt_s, db_r.n);
  return bd;
}

JoinCostBreakdown JoinAdaptiveCost(const DatabaseParams& db_r, int64_t dt_r,
                                   const DatabaseParams& db_s, int64_t dt_s,
                                   const SignatureParams& sig) {
  // Adaptive only leaves the in-memory direction when a probe is modeled
  // cheaper, so sig-hash's page count bounds it; candidate pairs match the
  // signature filter's.
  return JoinSignatureHashCost(db_r, dt_r, db_s, dt_s, sig);
}

}  // namespace sigsetdb
