// Analytical costs of the Nested Index (paper §4.3, Appendix B) and its
// smart superset strategy (§5.1.3).

#ifndef SIGSET_MODEL_COST_NIX_H_
#define SIGSET_MODEL_COST_NIX_H_

#include "model/params.h"

namespace sigsetdb {

// d: average number of objects whose indexed set attribute contains a given
// element value, d = Dt·N/V (Table 4).
double NixPostingsPerKey(const DatabaseParams& db, int64_t dt);

// Il = d·oid + kl + count field — average leaf entry size in bytes.
double NixLeafEntryBytes(const DatabaseParams& db, const NixParams& nix,
                         int64_t dt);

// lp = ⌈V / ⌊P/Il⌋⌉ — leaf pages (685 / 6500 for Dt = 10 / 100).
int64_t NixLeafPages(const DatabaseParams& db, const NixParams& nix,
                     int64_t dt);

// nlp = ⌈lp/f⌉ + ⌈⌈lp/f⌉/f⌉ + ... down to a single root (5 / 31).
int64_t NixNonLeafPages(const DatabaseParams& db, const NixParams& nix,
                        int64_t dt);

// Number of non-leaf levels (2 for both paper configurations).
int64_t NixHeight(const DatabaseParams& db, const NixParams& nix, int64_t dt);

// rc = height + 1 — page reads per key look-up (3).
int64_t NixLookupCost(const DatabaseParams& db, const NixParams& nix,
                      int64_t dt);

// T ⊇ Q: RC = rc·Dq + P_s·A (the intersection is exact, so only actual
// drops are fetched).
double NixRetrievalSuperset(const DatabaseParams& db, const NixParams& nix,
                            int64_t dt, int64_t dq);

// T ⊆ Q (Appendix B): RC = rc·Dq + P_u·(failing candidates) + P_s·A, where
// the candidates are all objects sharing ≥1 element with Q.
double NixRetrievalSubset(const DatabaseParams& db, const NixParams& nix,
                          int64_t dt, int64_t dq);

// Smart T ⊇ Q (paper §5.1.3): intersect only k ≤ Dq postings and resolve;
// cost(k) = rc·k + P·A(k) with A(k) the superset actual drops at query
// cardinality k.  Returns the minimum over k; `*best_k` the minimizer.
double NixSmartSupersetCost(const DatabaseParams& db, const NixParams& nix,
                            int64_t dt, int64_t dq, int64_t* best_k = nullptr);

// SC = lp + nlp (Table 5).
int64_t NixStorageCost(const DatabaseParams& db, const NixParams& nix,
                       int64_t dt);

// UC_I = UC_D = rc·Dt (one traversal per element; node splits ignored).
double NixInsertCost(const DatabaseParams& db, const NixParams& nix,
                     int64_t dt);
double NixDeleteCost(const DatabaseParams& db, const NixParams& nix,
                     int64_t dt);

}  // namespace sigsetdb

#endif  // SIGSET_MODEL_COST_NIX_H_
