// Per-stage decomposition of the retrieval-cost formulas.
//
// The cost functions in cost_ssf.h / cost_bssf.h / cost_nix.h return the
// total RC of a plan; the observability layer needs the same prediction
// split the way the formulas are actually built — candidate selection
// (signature scan, slice scan, or B-tree descents), OID-file look-up, and
// false-drop resolution — so a QueryTrace can pair each measured executor
// stage with the model's prediction for exactly that stage.
//
// Every breakdown's total() equals the corresponding cost function's value
// (a property asserted by tests/query_trace_test.cc); the smart variants
// take the strategy parameter (k elements used / s slices scanned) that the
// advisor chose, mirroring how the smart cost optimizers price one point.

#ifndef SIGSET_MODEL_COST_BREAKDOWN_H_
#define SIGSET_MODEL_COST_BREAKDOWN_H_

#include "model/params.h"
#include "sig/facility.h"

namespace sigsetdb {

// One plan's predicted pages, stage by stage.
struct CostBreakdown {
  double candidate_selection = 0;  // signature/slice scan or rc·k descents
  double oid_lookup = 0;           // LC_OID (0 for NIX — postings hold OIDs)
  double resolution = 0;           // P_s·A + P_u·(failing candidates)
  // Expected candidate-set composition behind `resolution`.
  double expected_candidates = 0;
  double expected_false_drops = 0;

  double total() const {
    return candidate_selection + oid_lookup + resolution;
  }
};

// SSF, plain strategy (eq. 7).  `kind` must be kSuperset or kSubset (use
// CandidateKind for the proper variants).
CostBreakdown SsfBreakdown(const DatabaseParams& db,
                           const SignatureParams& sig, int64_t dt, int64_t dq,
                           QueryKind kind);

// BSSF T ⊇ Q with the query signature built from `k` elements (k = dq is
// the plain strategy; k < dq is §5.1.3 smart retrieval).
CostBreakdown BssfSupersetBreakdown(const DatabaseParams& db,
                                    const SignatureParams& sig, int64_t dt,
                                    int64_t dq, int64_t k);

// BSSF T ⊆ Q scanning `s` zero slices (s < 0 = all F − m_q zero slices,
// the plain strategy; s >= 0 is §5.2.2 smart retrieval).
CostBreakdown BssfSubsetBreakdown(const DatabaseParams& db,
                                  const SignatureParams& sig, int64_t dt,
                                  int64_t dq, int64_t s);

// NIX T ⊇ Q intersecting `k` postings (k = dq plain, k < dq §5.1.3 smart).
CostBreakdown NixSupersetBreakdown(const DatabaseParams& db,
                                   const NixParams& nix, int64_t dt,
                                   int64_t dq, int64_t k);

// NIX T ⊆ Q (Appendix B).
CostBreakdown NixSubsetBreakdown(const DatabaseParams& db,
                                 const NixParams& nix, int64_t dt,
                                 int64_t dq);

}  // namespace sigsetdb

#endif  // SIGSET_MODEL_COST_BREAKDOWN_H_
