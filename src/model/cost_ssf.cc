#include "model/cost_ssf.h"

#include <algorithm>

#include "model/actual_drops.h"
#include "model/false_drop.h"

namespace sigsetdb {

int64_t SsfSignaturePages(const DatabaseParams& db,
                          const SignatureParams& sig) {
  int64_t sigs_per_page = db.PageBits() / sig.f;
  return CeilDiv(db.n, sigs_per_page);
}

double OidLookupCost(const DatabaseParams& db, double fd, double a) {
  double sc_oid = static_cast<double>(db.OidFilePages());
  double alpha = a / sc_oid;  // actual drops per OID-file page
  double per_page =
      std::min(fd * (static_cast<double>(db.OidsPerPage()) - alpha) + alpha,
               1.0);
  return sc_oid * per_page;
}

double SsfRetrievalCost(const DatabaseParams& db, const SignatureParams& sig,
                        int64_t dt, int64_t dq, QueryKind kind) {
  double fd = kind == QueryKind::kSuperset ? FalseDropSuperset(sig, dt, dq)
                                           : FalseDropSubset(sig, dt, dq);
  double a = kind == QueryKind::kSuperset ? ActualDropsSuperset(db, dt, dq)
                                          : ActualDropsSubset(db, dt, dq);
  double n = static_cast<double>(db.n);
  return static_cast<double>(SsfSignaturePages(db, sig)) +
         OidLookupCost(db, fd, a) + db.p_s * a + db.p_u * fd * (n - a);
}

int64_t SsfStorageCost(const DatabaseParams& db, const SignatureParams& sig) {
  return SsfSignaturePages(db, sig) + db.OidFilePages();
}

double SsfInsertCost() { return 2.0; }

double SsfDeleteCost(const DatabaseParams& db) {
  return static_cast<double>(db.OidFilePages()) / 2.0;
}

}  // namespace sigsetdb
