#include "model/cost_ext.h"

#include <cmath>

#include "model/actual_drops.h"
#include "model/cost_bssf.h"
#include "model/cost_nix.h"
#include "model/cost_ssf.h"
#include "model/false_drop.h"

namespace sigsetdb {

namespace {

double BitOneProb(const SignatureParams& sig, int64_t d) {
  return 1.0 - std::pow(1.0 - static_cast<double>(sig.m) /
                                  static_cast<double>(sig.f),
                        static_cast<double>(d));
}

// Shared resolution-cost tail: OID look-up plus object fetches.
double ResolutionCost(const DatabaseParams& db, double fd, double a) {
  return OidLookupCost(db, fd, a) + db.p_s * a +
         db.p_u * fd * (static_cast<double>(db.n) - a);
}

}  // namespace

double FalseDropEquals(const SignatureParams& sig, int64_t dt, int64_t dq) {
  double p_t = BitOneProb(sig, dt);
  double p_q = BitOneProb(sig, dq);
  double agree = p_t * p_q + (1.0 - p_t) * (1.0 - p_q);
  return std::pow(agree, static_cast<double>(sig.f));
}

double FalseDropOverlap(const SignatureParams& sig, int64_t dt, int64_t dq) {
  double fd1 = FalseDropSuperset(sig, dt, 1);
  return 1.0 - std::pow(1.0 - fd1, static_cast<double>(dq));
}

double SsfRetrievalEquals(const DatabaseParams& db, const SignatureParams& sig,
                          int64_t dt, int64_t dq) {
  double fd = FalseDropEquals(sig, dt, dq);
  double a = ActualDropsEquals(db, dt, dq);
  return static_cast<double>(SsfSignaturePages(db, sig)) +
         ResolutionCost(db, fd, a);
}

double BssfRetrievalEquals(const DatabaseParams& db,
                           const SignatureParams& sig, int64_t dt,
                           int64_t dq) {
  double fd = FalseDropEquals(sig, dt, dq);
  double a = ActualDropsEquals(db, dt, dq);
  return static_cast<double>(BssfSlicePages(db)) *
             static_cast<double>(sig.f) +
         ResolutionCost(db, fd, a);
}

double NixRetrievalEquals(const DatabaseParams& db, const NixParams& nix,
                          int64_t dt, int64_t dq) {
  // Intersection of all Dq postings (as for ⊇), then a cardinality check
  // against the fetched object.
  double rc = static_cast<double>(NixLookupCost(db, nix, dt));
  double candidates = ActualDropsSuperset(db, dt, dq);
  return rc * static_cast<double>(dq) + db.p_s * candidates;
}

double SsfRetrievalOverlap(const DatabaseParams& db,
                           const SignatureParams& sig, int64_t dt,
                           int64_t dq) {
  double fd = FalseDropOverlap(sig, dt, dq);
  double a = ActualDropsOverlap(db, dt, dq);
  return static_cast<double>(SsfSignaturePages(db, sig)) +
         ResolutionCost(db, fd, a);
}

double BssfRetrievalOverlap(const DatabaseParams& db,
                            const SignatureParams& sig, int64_t dt,
                            int64_t dq) {
  double fd = FalseDropOverlap(sig, dt, dq);
  double a = ActualDropsOverlap(db, dt, dq);
  // One m-slice membership filter per query element.
  return static_cast<double>(BssfSlicePages(db)) *
             static_cast<double>(sig.m) * static_cast<double>(dq) +
         ResolutionCost(db, fd, a);
}

double NixRetrievalOverlap(const DatabaseParams& db, const NixParams& nix,
                           int64_t dt, int64_t dq) {
  // Union of postings is the exact answer: rc·Dq look-ups + A fetches.
  double rc = static_cast<double>(NixLookupCost(db, nix, dt));
  return rc * static_cast<double>(dq) +
         db.p_s * ActualDropsOverlap(db, dt, dq);
}

}  // namespace sigsetdb
