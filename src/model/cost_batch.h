// Amortized update costs of the batched write path (extension, DESIGN.md
// §11).  Each formula gives the expected page WRITES per operation when n
// operations are grouped into one WriteBatch, so the n = 1 case degenerates
// to the per-operation costs of cost_ssf.h / cost_bssf.h / cost_nix.h and
// the n → ∞ limit exposes the amortization floor.

#ifndef SIGSET_MODEL_COST_BATCH_H_
#define SIGSET_MODEL_COST_BATCH_H_

#include "model/params.h"

namespace sigsetdb {

// SSF batch insert, per operation:
//   UC_I(n) = (⌈n/spp⌉ + ⌈n/O_d⌉) / n,  spp = ⌊P·b/F⌋.
// The appender fills whole signature pages (spp signatures each) and whole
// OID pages (O_d entries each) before writing them, so a batch of n appends
// writes ⌈n/spp⌉ + ⌈n/O_d⌉ pages instead of 2n.
double SsfBatchInsertCost(const DatabaseParams& db, const SignatureParams& sig,
                          int64_t n);

// BSSF batch insert (kTouchAllSlices), per operation:
//   UC_I(n) = (F + ⌈n/O_d⌉) / n
// in the paper's one-page-per-slice regime (N ≤ P·b): the first insert
// dirties every slice page, so the whole batch writes each of the F slice
// pages exactly once.
double BssfBatchInsertCost(const SignatureParams& sig, const DatabaseParams& db,
                           int64_t n);

// BSSF batch insert (kSparse), per operation:
//   UC_I(n) = F·(1 − (1 − m_t/F)^n)/n + ⌈n/O_d⌉/n,
// m_t = F·(1 − (1 − m/F)^Dt).  Each of the F slice pages is dirtied iff at
// least one of the n signatures has a one bit in that slice (probability
// m_t/F per signature), and each dirty page is written exactly once.
double BssfBatchInsertCostSparse(const SignatureParams& sig,
                                 const DatabaseParams& db, int64_t dt,
                                 int64_t n);

// NIX batch insert, per operation:
//   UC_I(n) = rc·K/n,  K = V·(1 − (1 − 1/V)^(n·Dt)).
// K is the expected number of DISTINCT element values among the batch's
// n·Dt postings; the batch descends once per distinct key instead of once
// per posting.
double NixBatchInsertCost(const DatabaseParams& db, const NixParams& nix,
                          int64_t dt, int64_t n);

// SSF/BSSF batch delete, per operation:
//   UC_D(n) = (SC_OID + min(n, SC_OID)) / n.
// One tombstoning pass reads the whole OID file once (SC_OID pages) and
// rewrites only the pages holding victims — at most one page per victim and
// at most the whole file.
double SigBatchDeleteCost(const DatabaseParams& db, int64_t n);

}  // namespace sigsetdb

#endif  // SIGSET_MODEL_COST_BATCH_H_
