// Analytical costs of the set-containment join R ⋈⊆ S — the join variants
// of the paper's eqs. 2–8.
//
// The selection model prices one query against N stored sets; the join
// prices |R| such queries at once.  With both relations drawn as uniform
// random subsets of a V-element domain (the paper's workload):
//
//   true-pair probability   P(r ⊆ s)      = A_s(Dt_s, Dq=Dt_r) / N_s
//                                           (eq. 5's actual drops, per r)
//   signature survival      Fd_join       = Fd⊇(Dt=Dt_s, Dq=Dt_r)  (eq. 2
//                                           with the roles r → query,
//                                           s → target)
//   candidate pairs         |R|·(A + Fd·(N_s − A))     (eq. 5 analogue)
//
// Strategy page costs (eq. 7/8 analogues; the object file replaces the
// signature file as the scanned structure):
//
//   nested-loop   scan(R) + |R| · RC_sel(S, Dq = Dt_r) — one selection per
//                 outer row, priced by the selection advisor.
//   sig-hash      scan(R) + scan(S): both sides are read once and all
//                 partitioning/verification is in-memory (the false-drop
//                 resolution of eq. 7's P_u·Fd·N term costs zero pages —
//                 the scanned sets are already resident).
//   adaptive      bounded by sig-hash (it only leaves the in-memory
//                 direction when the modeled probe is cheaper), so it is
//                 priced identically; the advisor ranks sig-hash first on
//                 the tie (the plain method has no per-partition overhead).
//
// The model layer stays below the advisor: nested-loop takes the per-probe
// selection cost/candidates as arguments; query/advisor.h glues them in.

#ifndef SIGSET_MODEL_COST_JOIN_H_
#define SIGSET_MODEL_COST_JOIN_H_

#include <cstdint>

#include "model/params.h"

namespace sigsetdb {

// Pages of an object file holding n objects of cardinality dt, in the
// repo's slotted-page layout: 4-byte page header, 4-byte slot entry plus a
// (4 + 8·dt)-byte record per object.
int64_t ObjectFilePages(const DatabaseParams& db, int64_t dt);

// P(r ⊆ s) for one uniform-random pair (r of Dt_r elements, s of Dt_s
// elements over db_s.v): C(V−Dt_r, Dt_s−Dt_r) / C(V, Dt_s).
double JoinPairSelectivity(const DatabaseParams& db_s, int64_t dt_r,
                           int64_t dt_s);

// Expected true join pairs: n_r · N_s · P(r ⊆ s).
double JoinExpectedResultPairs(const DatabaseParams& db_s, int64_t dt_r,
                               int64_t dt_s, int64_t n_r);

// Probability a non-containing pair survives the full-signature filter
// (eq. 2 with r as the query and s as the target).
double JoinPairFalseDropProbability(const SignatureParams& sig, int64_t dt_r,
                                    int64_t dt_s);

// Expected pairs reaching exact verification under a full-signature
// filter: n_r · (A + Fd·(N_s − A)) with A the per-r actual drops.
double JoinExpectedCandidatePairs(const DatabaseParams& db_s,
                                  const SignatureParams& sig, int64_t dt_r,
                                  int64_t dt_s, int64_t n_r);

// One join plan's predicted pages, stage by stage (mirrors CostBreakdown
// for selections; total() is what the advisor ranks).
struct JoinCostBreakdown {
  double r_scan = 0;  // outer-relation object-file scan
  double s_scan = 0;  // inner-relation object-file scan (0 for nested-loop)
  double probe = 0;   // facility selections: |R| · RC_sel (0 when in-memory)
  double expected_candidate_pairs = 0;
  double expected_result_pairs = 0;

  double total() const { return r_scan + s_scan + probe; }
};

// Nested-loop-of-selections: `per_probe_cost` and `per_probe_candidates`
// are the advisor's RC and expected candidate count for ONE T ⊇ Q
// selection against S at Dq = dt_r (query/advisor.h supplies them from
// BestAccessPath/BreakdownForChoice).
JoinCostBreakdown JoinNestedLoopCost(const DatabaseParams& db_r, int64_t dt_r,
                                     const DatabaseParams& db_s, int64_t dt_s,
                                     double per_probe_cost,
                                     double per_probe_candidates);

// Signature-hash join: both object files scanned once, everything else in
// memory.
JoinCostBreakdown JoinSignatureHashCost(const DatabaseParams& db_r,
                                        int64_t dt_r,
                                        const DatabaseParams& db_s,
                                        int64_t dt_s,
                                        const SignatureParams& sig);

// Adaptive prefix/partition join: priced as sig-hash (see file comment).
JoinCostBreakdown JoinAdaptiveCost(const DatabaseParams& db_r, int64_t dt_r,
                                   const DatabaseParams& db_s, int64_t dt_s,
                                   const SignatureParams& sig);

}  // namespace sigsetdb

#endif  // SIGSET_MODEL_COST_JOIN_H_
