#include "model/cost_nix.h"

#include <cmath>
#include <limits>

#include "model/actual_drops.h"

namespace sigsetdb {

double NixPostingsPerKey(const DatabaseParams& db, int64_t dt) {
  return static_cast<double>(dt) * static_cast<double>(db.n) /
         static_cast<double>(db.v);
}

double NixLeafEntryBytes(const DatabaseParams& db, const NixParams& nix,
                         int64_t dt) {
  return NixPostingsPerKey(db, dt) * static_cast<double>(db.oid_bytes) +
         static_cast<double>(nix.key_bytes) +
         static_cast<double>(nix.count_bytes);
}

int64_t NixLeafPages(const DatabaseParams& db, const NixParams& nix,
                     int64_t dt) {
  double il = NixLeafEntryBytes(db, nix, dt);
  int64_t entries_per_page =
      static_cast<int64_t>(std::floor(static_cast<double>(db.page_bytes) / il));
  if (entries_per_page < 1) entries_per_page = 1;
  return CeilDiv(db.v, entries_per_page);
}

int64_t NixNonLeafPages(const DatabaseParams& db, const NixParams& nix,
                        int64_t dt) {
  int64_t level = NixLeafPages(db, nix, dt);
  int64_t nlp = 0;
  while (level > 1) {
    level = CeilDiv(level, nix.fanout);
    nlp += level;
  }
  return nlp;
}

int64_t NixHeight(const DatabaseParams& db, const NixParams& nix, int64_t dt) {
  int64_t level = NixLeafPages(db, nix, dt);
  int64_t height = 0;
  while (level > 1) {
    level = CeilDiv(level, nix.fanout);
    ++height;
  }
  return height;
}

int64_t NixLookupCost(const DatabaseParams& db, const NixParams& nix,
                      int64_t dt) {
  return NixHeight(db, nix, dt) + 1;
}

double NixRetrievalSuperset(const DatabaseParams& db, const NixParams& nix,
                            int64_t dt, int64_t dq) {
  double rc = static_cast<double>(NixLookupCost(db, nix, dt));
  return rc * static_cast<double>(dq) +
         db.p_s * ActualDropsSuperset(db, dt, dq);
}

double NixRetrievalSubset(const DatabaseParams& db, const NixParams& nix,
                          int64_t dt, int64_t dq) {
  double rc = static_cast<double>(NixLookupCost(db, nix, dt));
  return rc * static_cast<double>(dq) +
         db.p_u * NixSubsetFailingCandidates(db, dt, dq) +
         db.p_s * ActualDropsSubset(db, dt, dq);
}

double NixSmartSupersetCost(const DatabaseParams& db, const NixParams& nix,
                            int64_t dt, int64_t dq, int64_t* best_k) {
  double rc = static_cast<double>(NixLookupCost(db, nix, dt));
  double best = std::numeric_limits<double>::infinity();
  int64_t arg = dq;
  for (int64_t k = 1; k <= dq; ++k) {
    // Intersecting k postings yields A(k) candidates (objects containing
    // the k chosen query elements); each is fetched once and, for k < Dq,
    // re-checked against the remaining elements during resolution.
    double candidates = ActualDropsSuperset(db, dt, k);
    double cost = rc * static_cast<double>(k) + db.p_s * candidates;
    if (cost < best) {
      best = cost;
      arg = k;
    }
  }
  if (best_k != nullptr) *best_k = arg;
  return best;
}

int64_t NixStorageCost(const DatabaseParams& db, const NixParams& nix,
                       int64_t dt) {
  return NixLeafPages(db, nix, dt) + NixNonLeafPages(db, nix, dt);
}

double NixInsertCost(const DatabaseParams& db, const NixParams& nix,
                     int64_t dt) {
  return static_cast<double>(NixLookupCost(db, nix, dt)) *
         static_cast<double>(dt);
}

double NixDeleteCost(const DatabaseParams& db, const NixParams& nix,
                     int64_t dt) {
  return NixInsertCost(db, nix, dt);
}

}  // namespace sigsetdb
