// The paper's SQL-like set-query language (§2, after [Kim90]):
//
//   select Student where hobbies has-subset ("Baseball", "Fishing")
//   select Student where hobbies in-subset ("Baseball", "Fishing", "Tennis")
//
// Grammar (case-sensitive keywords, one class, conjunctions with `and`):
//
//   query     := "select" IDENT "where" predicate ("and" predicate)*
//   predicate := IDENT operator "(" literal ("," literal)* ")"
//   operator  := "has-subset"          (T ⊇ Q)
//              | "in-subset"           (T ⊆ Q)
//              | "has-proper-subset"   (T ⊋ Q; the paper's §1 ⊊ variant,
//              | "in-proper-subset"     T ⊊ Q,  mirrored)
//              | "equals"              (T = Q)
//              | "overlaps"            (T ∩ Q ≠ ∅)
//   literal   := STRING ("...")  |  INTEGER
//
// ParseQuery turns text into a syntax tree; BindQuery resolves attribute
// names and string literals against a Database (its per-attribute element
// dictionaries) producing executable SetPredicates.
//
// Set-containment joins extend the grammar with a second statement form:
//
//   join Student on courses in-subset prereqs
//   join Student on courses in-subset prereqs using sig-hash
//
//   join_query := "join" IDENT "on" IDENT "in-subset" IDENT
//                 ("using" strategy)?
//   strategy   := "auto" | "nested-loop" | "sig-hash" | "adaptive"
//
// yielding every object pair (r, s) with r.courses ⊆ s.prereqs (see
// Database::ExecuteSetJoin).

#ifndef SIGSET_QUERY_LANGUAGE_H_
#define SIGSET_QUERY_LANGUAGE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "db/database.h"
#include "sig/facility.h"
#include "util/status.h"

namespace sigsetdb {

// One literal in a query set: a string or an unsigned integer.
struct QueryLiteral {
  bool is_string = false;
  std::string text;   // when is_string
  uint64_t number = 0;  // otherwise
};

// One parsed predicate (unbound: attribute and literals are still names).
struct ParsedPredicate {
  std::string attribute;
  QueryKind kind;
  std::vector<QueryLiteral> literals;
};

// A parsed query.
struct ParsedQuery {
  std::string class_name;
  std::vector<ParsedPredicate> predicates;
};

// Parses `text`; returns kInvalidArgument with a position-annotated message
// on syntax errors.
StatusOr<ParsedQuery> ParseQuery(const std::string& text);

// Resolves attribute names and literals against `db`.  String literals are
// looked up in the attribute's dictionary; unknown strings yield an element
// id that matches nothing (NotFound would reject queries that should simply
// return an empty/filtered result), reported via `*unknown_strings` when
// non-null.  Integer literals are used verbatim (element ids / OID values).
StatusOr<std::vector<SetPredicate>> BindQuery(
    const ParsedQuery& query, Database* db,
    std::vector<std::string>* unknown_strings = nullptr);

// Convenience: parse, bind and execute in one step.
StatusOr<DatabaseQueryResult> ExecuteQueryText(const std::string& text,
                                               Database* db);

// A parsed join statement (attributes still unresolved names).
struct ParsedJoin {
  std::string class_name;
  std::string r_attribute;  // the ⊆ side (every r.set ⊆ s.set)
  std::string s_attribute;  // the ⊇ side
  JoinStrategy strategy = JoinStrategy::kAuto;
};

// Parses a "join ... on ... in-subset ..." statement; kInvalidArgument with
// a position-annotated message on syntax errors or unknown strategy names.
StatusOr<ParsedJoin> ParseJoinQuery(const std::string& text);

// Convenience: parse and execute a join statement against `db`.
StatusOr<DatabaseJoinResult> ExecuteJoinQueryText(const std::string& text,
                                                  Database* db);

}  // namespace sigsetdb

#endif  // SIGSET_QUERY_LANGUAGE_H_
