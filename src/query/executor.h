// Query execution: candidate selection through an access facility followed
// by false-drop resolution (paper §3.1).
//
// The executor fetches every candidate object (one page access each — the
// paper charges P_s/P_u per object even for true drops, since qualified
// objects are returned to the user) and re-checks the set predicate against
// the stored value, counting false drops.
//
// Every entry point takes an optional ParallelExecutionContext.  With a
// parallel context, BSSF slice scans partition across the pool and false-
// drop resolution fans out over contiguous candidate ranges; each worker
// fetches through a thread-local IoStats merged into the file counters on
// join, so results AND logical page-access totals are identical to the
// serial path (a property the differential test suite enforces).

#ifndef SIGSET_QUERY_EXECUTOR_H_
#define SIGSET_QUERY_EXECUTOR_H_

#include <cstdint>

#include "nix/nested_index.h"
#include "obj/object_store.h"
#include "obs/trace.h"
#include "sig/bssf.h"
#include "sig/facility.h"
#include "util/thread_pool.h"

namespace sigsetdb {

// Outcome of one set query.
struct QueryResult {
  std::vector<Oid> oids;       // objects satisfying the predicate
  uint64_t num_candidates = 0;  // drops delivered by the facility
  uint64_t num_false_drops = 0;  // candidates that failed resolution
};

// Runs `kind` with `query` through `facility`, then resolves candidates
// against `store`.  `query` must be normalized (sorted unique).
//
// All entry points accept an optional `trace`.  When non-null, per-stage
// spans (candidate selection with per-file children, resolution) are
// appended to it.  Tracing only snapshots counters already maintained by
// the files — it performs no I/O of its own, so the page-access totals are
// identical with tracing on or off (enforced by query_trace_test).
StatusOr<QueryResult> ExecuteSetQuery(
    SetAccessFacility* facility, const ObjectStore& store, QueryKind kind,
    const ElementSet& query, const ParallelExecutionContext* ctx = nullptr,
    QueryTrace* trace = nullptr);

// Smart T ⊇ Q on BSSF (paper §5.1.3): build the query signature from only
// `use_elements` query elements; resolution enforces the full predicate.
// `kind` may also be kProperSuperset (same candidates, strict resolution).
StatusOr<QueryResult> ExecuteSmartSupersetBssf(
    BitSlicedSignatureFile* bssf, const ObjectStore& store,
    const ElementSet& query, size_t use_elements,
    QueryKind kind = QueryKind::kSuperset,
    const ParallelExecutionContext* ctx = nullptr,
    QueryTrace* trace = nullptr);

// Smart T ⊆ Q on BSSF (paper §5.2.2): scan at most `max_slices` of the
// query signature's zero slices.  `kind` may also be kProperSubset.
StatusOr<QueryResult> ExecuteSmartSubsetBssf(
    BitSlicedSignatureFile* bssf, const ObjectStore& store,
    const ElementSet& query, size_t max_slices,
    QueryKind kind = QueryKind::kSubset,
    const ParallelExecutionContext* ctx = nullptr,
    QueryTrace* trace = nullptr);

// Smart T ⊇ Q on NIX (paper §5.1.3): intersect the postings of only
// `use_elements` query elements.  `kind` may also be kProperSuperset.
// Candidate selection is serial (B-tree descent); resolution uses `ctx`.
StatusOr<QueryResult> ExecuteSmartSupersetNix(
    NestedIndex* nix, const ObjectStore& store, const ElementSet& query,
    size_t use_elements, QueryKind kind = QueryKind::kSuperset,
    const ParallelExecutionContext* ctx = nullptr,
    QueryTrace* trace = nullptr);

// The resolution step alone: fetches each candidate from `store`, keeps
// those satisfying (`kind`, `query`).  Exposed for the smart strategies and
// for tests.  When `exact` is true a failing candidate is an internal error
// (the facility promised no false drops).  With a parallel context the
// candidate list is split into contiguous ranges resolved concurrently;
// per-range results are concatenated in range order, so the OID order,
// counts, and page-access totals match the serial loop exactly.
StatusOr<QueryResult> ResolveCandidates(
    const CandidateResult& candidates, const ObjectStore& store,
    QueryKind kind, const ElementSet& query,
    const ParallelExecutionContext* ctx = nullptr,
    QueryTrace* trace = nullptr);

}  // namespace sigsetdb

#endif  // SIGSET_QUERY_EXECUTOR_H_
