// Cost-based access-path advisor.
//
// The paper's conclusion is a decision rule ("BSSF with a small m is a very
// promising set access facility... except for Dq = 1, where NIX wins").
// The advisor operationalizes it: given the database statistics and a query
// shape, it ranks the facilities/strategies by modeled page accesses — the
// piece a query optimizer would consult.

#ifndef SIGSET_QUERY_ADVISOR_H_
#define SIGSET_QUERY_ADVISOR_H_

#include <string>
#include <vector>

#include "model/params.h"
#include "sig/facility.h"

namespace sigsetdb {

// One candidate access path with its modeled retrieval cost.
struct AccessPathChoice {
  std::string facility;   // "ssf", "bssf", "nix"
  std::string strategy;   // "plain", "smart(k=2)", "smart(s=150)", ...
  double cost_pages;      // modeled RC
  // Numeric strategy parameter: k (elements used) for smart supersets,
  // s (slices scanned) for smart subsets; 0 for plain strategies.
  int64_t param = 0;
};

// Returns all applicable access paths sorted by ascending cost.
// `allow_smart` includes the §5 smart strategies.  Supported kinds:
// kSuperset and kSubset (the kinds the paper models); other kinds return
// kUnimplemented.
StatusOr<std::vector<AccessPathChoice>> AdviseAccessPaths(
    const DatabaseParams& db, const SignatureParams& sig,
    const NixParams& nix, int64_t dt, int64_t dq, QueryKind kind,
    bool allow_smart);

// Convenience: the cheapest access path.
StatusOr<AccessPathChoice> BestAccessPath(const DatabaseParams& db,
                                          const SignatureParams& sig,
                                          const NixParams& nix, int64_t dt,
                                          int64_t dq, QueryKind kind,
                                          bool allow_smart);

}  // namespace sigsetdb

#endif  // SIGSET_QUERY_ADVISOR_H_
