// Cost-based access-path advisor.
//
// The paper's conclusion is a decision rule ("BSSF with a small m is a very
// promising set access facility... except for Dq = 1, where NIX wins").
// The advisor operationalizes it: given the database statistics and a query
// shape, it ranks the facilities/strategies by modeled page accesses — the
// piece a query optimizer would consult.

#ifndef SIGSET_QUERY_ADVISOR_H_
#define SIGSET_QUERY_ADVISOR_H_

#include <string>
#include <vector>

#include "model/cost_breakdown.h"
#include "model/cost_join.h"
#include "model/params.h"
#include "obs/metrics.h"
#include "query/join.h"
#include "sig/facility.h"

namespace sigsetdb {

// One candidate access path with its modeled retrieval cost.
struct AccessPathChoice {
  std::string facility;   // "ssf", "bssf", "nix"
  std::string strategy;   // "plain", "smart(k=2)", "smart(s=150)", ...
  double cost_pages;      // modeled RC
  // Numeric strategy parameter: k (elements used) for smart supersets,
  // s (slices scanned) for smart subsets; 0 for plain strategies.
  int64_t param = 0;
};

// Returns all applicable access paths sorted by ascending cost.
// `allow_smart` includes the §5 smart strategies.  Supported kinds:
// kSuperset and kSubset (the kinds the paper models); other kinds return
// kUnimplemented.
StatusOr<std::vector<AccessPathChoice>> AdviseAccessPaths(
    const DatabaseParams& db, const SignatureParams& sig,
    const NixParams& nix, int64_t dt, int64_t dq, QueryKind kind,
    bool allow_smart);

// Convenience: the cheapest access path.
StatusOr<AccessPathChoice> BestAccessPath(const DatabaseParams& db,
                                          const SignatureParams& sig,
                                          const NixParams& nix, int64_t dt,
                                          int64_t dq, QueryKind kind,
                                          bool allow_smart);

// Live workload feedback for the advisor.  The pure model assumes the
// paper's uniform-random sets; real workloads can false-drop far more (or
// less) often and run against a warm buffer pool.  Feedback folds what the
// MetricsRegistry has actually observed back into the cost comparison.
struct AdvisorFeedback {
  // Observed false drops per candidate across resolved queries
  // (false_drops / candidates); < 0 = no observations, trust the model.
  double false_drop_rate = -1.0;
  // Observed buffer-pool hit rate (hits / (hits + misses)); < 0 = none.
  double buffer_hit_rate = -1.0;

  bool empty() const { return false_drop_rate < 0 && buffer_hit_rate < 0; }

  // Reads the registry conventions maintained by SetIndex::Query and the
  // buffer pool's metrics export: counters query.<facility>.candidates and
  // query.<facility>.false_drops (summed over ssf/bssf/nix), and
  // buffer.hits / buffer.misses.
  static AdvisorFeedback FromRegistry(const MetricsRegistry& registry);
};

// Feedback-adjusted advice.  Costs start from AdviseAccessPaths and are
// corrected per choice:
//   - false-drop rate: an inexact filter delivering the same answers at
//     observed rate r needs answers/(1-r) candidates; the surplus (or
//     shortfall) versus the model's expectation is charged at P_u per
//     candidate.  Exact paths (plain NIX T ⊇ Q) are never adjusted, so a
//     workload that false-drops heavily shifts the recommendation toward
//     them.
//   - buffer hit rate: every cost is discounted by (1 - hit rate), turning
//     logical page accesses into expected physical reads.
StatusOr<std::vector<AccessPathChoice>> AdviseAccessPaths(
    const DatabaseParams& db, const SignatureParams& sig,
    const NixParams& nix, int64_t dt, int64_t dq, QueryKind kind,
    bool allow_smart, const AdvisorFeedback& feedback);

// The modeled per-stage decomposition of one advised choice, matching the
// total the advisor priced it at.  The §6-extension kinds (equals, overlap)
// have no decomposition and return an all-zero breakdown; callers treat
// total() == 0 as "no prediction".
CostBreakdown BreakdownForChoice(const DatabaseParams& db,
                                 const SignatureParams& sig,
                                 const NixParams& nix, int64_t dt, int64_t dq,
                                 QueryKind kind,
                                 const AccessPathChoice& choice);

// --- set-containment joins (R ⋈⊆ S) ---------------------------------------

// One join strategy with its modeled cost (model/cost_join.h).
struct JoinStrategyChoice {
  JoinStrategy strategy;
  std::string name;        // JoinStrategyName(strategy)
  double cost_pages;       // modeled total pages
  double candidate_pairs;  // expected pairs reaching verification
  double result_pairs;     // expected true pairs
};

// Ranks the three concrete join strategies by ascending modeled pages
// (stable on ties, so sig-hash precedes the identically-priced adaptive).
// (db_r, dt_r) describe the outer relation R, (db_s, dt_s) the inner S;
// sig/nix describe the S side's facilities, which nested-loop probes via
// the selection advisor (BestAccessPath at Dq = dt_r).  The crossover the
// tests pin falls out of the formulas: nested-loop wins while
// |R| · RC_sel(S) < scan(S), i.e. for small outer relations.
StatusOr<std::vector<JoinStrategyChoice>> AdviseJoinStrategies(
    const DatabaseParams& db_r, int64_t dt_r, const DatabaseParams& db_s,
    int64_t dt_s, const SignatureParams& sig, const NixParams& nix);

// Convenience: the cheapest join strategy.
StatusOr<JoinStrategyChoice> BestJoinStrategy(const DatabaseParams& db_r,
                                              int64_t dt_r,
                                              const DatabaseParams& db_s,
                                              int64_t dt_s,
                                              const SignatureParams& sig,
                                              const NixParams& nix);

// The per-stage decomposition behind one concrete join strategy, matching
// the total AdviseJoinStrategies priced it at.  kAuto is invalid here.
StatusOr<JoinCostBreakdown> BreakdownForJoinStrategy(
    const DatabaseParams& db_r, int64_t dt_r, const DatabaseParams& db_s,
    int64_t dt_s, const SignatureParams& sig, const NixParams& nix,
    JoinStrategy strategy);

}  // namespace sigsetdb

#endif  // SIGSET_QUERY_ADVISOR_H_
