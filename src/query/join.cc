#include "query/join.h"

#include <algorithm>
#include <utility>

#include "sig/kernels.h"
#include "util/bitvector.h"

namespace sigsetdb {

namespace {

// Adaptive direction choice: roughly how many in-memory signature checks
// cost the same as one page access.  One page is 512 signature words at
// F = 250; a check early-exits, so charge ~half a word-scan per check.
constexpr double kSigChecksPerPage = 256.0;

// One side, pulled into memory by its scan callback.
struct Materialized {
  std::vector<Oid> oids;
  std::vector<ElementSet> sets;
};

Status MaterializeSide(const JoinSideAccess& side, Materialized* out) {
  if (!side.scan) {
    return Status::InvalidArgument("join side has no scan callback");
  }
  out->oids.reserve(side.num_live);
  out->sets.reserve(side.num_live);
  return side.scan([out](Oid oid, const ElementSet& set) {
    out->oids.push_back(oid);
    out->sets.push_back(set);
    return Status::OK();
  });
}

uint32_t ClampPrefixBits(uint32_t bits, uint32_t f) {
  const uint32_t cap = f < 16 ? f : 16;
  if (bits < 1) return 1;
  return bits < cap ? bits : cap;
}

// The low `bits` bits of the signature, as the partition key.
uint32_t SigPrefix(const BitVector& sig, uint32_t bits) {
  return static_cast<uint32_t>(sig.words()[0] &
                               ((uint64_t{1} << bits) - 1));
}

// Exact containment check through the dispatched intersection kernel:
// r ⊆ s ⇔ |r ∩ s| = |r|.  `scratch` must hold at least |r| slots (the
// kernel's out capacity is min(|r|, |s|) ≤ |r| once |r| ≤ |s|).
bool VerifySubset(const ElementSet& r, const ElementSet& s,
                  std::vector<uint64_t>* scratch) {
  if (r.empty()) return true;
  if (r.size() > s.size()) return false;
  if (scratch->size() < r.size()) scratch->resize(r.size());
  return KernelIntersectU64(r.data(), r.size(), s.data(), s.size(),
                            scratch->data()) == r.size();
}

// Per-worker accumulator for the in-memory probe phases.  Workers fill
// their own instance; the caller merges in worker order (deterministic at
// any thread count — the final pair sort makes the order canonical anyway,
// but the counts must not race).
struct ProbeWorker {
  std::vector<JoinPair> pairs;
  uint64_t candidate_pairs = 0;
  uint64_t false_drop_pairs = 0;
  std::vector<uint64_t> scratch;
};

// The signature-probe direction for the R rows indexed by
// r_index[begin..end): enumerate S buckets whose prefix is a bit-superset
// of the row's, filter on the full signatures, verify with the
// intersection kernel.
void SigProbeRange(const Materialized& r_side,
                   const std::vector<BitVector>& r_sigs,
                   const std::vector<uint32_t>& r_prefixes,
                   const Materialized& s_side,
                   const std::vector<BitVector>& s_sigs,
                   const std::vector<std::vector<uint32_t>>& s_buckets,
                   uint32_t prefix_mask, const std::vector<uint32_t>& r_index,
                   size_t begin, size_t end, ProbeWorker* out) {
  for (size_t pos = begin; pos < end; ++pos) {
    const uint32_t i = r_index[pos];
    const ElementSet& r_set = r_side.sets[i];
    const Oid r_oid = r_side.oids[i];
    if (r_set.empty()) {
      // ∅ ⊆ everything: every s is a (trivially verified) pair.
      out->candidate_pairs += s_side.oids.size();
      for (const Oid s_oid : s_side.oids) {
        out->pairs.push_back({r_oid, s_oid});
      }
      continue;
    }
    const BitVector& r_sig = r_sigs[i];
    // Sub-mask enumeration of every bucket prefix ⊇ r's prefix: walk the
    // subsets of the free (zero) bits and OR them onto the prefix.
    const uint32_t base = r_prefixes[i];
    const uint32_t free_bits = prefix_mask & ~base;
    uint32_t sub = 0;
    while (true) {
      const std::vector<uint32_t>& bucket = s_buckets[base | sub];
      for (const uint32_t j : bucket) {
        if (KernelIsSubsetOf(r_sig, s_sigs[j])) {
          ++out->candidate_pairs;
          if (VerifySubset(r_set, s_side.sets[j], &out->scratch)) {
            out->pairs.push_back({r_oid, s_side.oids[j]});
          } else {
            ++out->false_drop_pairs;
          }
        }
      }
      if (sub == free_bits) break;
      sub = (sub - free_bits) & free_bits;
    }
  }
}

// Runs the signature-probe direction over `r_index`, fanning out over
// contiguous ranges when a pool is available.  Pure CPU — no I/O, no
// failure paths — so parallel and serial runs are trivially identical.
void SigProbeAll(const Materialized& r_side,
                 const std::vector<BitVector>& r_sigs,
                 const std::vector<uint32_t>& r_prefixes,
                 const Materialized& s_side,
                 const std::vector<BitVector>& s_sigs,
                 const std::vector<std::vector<uint32_t>>& s_buckets,
                 uint32_t prefix_mask, const std::vector<uint32_t>& r_index,
                 const ParallelExecutionContext* ctx, JoinResult* out) {
  const size_t workers =
      ctx != nullptr ? ctx->WorkersFor(r_index.size()) : 1;
  std::vector<ProbeWorker> states(workers);
  if (workers <= 1) {
    SigProbeRange(r_side, r_sigs, r_prefixes, s_side, s_sigs, s_buckets,
                  prefix_mask, r_index, 0, r_index.size(), &states[0]);
  } else {
    ctx->pool->ParallelFor(
        r_index.size(), workers,
        [&](size_t worker, size_t begin, size_t end) {
          SigProbeRange(r_side, r_sigs, r_prefixes, s_side, s_sigs,
                        s_buckets, prefix_mask, r_index, begin, end,
                        &states[worker]);
        });
  }
  for (ProbeWorker& state : states) {
    out->num_candidate_pairs += state.candidate_pairs;
    out->num_false_drop_pairs += state.false_drop_pairs;
    out->pairs.insert(out->pairs.end(), state.pairs.begin(),
                      state.pairs.end());
  }
}

// Builds signatures and the prefix of every row of `side`.
void BuildSignatures(const Materialized& side, const SignatureConfig& sig,
                     uint32_t prefix_bits, std::vector<BitVector>* sigs,
                     std::vector<uint32_t>* prefixes) {
  sigs->reserve(side.sets.size());
  prefixes->reserve(side.sets.size());
  for (const ElementSet& set : side.sets) {
    sigs->push_back(MakeSetSignature(set, sig));
    prefixes->push_back(SigPrefix(sigs->back(), prefix_bits));
  }
}

}  // namespace

const char* JoinStrategyName(JoinStrategy strategy) {
  switch (strategy) {
    case JoinStrategy::kAuto:
      return "auto";
    case JoinStrategy::kNestedLoop:
      return "nested-loop";
    case JoinStrategy::kSignatureHash:
      return "sig-hash";
    case JoinStrategy::kAdaptive:
      return "adaptive";
  }
  return "unknown";
}

StatusOr<JoinStrategy> ParseJoinStrategy(const std::string& text) {
  if (text == "auto") return JoinStrategy::kAuto;
  if (text == "nested-loop") return JoinStrategy::kNestedLoop;
  if (text == "sig-hash") return JoinStrategy::kSignatureHash;
  if (text == "adaptive") return JoinStrategy::kAdaptive;
  return Status::InvalidArgument("unknown join strategy: " + text);
}

StatusOr<JoinResult> ExecuteSetJoin(const JoinSideAccess& r,
                                    const JoinSideAccess& s,
                                    const SignatureConfig& sig,
                                    const JoinSpec& spec,
                                    const ParallelExecutionContext* ctx,
                                    QueryTrace* trace,
                                    const std::function<IoStats()>& total_stats) {
  if (spec.strategy == JoinStrategy::kAuto) {
    return Status::InvalidArgument(
        "ExecuteSetJoin needs a concrete strategy (kAuto is resolved by the "
        "planner)");
  }
  SIGSET_RETURN_IF_ERROR(sig.Validate());

  // Appends a finished stage: wall time plus the page delta of
  // `total_stats` over the stage (tracing never issues I/O of its own).
  const auto finish_stage = [&](const char* name, const TraceTimer& timer,
                                const IoStats& before) {
    if (trace == nullptr) return;
    TraceSpan* span = trace->AddStage(name);
    span->wall_ms = timer.ElapsedMs();
    if (total_stats) {
      const IoStats delta = total_stats() - before;
      span->page_reads = delta.reads();
      span->page_writes = delta.writes();
      span->pages_skipped = delta.skips();
      span->pages_cow = delta.cows();
      span->pages_hot = delta.hots();
    }
  };
  const auto snap = [&]() -> IoStats {
    return total_stats ? total_stats() : IoStats{};
  };

  JoinResult out;

  // Every strategy scans R once (the outer relation drives all three).
  Materialized r_side;
  {
    TraceTimer timer(trace != nullptr);
    const IoStats before = snap();
    SIGSET_RETURN_IF_ERROR(MaterializeSide(r, &r_side));
    finish_stage("r scan", timer, before);
  }

  if (spec.strategy == JoinStrategy::kNestedLoop) {
    if (!s.probe_superset) {
      return Status::InvalidArgument(
          "nested-loop join needs a probe_superset on the S side");
    }
    TraceTimer timer(trace != nullptr);
    const IoStats before = snap();
    int64_t candidates = 0;
    int64_t false_drops = 0;
    // The ∅ roster (every live s) is scanned lazily, at most once.
    std::vector<Oid> s_roster;
    bool have_roster = false;
    for (size_t i = 0; i < r_side.oids.size(); ++i) {
      const ElementSet& r_set = r_side.sets[i];
      if (r_set.empty()) {
        if (!have_roster) {
          SIGSET_RETURN_IF_ERROR(s.scan([&](Oid oid, const ElementSet&) {
            s_roster.push_back(oid);
            return Status::OK();
          }));
          have_roster = true;
        }
        out.num_candidate_pairs += s_roster.size();
        for (const Oid s_oid : s_roster) {
          out.pairs.push_back({r_side.oids[i], s_oid});
        }
        continue;
      }
      SIGSET_ASSIGN_OR_RETURN(QueryResult probe, s.probe_superset(r_set));
      ++out.num_probes;
      out.num_candidate_pairs += probe.num_candidates;
      out.num_false_drop_pairs += probe.num_false_drops;
      candidates += static_cast<int64_t>(probe.num_candidates);
      false_drops += static_cast<int64_t>(probe.num_false_drops);
      for (const Oid s_oid : probe.oids) {
        out.pairs.push_back({r_side.oids[i], s_oid});
      }
    }
    if (trace != nullptr) {
      finish_stage("probe loop", timer, before);
      TraceSpan& span = trace->mutable_stages().back();
      span.candidates = candidates;
      span.false_drops = false_drops;
    }
    std::sort(out.pairs.begin(), out.pairs.end());
    return out;
  }

  // sig-hash and adaptive: scan S and build the in-memory partitions.
  Materialized s_side;
  {
    TraceTimer timer(trace != nullptr);
    const IoStats before = snap();
    SIGSET_RETURN_IF_ERROR(MaterializeSide(s, &s_side));
    finish_stage("s scan", timer, before);
  }

  const uint32_t prefix_bits = ClampPrefixBits(spec.prefix_bits, sig.f);
  const uint32_t prefix_mask = (uint32_t{1} << prefix_bits) - 1;
  std::vector<BitVector> r_sigs, s_sigs;
  std::vector<uint32_t> r_prefixes, s_prefixes;
  std::vector<std::vector<uint32_t>> s_buckets(size_t{1} << prefix_bits);
  {
    TraceTimer timer(trace != nullptr);
    const IoStats before = snap();
    BuildSignatures(r_side, sig, prefix_bits, &r_sigs, &r_prefixes);
    BuildSignatures(s_side, sig, prefix_bits, &s_sigs, &s_prefixes);
    for (uint32_t j = 0; j < s_side.oids.size(); ++j) {
      s_buckets[s_prefixes[j]].push_back(j);
    }
    finish_stage("partition", timer, before);
  }

  if (spec.strategy == JoinStrategy::kSignatureHash) {
    TraceTimer timer(trace != nullptr);
    const IoStats before = snap();
    std::vector<uint32_t> all(r_side.oids.size());
    for (uint32_t i = 0; i < all.size(); ++i) all[i] = i;
    SigProbeAll(r_side, r_sigs, r_prefixes, s_side, s_sigs, s_buckets,
                prefix_mask, all, ctx, &out);
    if (trace != nullptr) {
      finish_stage("probe+verify", timer, before);
      TraceSpan& span = trace->mutable_stages().back();
      span.candidates = static_cast<int64_t>(out.num_candidate_pairs);
      span.false_drops = static_cast<int64_t>(out.num_false_drop_pairs);
    }
    std::sort(out.pairs.begin(), out.pairs.end());
    return out;
  }

  // Adaptive: group R by prefix, price each partition's two directions.
  // The signature direction costs ~compatible-S checks per row; the index
  // direction costs ~probe_cost_pages per row.  Partitions whose rows face
  // more checks than the equivalent of one probe switch to the facility.
  const double threshold =
      spec.adaptive_probe_threshold >= 0
          ? spec.adaptive_probe_threshold
          : kSigChecksPerPage * (s.probe_cost_pages > 1.0
                                     ? s.probe_cost_pages
                                     : 1.0);
  std::vector<std::vector<uint32_t>> r_buckets(size_t{1} << prefix_bits);
  for (uint32_t i = 0; i < r_side.oids.size(); ++i) {
    r_buckets[r_prefixes[i]].push_back(i);
  }
  std::vector<uint32_t> sig_rows;    // rows taking the signature direction
  std::vector<uint32_t> probe_rows;  // rows taking the facility direction
  for (uint32_t base = 0; base <= prefix_mask; ++base) {
    const std::vector<uint32_t>& bucket = r_buckets[base];
    if (bucket.empty()) continue;
    // Compatible-S cardinality of this partition (one sub-mask walk).
    uint64_t s_compat = 0;
    const uint32_t free_bits = prefix_mask & ~base;
    uint32_t sub = 0;
    while (true) {
      s_compat += s_buckets[base | sub].size();
      if (sub == free_bits) break;
      sub = (sub - free_bits) & free_bits;
    }
    const bool use_probe =
        s.probe_superset && static_cast<double>(s_compat) > threshold;
    (use_probe ? probe_rows : sig_rows)
        .insert((use_probe ? probe_rows : sig_rows).end(), bucket.begin(),
                bucket.end());
  }

  {
    TraceTimer timer(trace != nullptr);
    const IoStats before = snap();
    SigProbeAll(r_side, r_sigs, r_prefixes, s_side, s_sigs, s_buckets,
                prefix_mask, sig_rows, ctx, &out);
    if (trace != nullptr) {
      finish_stage("probe+verify", timer, before);
      TraceSpan& span = trace->mutable_stages().back();
      span.candidates = static_cast<int64_t>(out.num_candidate_pairs);
      span.false_drops = static_cast<int64_t>(out.num_false_drop_pairs);
    }
  }
  if (!probe_rows.empty()) {
    TraceTimer timer(trace != nullptr);
    const IoStats before = snap();
    int64_t candidates = 0;
    int64_t false_drops = 0;
    for (const uint32_t i : probe_rows) {
      const ElementSet& r_set = r_side.sets[i];
      if (r_set.empty()) {
        // S is already materialized here — no facility call for ∅.
        out.num_candidate_pairs += s_side.oids.size();
        for (const Oid s_oid : s_side.oids) {
          out.pairs.push_back({r_side.oids[i], s_oid});
        }
        continue;
      }
      SIGSET_ASSIGN_OR_RETURN(QueryResult probe, s.probe_superset(r_set));
      ++out.num_probes;
      out.num_candidate_pairs += probe.num_candidates;
      out.num_false_drop_pairs += probe.num_false_drops;
      candidates += static_cast<int64_t>(probe.num_candidates);
      false_drops += static_cast<int64_t>(probe.num_false_drops);
      for (const Oid s_oid : probe.oids) {
        out.pairs.push_back({r_side.oids[i], s_oid});
      }
    }
    if (trace != nullptr) {
      finish_stage("probe loop", timer, before);
      TraceSpan& span = trace->mutable_stages().back();
      span.candidates = candidates;
      span.false_drops = false_drops;
    }
  }
  std::sort(out.pairs.begin(), out.pairs.end());
  return out;
}

}  // namespace sigsetdb
