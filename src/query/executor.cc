#include "query/executor.h"

namespace sigsetdb {

namespace {

bool Satisfies(const StoredObject& obj, QueryKind kind,
               const ElementSet& query) {
  switch (kind) {
    case QueryKind::kSuperset:
      return SatisfiesSuperset(obj, query);
    case QueryKind::kSubset:
      return SatisfiesSubset(obj, query);
    case QueryKind::kProperSuperset:
      return SatisfiesProperSuperset(obj, query);
    case QueryKind::kProperSubset:
      return SatisfiesProperSubset(obj, query);
    case QueryKind::kEquals:
      return SatisfiesEquals(obj, query);
    case QueryKind::kOverlaps:
      return SatisfiesOverlap(obj, query);
  }
  return false;
}

}  // namespace

StatusOr<QueryResult> ResolveCandidates(const CandidateResult& candidates,
                                        const ObjectStore& store,
                                        QueryKind kind,
                                        const ElementSet& query) {
  QueryResult result;
  result.num_candidates = candidates.oids.size();
  result.oids.reserve(candidates.oids.size());
  for (Oid oid : candidates.oids) {
    SIGSET_ASSIGN_OR_RETURN(StoredObject obj, store.Get(oid));
    if (Satisfies(obj, kind, query)) {
      result.oids.push_back(oid);
    } else {
      if (candidates.exact) {
        return Status::Internal(
            "facility reported exact candidates but " + oid.ToString() +
            " fails the predicate");
      }
      ++result.num_false_drops;
    }
  }
  return result;
}

StatusOr<QueryResult> ExecuteSetQuery(SetAccessFacility* facility,
                                      const ObjectStore& store,
                                      QueryKind kind,
                                      const ElementSet& query) {
  // Proper inclusion (⊋/⊊, paper §1's second sample query) reuses the
  // non-strict candidate sets; the strictness check happens at resolution,
  // where the stored cardinality is known.
  SIGSET_ASSIGN_OR_RETURN(CandidateResult candidates,
                          facility->Candidates(CandidateKind(kind), query));
  if (kind != CandidateKind(kind)) candidates.exact = false;
  return ResolveCandidates(candidates, store, kind, query);
}

StatusOr<QueryResult> ExecuteSmartSupersetBssf(BitSlicedSignatureFile* bssf,
                                               const ObjectStore& store,
                                               const ElementSet& query,
                                               size_t use_elements,
                                               QueryKind kind) {
  if (CandidateKind(kind) != QueryKind::kSuperset) {
    return Status::InvalidArgument("kind must be a superset variant");
  }
  BitVector query_sig =
      MakePartialQuerySignature(query, use_elements, bssf->config());
  SIGSET_ASSIGN_OR_RETURN(std::vector<uint64_t> slots,
                          bssf->SupersetCandidateSlots(query_sig));
  CandidateResult candidates;
  SIGSET_ASSIGN_OR_RETURN(candidates.oids, bssf->ResolveSlots(slots));
  return ResolveCandidates(candidates, store, kind, query);
}

StatusOr<QueryResult> ExecuteSmartSubsetBssf(BitSlicedSignatureFile* bssf,
                                             const ObjectStore& store,
                                             const ElementSet& query,
                                             size_t max_slices,
                                             QueryKind kind) {
  if (CandidateKind(kind) != QueryKind::kSubset) {
    return Status::InvalidArgument("kind must be a subset variant");
  }
  BitVector query_sig = MakeSetSignature(query, bssf->config());
  SIGSET_ASSIGN_OR_RETURN(std::vector<uint64_t> slots,
                          bssf->SubsetCandidateSlots(query_sig, max_slices));
  CandidateResult candidates;
  SIGSET_ASSIGN_OR_RETURN(candidates.oids, bssf->ResolveSlots(slots));
  return ResolveCandidates(candidates, store, kind, query);
}

StatusOr<QueryResult> ExecuteSmartSupersetNix(NestedIndex* nix,
                                              const ObjectStore& store,
                                              const ElementSet& query,
                                              size_t use_elements,
                                              QueryKind kind) {
  if (CandidateKind(kind) != QueryKind::kSuperset) {
    return Status::InvalidArgument("kind must be a superset variant");
  }
  SIGSET_ASSIGN_OR_RETURN(CandidateResult candidates,
                          nix->CandidatesSmartSuperset(query, use_elements));
  if (kind != QueryKind::kSuperset) candidates.exact = false;
  return ResolveCandidates(candidates, store, kind, query);
}

}  // namespace sigsetdb
