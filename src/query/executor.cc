#include "query/executor.h"

#include <vector>

namespace sigsetdb {

namespace {

bool Satisfies(const StoredObject& obj, QueryKind kind,
               const ElementSet& query) {
  switch (kind) {
    case QueryKind::kSuperset:
      return SatisfiesSuperset(obj, query);
    case QueryKind::kSubset:
      return SatisfiesSubset(obj, query);
    case QueryKind::kProperSuperset:
      return SatisfiesProperSuperset(obj, query);
    case QueryKind::kProperSubset:
      return SatisfiesProperSubset(obj, query);
    case QueryKind::kEquals:
      return SatisfiesEquals(obj, query);
    case QueryKind::kOverlaps:
      return SatisfiesOverlap(obj, query);
  }
  return false;
}

// Resolves candidates[begin..end), charging page reads to `io`.  Appends
// kept OIDs to `kept` in candidate order.
using FileSnapshots = IoSnapshots;

// Appends the "candidate selection" span covering the facility I/O between
// `before` (a StageStats() value snapshot) and `after` — one child per
// facility file.  Pure counter arithmetic; no I/O of its own.
void AddCandidateStage(QueryTrace* trace, const FileSnapshots& before,
                       const FileSnapshots& after, double wall_ms,
                       uint64_t num_candidates) {
  TraceSpan* span =
      AddSnapshotStage(trace, "candidate selection", before, after);
  span->wall_ms = wall_ms;
  span->candidates = static_cast<int64_t>(num_candidates);
}

Status ResolveRange(const CandidateResult& candidates,
                    const ObjectStore& store, QueryKind kind,
                    const ElementSet& query, size_t begin, size_t end,
                    IoStats* io, std::vector<Oid>* kept,
                    uint64_t* false_drops) {
  for (size_t i = begin; i < end; ++i) {
    Oid oid = candidates.oids[i];
    StatusOr<StoredObject> obj = store.Get(oid, io);
    if (!obj.ok()) {
      // A candidate with no stored object is a false drop, not an error —
      // even for exact candidate sets: crash recovery rolls the indexes
      // back to a checkpoint that can still reference objects whose store
      // delete already committed.
      if (obj.status().code() == StatusCode::kNotFound) {
        ++*false_drops;
        continue;
      }
      return obj.status();
    }
    if (Satisfies(*obj, kind, query)) {
      kept->push_back(oid);
    } else {
      if (candidates.exact) {
        return Status::Internal(
            "facility reported exact candidates but " + oid.ToString() +
            " fails the predicate");
      }
      ++*false_drops;
    }
  }
  return Status::OK();
}

}  // namespace

StatusOr<QueryResult> ResolveCandidates(const CandidateResult& candidates,
                                        const ObjectStore& store,
                                        QueryKind kind,
                                        const ElementSet& query,
                                        const ParallelExecutionContext* ctx,
                                        QueryTrace* trace) {
  // Tracing snapshots the store's counters around the stage; on the
  // parallel path worker-local stats merge into store.stats() before the
  // final snapshot, so the delta is exact in both modes.
  IoStats before;
  TraceTimer timer(trace != nullptr);
  if (trace != nullptr) before = store.stats();
  QueryResult result;
  result.num_candidates = candidates.oids.size();
  const size_t n = candidates.oids.size();
  const size_t workers = ctx == nullptr ? 1 : ctx->WorkersFor(n);
  if (workers <= 1) {
    result.oids.reserve(n);
    SIGSET_RETURN_IF_ERROR(ResolveRange(candidates, store, kind, query, 0, n,
                                        &store.stats(), &result.oids,
                                        &result.num_false_drops));
    if (trace != nullptr) {
      const IoStats delta = store.stats() - before;
      TraceSpan* span = trace->AddStage("resolution");
      span->page_reads = delta.reads();
      span->page_writes = delta.writes();
      span->wall_ms = timer.ElapsedMs();
      span->candidates = static_cast<int64_t>(result.num_candidates);
      span->false_drops = static_cast<int64_t>(result.num_false_drops);
    }
    return result;
  }

  // Each worker resolves one contiguous candidate range through a thread-
  // local IoStats; ranges are concatenated in worker order, so the kept-OID
  // order matches the serial loop and every candidate is fetched exactly
  // once (logical page-access totals unchanged).
  struct WorkerState {
    std::vector<Oid> kept;
    uint64_t false_drops = 0;
    uint64_t processed = 0;
    double wall_ms = 0.0;
    IoStats io;
    Status status;
  };
  std::vector<WorkerState> states(workers);
  ctx->pool->ParallelFor(n, workers,
                         [&](size_t w, size_t begin, size_t end) {
                           WorkerState& ws = states[w];
                           TraceTimer worker_timer(trace != nullptr);
                           ws.processed = end - begin;
                           ws.kept.reserve(end - begin);
                           ws.status = ResolveRange(
                               candidates, store, kind, query, begin, end,
                               &ws.io, &ws.kept, &ws.false_drops);
                           if (trace != nullptr) {
                             ws.wall_ms = worker_timer.ElapsedMs();
                           }
                         });
  // Merge stats before checking statuses so accounting stays exact even
  // when a worker failed.
  for (const WorkerState& ws : states) store.stats() += ws.io;
  std::vector<Status> statuses;
  statuses.reserve(states.size());
  for (const WorkerState& ws : states) statuses.push_back(ws.status);
  SIGSET_RETURN_IF_ERROR(MergeWorkerStatuses(statuses));
  size_t total_kept = 0;
  for (const WorkerState& ws : states) total_kept += ws.kept.size();
  result.oids.reserve(total_kept);
  for (WorkerState& ws : states) {
    result.oids.insert(result.oids.end(), ws.kept.begin(), ws.kept.end());
    result.num_false_drops += ws.false_drops;
  }
  if (trace != nullptr) {
    const IoStats delta = store.stats() - before;
    TraceSpan* span = trace->AddStage("resolution");
    span->page_reads = delta.reads();
    span->page_writes = delta.writes();
    span->wall_ms = timer.ElapsedMs();
    span->candidates = static_cast<int64_t>(result.num_candidates);
    span->false_drops = static_cast<int64_t>(result.num_false_drops);
    // One timed child per worker (the trace-event exporter renders these as
    // parallel tracks).  Children subdivide the parent: their page deltas
    // sum to the span's, since each worker resolved a disjoint range.
    for (size_t w = 0; w < states.size(); ++w) {
      TraceSpan child;
      child.name = "worker " + std::to_string(w);
      child.page_reads = states[w].io.reads();
      child.page_writes = states[w].io.writes();
      child.pages_skipped = states[w].io.skips();
      child.pages_cow = states[w].io.cows();
      child.pages_hot = states[w].io.hots();
      child.wall_ms = states[w].wall_ms;
      child.candidates = static_cast<int64_t>(states[w].processed);
      child.false_drops = static_cast<int64_t>(states[w].false_drops);
      span->children.push_back(std::move(child));
    }
  }
  return result;
}

StatusOr<QueryResult> ExecuteSetQuery(SetAccessFacility* facility,
                                      const ObjectStore& store,
                                      QueryKind kind, const ElementSet& query,
                                      const ParallelExecutionContext* ctx,
                                      QueryTrace* trace) {
  FileSnapshots before;
  TraceTimer timer(trace != nullptr);
  if (trace != nullptr) before = facility->StageStats();
  // Proper inclusion (⊋/⊊, paper §1's second sample query) reuses the
  // non-strict candidate sets; the strictness check happens at resolution,
  // where the stored cardinality is known.
  SIGSET_ASSIGN_OR_RETURN(
      CandidateResult candidates,
      facility->Candidates(CandidateKind(kind), query, ctx));
  if (kind != CandidateKind(kind)) candidates.exact = false;
  if (trace != nullptr) {
    AddCandidateStage(trace, before, facility->StageStats(),
                      timer.ElapsedMs(), candidates.oids.size());
  }
  return ResolveCandidates(candidates, store, kind, query, ctx, trace);
}

StatusOr<QueryResult> ExecuteSmartSupersetBssf(
    BitSlicedSignatureFile* bssf, const ObjectStore& store,
    const ElementSet& query, size_t use_elements, QueryKind kind,
    const ParallelExecutionContext* ctx, QueryTrace* trace) {
  if (CandidateKind(kind) != QueryKind::kSuperset) {
    return Status::InvalidArgument("kind must be a superset variant");
  }
  FileSnapshots before;
  TraceTimer timer(trace != nullptr);
  if (trace != nullptr) before = bssf->StageStats();
  BitVector query_sig =
      MakePartialQuerySignature(query, use_elements, bssf->config());
  SIGSET_ASSIGN_OR_RETURN(std::vector<uint64_t> slots,
                          bssf->SupersetCandidateSlots(query_sig, ctx));
  CandidateResult candidates;
  SIGSET_ASSIGN_OR_RETURN(candidates.oids, bssf->ResolveSlots(slots));
  if (trace != nullptr) {
    AddCandidateStage(trace, before, bssf->StageStats(), timer.ElapsedMs(),
                      candidates.oids.size());
  }
  return ResolveCandidates(candidates, store, kind, query, ctx, trace);
}

StatusOr<QueryResult> ExecuteSmartSubsetBssf(
    BitSlicedSignatureFile* bssf, const ObjectStore& store,
    const ElementSet& query, size_t max_slices, QueryKind kind,
    const ParallelExecutionContext* ctx, QueryTrace* trace) {
  if (CandidateKind(kind) != QueryKind::kSubset) {
    return Status::InvalidArgument("kind must be a subset variant");
  }
  FileSnapshots before;
  TraceTimer timer(trace != nullptr);
  if (trace != nullptr) before = bssf->StageStats();
  BitVector query_sig = MakeSetSignature(query, bssf->config());
  SIGSET_ASSIGN_OR_RETURN(
      std::vector<uint64_t> slots,
      bssf->SubsetCandidateSlots(query_sig, max_slices, ctx));
  CandidateResult candidates;
  SIGSET_ASSIGN_OR_RETURN(candidates.oids, bssf->ResolveSlots(slots));
  if (trace != nullptr) {
    AddCandidateStage(trace, before, bssf->StageStats(), timer.ElapsedMs(),
                      candidates.oids.size());
  }
  return ResolveCandidates(candidates, store, kind, query, ctx, trace);
}

StatusOr<QueryResult> ExecuteSmartSupersetNix(
    NestedIndex* nix, const ObjectStore& store, const ElementSet& query,
    size_t use_elements, QueryKind kind,
    const ParallelExecutionContext* ctx, QueryTrace* trace) {
  if (CandidateKind(kind) != QueryKind::kSuperset) {
    return Status::InvalidArgument("kind must be a superset variant");
  }
  FileSnapshots before;
  TraceTimer timer(trace != nullptr);
  if (trace != nullptr) before = nix->StageStats();
  SIGSET_ASSIGN_OR_RETURN(CandidateResult candidates,
                          nix->CandidatesSmartSuperset(query, use_elements));
  if (kind != QueryKind::kSuperset) candidates.exact = false;
  if (trace != nullptr) {
    AddCandidateStage(trace, before, nix->StageStats(), timer.ElapsedMs(),
                      candidates.oids.size());
  }
  return ResolveCandidates(candidates, store, kind, query, ctx, trace);
}

}  // namespace sigsetdb
