#include "query/advisor.h"

#include <algorithm>

#include "model/cost_bssf.h"
#include "model/cost_nix.h"
#include "model/cost_ext.h"
#include "model/cost_ssf.h"

namespace sigsetdb {

StatusOr<std::vector<AccessPathChoice>> AdviseAccessPaths(
    const DatabaseParams& db, const SignatureParams& sig,
    const NixParams& nix, int64_t dt, int64_t dq, QueryKind kind,
    bool allow_smart) {
  if (dq < 1) return Status::InvalidArgument("Dq must be >= 1");
  // Proper variants share their non-strict candidate costs.
  kind = CandidateKind(kind);

  std::vector<AccessPathChoice> choices;
  if (kind == QueryKind::kEquals || kind == QueryKind::kOverlaps) {
    // §6-extension operators (model/cost_ext.h); no smart variants.
    if (kind == QueryKind::kEquals) {
      choices.push_back(
          {"ssf", "plain", SsfRetrievalEquals(db, sig, dt, dq)});
      choices.push_back(
          {"bssf", "plain", BssfRetrievalEquals(db, sig, dt, dq)});
      choices.push_back(
          {"nix", "plain", NixRetrievalEquals(db, nix, dt, dq)});
    } else {
      choices.push_back(
          {"ssf", "plain", SsfRetrievalOverlap(db, sig, dt, dq)});
      choices.push_back(
          {"bssf", "plain", BssfRetrievalOverlap(db, sig, dt, dq)});
      choices.push_back(
          {"nix", "plain", NixRetrievalOverlap(db, nix, dt, dq)});
    }
    std::stable_sort(choices.begin(), choices.end(),
                     [](const AccessPathChoice& a, const AccessPathChoice& b) {
                       return a.cost_pages < b.cost_pages;
                     });
    return choices;
  }

  choices.push_back(
      {"ssf", "plain", SsfRetrievalCost(db, sig, dt, dq, kind)});
  if (kind == QueryKind::kSuperset) {
    choices.push_back(
        {"bssf", "plain", BssfRetrievalSuperset(db, sig, dt, dq)});
    choices.push_back(
        {"nix", "plain", NixRetrievalSuperset(db, nix, dt, dq)});
    if (allow_smart) {
      int64_t k = 0;
      double cost = BssfSmartSupersetCost(db, sig, dt, dq, &k);
      choices.push_back(
          {"bssf", "smart(k=" + std::to_string(k) + ")", cost, k});
      cost = NixSmartSupersetCost(db, nix, dt, dq, &k);
      choices.push_back(
          {"nix", "smart(k=" + std::to_string(k) + ")", cost, k});
    }
  } else {
    choices.push_back({"bssf", "plain", BssfRetrievalSubset(db, sig, dt, dq)});
    choices.push_back({"nix", "plain", NixRetrievalSubset(db, nix, dt, dq)});
    if (allow_smart) {
      int64_t s = 0;
      double cost = BssfSmartSubsetCost(db, sig, dt, dq, &s);
      choices.push_back(
          {"bssf", "smart(s=" + std::to_string(s) + ")", cost, s});
    }
  }
  std::stable_sort(choices.begin(), choices.end(),
                   [](const AccessPathChoice& a, const AccessPathChoice& b) {
                     return a.cost_pages < b.cost_pages;
                   });
  return choices;
}

StatusOr<AccessPathChoice> BestAccessPath(const DatabaseParams& db,
                                          const SignatureParams& sig,
                                          const NixParams& nix, int64_t dt,
                                          int64_t dq, QueryKind kind,
                                          bool allow_smart) {
  SIGSET_ASSIGN_OR_RETURN(
      std::vector<AccessPathChoice> choices,
      AdviseAccessPaths(db, sig, nix, dt, dq, kind, allow_smart));
  return choices.front();
}

}  // namespace sigsetdb
