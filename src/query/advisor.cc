#include "query/advisor.h"

#include <algorithm>

#include "model/cost_breakdown.h"
#include "model/cost_bssf.h"
#include "model/cost_nix.h"
#include "model/cost_ext.h"
#include "model/cost_ssf.h"

namespace sigsetdb {

StatusOr<std::vector<AccessPathChoice>> AdviseAccessPaths(
    const DatabaseParams& db, const SignatureParams& sig,
    const NixParams& nix, int64_t dt, int64_t dq, QueryKind kind,
    bool allow_smart) {
  if (dq < 1) return Status::InvalidArgument("Dq must be >= 1");
  // Proper variants share their non-strict candidate costs.
  kind = CandidateKind(kind);

  std::vector<AccessPathChoice> choices;
  if (kind == QueryKind::kEquals || kind == QueryKind::kOverlaps) {
    // §6-extension operators (model/cost_ext.h); no smart variants.
    if (kind == QueryKind::kEquals) {
      choices.push_back(
          {"ssf", "plain", SsfRetrievalEquals(db, sig, dt, dq)});
      choices.push_back(
          {"bssf", "plain", BssfRetrievalEquals(db, sig, dt, dq)});
      choices.push_back(
          {"nix", "plain", NixRetrievalEquals(db, nix, dt, dq)});
    } else {
      choices.push_back(
          {"ssf", "plain", SsfRetrievalOverlap(db, sig, dt, dq)});
      choices.push_back(
          {"bssf", "plain", BssfRetrievalOverlap(db, sig, dt, dq)});
      choices.push_back(
          {"nix", "plain", NixRetrievalOverlap(db, nix, dt, dq)});
    }
    std::stable_sort(choices.begin(), choices.end(),
                     [](const AccessPathChoice& a, const AccessPathChoice& b) {
                       return a.cost_pages < b.cost_pages;
                     });
    return choices;
  }

  choices.push_back(
      {"ssf", "plain", SsfRetrievalCost(db, sig, dt, dq, kind)});
  if (kind == QueryKind::kSuperset) {
    choices.push_back(
        {"bssf", "plain", BssfRetrievalSuperset(db, sig, dt, dq)});
    choices.push_back(
        {"nix", "plain", NixRetrievalSuperset(db, nix, dt, dq)});
    if (allow_smart) {
      int64_t k = 0;
      double cost = BssfSmartSupersetCost(db, sig, dt, dq, &k);
      choices.push_back(
          {"bssf", "smart(k=" + std::to_string(k) + ")", cost, k});
      cost = NixSmartSupersetCost(db, nix, dt, dq, &k);
      choices.push_back(
          {"nix", "smart(k=" + std::to_string(k) + ")", cost, k});
    }
  } else {
    choices.push_back({"bssf", "plain", BssfRetrievalSubset(db, sig, dt, dq)});
    choices.push_back({"nix", "plain", NixRetrievalSubset(db, nix, dt, dq)});
    if (allow_smart) {
      int64_t s = 0;
      double cost = BssfSmartSubsetCost(db, sig, dt, dq, &s);
      choices.push_back(
          {"bssf", "smart(s=" + std::to_string(s) + ")", cost, s});
    }
  }
  std::stable_sort(choices.begin(), choices.end(),
                   [](const AccessPathChoice& a, const AccessPathChoice& b) {
                     return a.cost_pages < b.cost_pages;
                   });
  return choices;
}

AdvisorFeedback AdvisorFeedback::FromRegistry(const MetricsRegistry& registry) {
  AdvisorFeedback fb;
  uint64_t candidates = 0, false_drops = 0;
  for (const char* facility : {"ssf", "bssf", "nix"}) {
    const std::string prefix = std::string("query.") + facility;
    candidates += registry.CounterValue(prefix + ".candidates");
    false_drops += registry.CounterValue(prefix + ".false_drops");
  }
  if (candidates > 0) {
    fb.false_drop_rate =
        static_cast<double>(false_drops) / static_cast<double>(candidates);
  }
  const uint64_t hits = registry.CounterValue("buffer.hits");
  const uint64_t misses = registry.CounterValue("buffer.misses");
  if (hits + misses > 0) {
    fb.buffer_hit_rate =
        static_cast<double>(hits) / static_cast<double>(hits + misses);
  }
  return fb;
}

CostBreakdown BreakdownForChoice(const DatabaseParams& db,
                                 const SignatureParams& sig,
                                 const NixParams& nix, int64_t dt, int64_t dq,
                                 QueryKind kind,
                                 const AccessPathChoice& choice) {
  kind = CandidateKind(kind);
  if (kind != QueryKind::kSuperset && kind != QueryKind::kSubset) return {};
  const bool superset = kind == QueryKind::kSuperset;
  const bool smart = choice.strategy.rfind("smart", 0) == 0;
  if (choice.facility == "ssf") return SsfBreakdown(db, sig, dt, dq, kind);
  if (choice.facility == "bssf") {
    if (superset) {
      return BssfSupersetBreakdown(db, sig, dt, dq, smart ? choice.param : dq);
    }
    return BssfSubsetBreakdown(db, sig, dt, dq, smart ? choice.param : -1);
  }
  if (superset) {
    return NixSupersetBreakdown(db, nix, dt, dq, smart ? choice.param : dq);
  }
  return NixSubsetBreakdown(db, nix, dt, dq);
}

StatusOr<std::vector<AccessPathChoice>> AdviseAccessPaths(
    const DatabaseParams& db, const SignatureParams& sig,
    const NixParams& nix, int64_t dt, int64_t dq, QueryKind kind,
    bool allow_smart, const AdvisorFeedback& feedback) {
  kind = CandidateKind(kind);
  SIGSET_ASSIGN_OR_RETURN(
      std::vector<AccessPathChoice> choices,
      AdviseAccessPaths(db, sig, nix, dt, dq, kind, allow_smart));
  if (feedback.empty()) return choices;

  for (AccessPathChoice& choice : choices) {
    if (feedback.false_drop_rate >= 0) {
      const CostBreakdown bd =
          BreakdownForChoice(db, sig, nix, dt, dq, kind, choice);
      // Exact candidate sets (expected_false_drops == 0) cannot false-drop
      // regardless of the workload; only inexact filters are re-priced.
      if (bd.expected_false_drops > 0) {
        const double r = std::min(feedback.false_drop_rate, 0.99);
        const double answers =
            bd.expected_candidates - bd.expected_false_drops;
        const double observed_candidates = answers / (1.0 - r);
        // Surplus candidates fail resolution: one unqualifying fetch each.
        choice.cost_pages +=
            db.p_u * (observed_candidates - bd.expected_candidates);
      }
    }
    if (feedback.buffer_hit_rate >= 0) {
      choice.cost_pages *=
          1.0 - std::min(std::max(feedback.buffer_hit_rate, 0.0), 1.0);
    }
  }
  std::stable_sort(choices.begin(), choices.end(),
                   [](const AccessPathChoice& a, const AccessPathChoice& b) {
                     return a.cost_pages < b.cost_pages;
                   });
  return choices;
}

StatusOr<AccessPathChoice> BestAccessPath(const DatabaseParams& db,
                                          const SignatureParams& sig,
                                          const NixParams& nix, int64_t dt,
                                          int64_t dq, QueryKind kind,
                                          bool allow_smart) {
  SIGSET_ASSIGN_OR_RETURN(
      std::vector<AccessPathChoice> choices,
      AdviseAccessPaths(db, sig, nix, dt, dq, kind, allow_smart));
  return choices.front();
}

// --- set-containment joins (R ⋈⊆ S) ---------------------------------------

StatusOr<std::vector<JoinStrategyChoice>> AdviseJoinStrategies(
    const DatabaseParams& db_r, int64_t dt_r, const DatabaseParams& db_s,
    int64_t dt_s, const SignatureParams& sig, const NixParams& nix) {
  if (dt_r < 1) dt_r = 1;
  if (dt_s < 1) dt_s = 1;
  // One nested-loop probe is exactly the selection the executor would run
  // for query cardinality Dq = dt_r against S.
  SIGSET_ASSIGN_OR_RETURN(
      AccessPathChoice probe,
      BestAccessPath(db_s, sig, nix, dt_s, dt_r, QueryKind::kSuperset,
                     /*allow_smart=*/true));
  const CostBreakdown probe_bd = BreakdownForChoice(
      db_s, sig, nix, dt_s, dt_r, QueryKind::kSuperset, probe);

  std::vector<JoinStrategyChoice> choices;
  const auto add = [&](JoinStrategy strategy, const JoinCostBreakdown& bd) {
    choices.push_back({strategy, JoinStrategyName(strategy), bd.total(),
                       bd.expected_candidate_pairs,
                       bd.expected_result_pairs});
  };
  add(JoinStrategy::kSignatureHash,
      JoinSignatureHashCost(db_r, dt_r, db_s, dt_s, sig));
  add(JoinStrategy::kAdaptive,
      JoinAdaptiveCost(db_r, dt_r, db_s, dt_s, sig));
  add(JoinStrategy::kNestedLoop,
      JoinNestedLoopCost(db_r, dt_r, db_s, dt_s, probe.cost_pages,
                         probe_bd.expected_candidates));
  std::stable_sort(choices.begin(), choices.end(),
                   [](const JoinStrategyChoice& a,
                      const JoinStrategyChoice& b) {
                     return a.cost_pages < b.cost_pages;
                   });
  return choices;
}

StatusOr<JoinStrategyChoice> BestJoinStrategy(const DatabaseParams& db_r,
                                              int64_t dt_r,
                                              const DatabaseParams& db_s,
                                              int64_t dt_s,
                                              const SignatureParams& sig,
                                              const NixParams& nix) {
  SIGSET_ASSIGN_OR_RETURN(
      std::vector<JoinStrategyChoice> choices,
      AdviseJoinStrategies(db_r, dt_r, db_s, dt_s, sig, nix));
  return choices.front();
}

StatusOr<JoinCostBreakdown> BreakdownForJoinStrategy(
    const DatabaseParams& db_r, int64_t dt_r, const DatabaseParams& db_s,
    int64_t dt_s, const SignatureParams& sig, const NixParams& nix,
    JoinStrategy strategy) {
  if (dt_r < 1) dt_r = 1;
  if (dt_s < 1) dt_s = 1;
  switch (strategy) {
    case JoinStrategy::kSignatureHash:
      return JoinSignatureHashCost(db_r, dt_r, db_s, dt_s, sig);
    case JoinStrategy::kAdaptive:
      return JoinAdaptiveCost(db_r, dt_r, db_s, dt_s, sig);
    case JoinStrategy::kNestedLoop: {
      SIGSET_ASSIGN_OR_RETURN(
          AccessPathChoice probe,
          BestAccessPath(db_s, sig, nix, dt_s, dt_r, QueryKind::kSuperset,
                         /*allow_smart=*/true));
      const CostBreakdown probe_bd = BreakdownForChoice(
          db_s, sig, nix, dt_s, dt_r, QueryKind::kSuperset, probe);
      return JoinNestedLoopCost(db_r, dt_r, db_s, dt_s, probe.cost_pages,
                                probe_bd.expected_candidates);
    }
    case JoinStrategy::kAuto:
      break;
  }
  return Status::InvalidArgument(
      "kAuto has no breakdown; resolve the strategy first");
}

}  // namespace sigsetdb
