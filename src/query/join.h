// Set-containment joins: R ⋈⊆ S — all pairs (r, s) with r.set ⊆ s.set
// ("Set Containment Join Revisited", Bouros et al.; ROADMAP item 2).
//
// The paper evaluates signature files for set *selections*; the join lifts
// the same machinery to a quadratic candidate space.  Three strategies:
//
//   nested-loop  For each r, run the T ⊇ Q selection the executor would run
//                for query r.set against the S side's access facility and
//                resolve its false drops — the baseline a selection-only
//                engine produces.
//   sig-hash     Scan both sides once, build superimposed-coding signatures
//                in memory, partition S by the low `prefix_bits` bits of its
//                signatures, and for each r enumerate only the buckets whose
//                prefix is a bit-superset of r's (sub-mask enumeration).
//                Surviving pairs are checked against the full F-bit
//                signatures (dispatched ContainsAll kernel) and verified
//                exactly with the sorted-array intersection kernel
//                (|r ∩ s| = |r| ⇔ r ⊆ s).  No per-pair page I/O.
//   adaptive     Partition R by the same signature prefix and pick, per
//                R-partition, between the sig-probe direction and the
//                index-probe (nested-loop) direction using the partition's
//                compatible-S cardinality versus the modeled per-probe cost
//                (à la Bouros et al.'s adaptive method).
//
// All strategies return the identical pair set, sorted by (r, s) — the
// differential fuzz battery pins them bit-identical to a brute-force
// O(|R|·|S|) oracle.  An r with the empty set pairs with *every* s (∅ ⊆ X
// for all X, including ∅ ⊆ ∅); facilities reject empty queries, so the
// nested-loop path special-cases ∅ against the live S roster.
//
// Parallelism: the in-memory probe/verify phases fan out over contiguous
// R ranges via ParallelExecutionContext with per-worker accumulators merged
// in worker order, so results are identical at any thread count.  Facility
// probes run serially (facility query surfaces are not re-entrant), each
// internally using `ctx` exactly as the selection executor does — page
// totals therefore match the serial path bit for bit.

#ifndef SIGSET_QUERY_JOIN_H_
#define SIGSET_QUERY_JOIN_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "obj/object.h"
#include "obj/oid.h"
#include "obs/trace.h"
#include "query/executor.h"
#include "sig/signature.h"
#include "storage/io_stats.h"
#include "util/status.h"
#include "util/thread_pool.h"

namespace sigsetdb {

// How ExecuteSetJoin computes the pair set.
enum class JoinStrategy {
  kAuto,           // advisor-chosen (db layer resolves before the executor)
  kNestedLoop,     // loop of T ⊇ Q selections against the S facility
  kSignatureHash,  // signature-prefix partitioning, in-memory verification
  kAdaptive,       // per-partition choice between the two probe directions
};

// Stable lower-case name ("auto", "nested-loop", "sig-hash", "adaptive").
const char* JoinStrategyName(JoinStrategy strategy);

// Parses a JoinStrategyName back; kInvalidArgument on unknown text.
StatusOr<JoinStrategy> ParseJoinStrategy(const std::string& text);

// Tuning knobs of one join execution.
struct JoinSpec {
  JoinStrategy strategy = JoinStrategy::kAuto;
  // Signature-prefix bits used for partitioning (sig-hash and adaptive).
  // Clamped to [1, min(16, F)]; the bucket table has 2^prefix_bits entries.
  uint32_t prefix_bits = 8;
  // Adaptive only: an R-partition switches to the index-probe direction
  // when its compatible-S cardinality (full-signature checks one r would
  // pay) exceeds this.  < 0 derives the threshold from the S side's modeled
  // per-probe page cost (kSigChecksPerPage signature checks ≈ one page).
  double adaptive_probe_threshold = -1.0;
};

// One result pair: r.set ⊆ s.set.
struct JoinPair {
  Oid r;
  Oid s;

  friend bool operator==(const JoinPair& a, const JoinPair& b) {
    return a.r == b.r && a.s == b.s;
  }
  friend bool operator!=(const JoinPair& a, const JoinPair& b) {
    return !(a == b);
  }
  friend bool operator<(const JoinPair& a, const JoinPair& b) {
    if (a.r.value() != b.r.value()) return a.r.value() < b.r.value();
    return a.s.value() < b.s.value();
  }
};

// Outcome of one join.
struct JoinResult {
  std::vector<JoinPair> pairs;  // sorted by (r, s), duplicate-free
  // Pairs that reached verification (signature survivors / facility drops);
  // ∅-set r rows count their |S| trivial pairs here too.
  uint64_t num_candidate_pairs = 0;
  // Candidate pairs that failed exact verification (signature false drops).
  uint64_t num_false_drop_pairs = 0;
  // Facility selections issued (nested-loop and adaptive's probe direction).
  uint64_t num_probes = 0;
};

// One relation of the join, described operationally.  The db layer builds
// these over a SetIndex, a Database attribute, or their snapshot views; the
// executor stays independent of the storage stack.
struct JoinSideAccess {
  // Live-object count (sizing hint; not trusted for correctness).
  uint64_t num_live = 0;
  // Scans every live (oid, set) in physical order, charging that side's
  // page I/O.  Required on both sides (the R side is always scanned; the S
  // side for sig-hash/adaptive, and for the ∅-set roster in nested-loop).
  std::function<Status(const std::function<Status(Oid, const ElementSet&)>&)>
      scan;
  // Exact T ⊇ Q selection over this side: every live t with t.set ⊇ query
  // (resolved, no false drops in the answer).  `query` is non-empty and
  // normalized.  Required for kNestedLoop; optional for kAdaptive (absent ⇒
  // sig direction everywhere).  S side only.
  std::function<StatusOr<QueryResult>(const ElementSet& query)> probe_superset;
  // Modeled pages of one probe_superset call (advisor estimate; feeds the
  // adaptive direction choice).  <= 0 with a usable probe means "cheap".
  double probe_cost_pages = 0.0;
};

// Runs the join.  `spec.strategy` must not be kAuto here — strategy choice
// belongs to the planner/advisor layer (see AdviseJoinStrategies).  `sig`
// is the signature design used for the in-memory filter on BOTH sides (the
// signatures are built from the scanned sets, not read from files, so any
// single config is sound; the db layer passes the R side's).  `trace`
// (optional) receives per-stage spans — "r scan", "s scan", "partition",
// "probe+verify", "probe loop" — whose page deltas come from `total_stats`
// (optional; a snapshot-able view of both sides' combined IoStats).
StatusOr<JoinResult> ExecuteSetJoin(
    const JoinSideAccess& r, const JoinSideAccess& s,
    const SignatureConfig& sig, const JoinSpec& spec,
    const ParallelExecutionContext* ctx = nullptr, QueryTrace* trace = nullptr,
    const std::function<IoStats()>& total_stats = nullptr);

}  // namespace sigsetdb

#endif  // SIGSET_QUERY_JOIN_H_
