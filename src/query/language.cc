#include "query/language.h"

#include <cctype>

#include "util/hashing.h"

namespace sigsetdb {

namespace {

// ---- lexer ----

enum class TokenKind {
  kIdent,    // identifiers, keywords and operator words (may contain '-')
  kString,   // "..."
  kNumber,   // [0-9]+
  kLParen,
  kRParen,
  kComma,
  kEnd,
};

struct Token {
  TokenKind kind;
  std::string text;
  uint64_t number = 0;
  size_t pos = 0;  // byte offset, for error messages
};

class Lexer {
 public:
  explicit Lexer(const std::string& text) : text_(text) {}

  StatusOr<std::vector<Token>> Tokenize() {
    std::vector<Token> tokens;
    size_t i = 0;
    while (i < text_.size()) {
      char c = text_[i];
      if (std::isspace(static_cast<unsigned char>(c))) {
        ++i;
        continue;
      }
      if (c == '(') {
        tokens.push_back({TokenKind::kLParen, "(", 0, i++});
      } else if (c == ')') {
        tokens.push_back({TokenKind::kRParen, ")", 0, i++});
      } else if (c == ',') {
        tokens.push_back({TokenKind::kComma, ",", 0, i++});
      } else if (c == '"') {
        size_t start = i++;
        std::string value;
        while (i < text_.size() && text_[i] != '"') value.push_back(text_[i++]);
        if (i >= text_.size()) {
          return Status::InvalidArgument(
              "unterminated string literal at offset " +
              std::to_string(start));
        }
        ++i;  // closing quote
        tokens.push_back({TokenKind::kString, value, 0, start});
      } else if (std::isdigit(static_cast<unsigned char>(c))) {
        size_t start = i;
        uint64_t value = 0;
        while (i < text_.size() &&
               std::isdigit(static_cast<unsigned char>(text_[i]))) {
          value = value * 10 + static_cast<uint64_t>(text_[i] - '0');
          ++i;
        }
        tokens.push_back({TokenKind::kNumber, text_.substr(start, i - start),
                          value, start});
      } else if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
        size_t start = i;
        while (i < text_.size() &&
               (std::isalnum(static_cast<unsigned char>(text_[i])) ||
                text_[i] == '_' || text_[i] == '-')) {
          ++i;
        }
        tokens.push_back(
            {TokenKind::kIdent, text_.substr(start, i - start), 0, start});
      } else {
        return Status::InvalidArgument("unexpected character '" +
                                       std::string(1, c) + "' at offset " +
                                       std::to_string(i));
      }
    }
    tokens.push_back({TokenKind::kEnd, "", 0, text_.size()});
    return tokens;
  }

 private:
  const std::string& text_;
};

// ---- parser ----

class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  StatusOr<ParsedJoin> ParseJoin() {
    ParsedJoin join;
    SIGSET_RETURN_IF_ERROR(ExpectKeyword("join"));
    SIGSET_ASSIGN_OR_RETURN(join.class_name, ExpectIdent("class name"));
    SIGSET_RETURN_IF_ERROR(ExpectKeyword("on"));
    SIGSET_ASSIGN_OR_RETURN(join.r_attribute,
                            ExpectIdent("R-side attribute name"));
    // The only join operator: r.<attr> in-subset s.<attr> (R ⋈⊆ S).
    SIGSET_RETURN_IF_ERROR(ExpectKeyword("in-subset"));
    SIGSET_ASSIGN_OR_RETURN(join.s_attribute,
                            ExpectIdent("S-side attribute name"));
    if (Peek().kind == TokenKind::kIdent && Peek().text == "using") {
      ++index_;
      SIGSET_ASSIGN_OR_RETURN(std::string name,
                              ExpectIdent("join strategy name"));
      SIGSET_ASSIGN_OR_RETURN(join.strategy, ParseJoinStrategy(name));
    }
    if (Peek().kind != TokenKind::kEnd) {
      return Err("trailing input");
    }
    return join;
  }

  StatusOr<ParsedQuery> Parse() {
    ParsedQuery query;
    SIGSET_RETURN_IF_ERROR(ExpectKeyword("select"));
    SIGSET_ASSIGN_OR_RETURN(query.class_name, ExpectIdent("class name"));
    SIGSET_RETURN_IF_ERROR(ExpectKeyword("where"));
    while (true) {
      SIGSET_ASSIGN_OR_RETURN(ParsedPredicate predicate, ParsePredicate());
      query.predicates.push_back(std::move(predicate));
      if (Peek().kind == TokenKind::kIdent && Peek().text == "and") {
        ++index_;
        continue;
      }
      break;
    }
    if (Peek().kind != TokenKind::kEnd) {
      return Err("trailing input");
    }
    return query;
  }

 private:
  const Token& Peek() const { return tokens_[index_]; }

  Status Err(const std::string& what) const {
    return Status::InvalidArgument(what + " at offset " +
                                   std::to_string(Peek().pos));
  }

  Status ExpectKeyword(const std::string& keyword) {
    if (Peek().kind != TokenKind::kIdent || Peek().text != keyword) {
      return Err("expected '" + keyword + "'");
    }
    ++index_;
    return Status::OK();
  }

  StatusOr<std::string> ExpectIdent(const std::string& what) {
    if (Peek().kind != TokenKind::kIdent) {
      return Err("expected " + what);
    }
    return tokens_[index_++].text;
  }

  StatusOr<QueryKind> ParseOperator() {
    if (Peek().kind != TokenKind::kIdent) return Err("expected operator");
    const std::string& word = Peek().text;
    QueryKind kind;
    if (word == "has-subset") {
      kind = QueryKind::kSuperset;
    } else if (word == "in-subset") {
      kind = QueryKind::kSubset;
    } else if (word == "has-proper-subset") {
      kind = QueryKind::kProperSuperset;
    } else if (word == "in-proper-subset") {
      kind = QueryKind::kProperSubset;
    } else if (word == "equals") {
      kind = QueryKind::kEquals;
    } else if (word == "overlaps") {
      kind = QueryKind::kOverlaps;
    } else {
      return Err("unknown operator '" + word + "'");
    }
    ++index_;
    return kind;
  }

  StatusOr<ParsedPredicate> ParsePredicate() {
    ParsedPredicate predicate;
    SIGSET_ASSIGN_OR_RETURN(predicate.attribute,
                            ExpectIdent("attribute name"));
    SIGSET_ASSIGN_OR_RETURN(predicate.kind, ParseOperator());
    if (Peek().kind != TokenKind::kLParen) return Err("expected '('");
    ++index_;
    while (true) {
      QueryLiteral literal;
      if (Peek().kind == TokenKind::kString) {
        literal.is_string = true;
        literal.text = Peek().text;
      } else if (Peek().kind == TokenKind::kNumber) {
        literal.number = Peek().number;
      } else {
        return Err("expected string or integer literal");
      }
      ++index_;
      predicate.literals.push_back(std::move(literal));
      if (Peek().kind == TokenKind::kComma) {
        ++index_;
        continue;
      }
      break;
    }
    if (Peek().kind != TokenKind::kRParen) return Err("expected ')'");
    ++index_;
    return predicate;
  }

  std::vector<Token> tokens_;
  size_t index_ = 0;
};

// Element id guaranteed (modulo 2^-64 hash collisions) not to match any
// interned string or physical OID: high bit set + mixed hash of the text.
uint64_t UnmatchableId(const std::string& text) {
  uint64_t h = 0xcbf29ce484222325ULL;  // FNV-1a offset basis
  for (char c : text) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ULL;
  }
  return Mix64(h) | (uint64_t{1} << 63);
}

}  // namespace

StatusOr<ParsedQuery> ParseQuery(const std::string& text) {
  Lexer lexer(text);
  SIGSET_ASSIGN_OR_RETURN(std::vector<Token> tokens, lexer.Tokenize());
  Parser parser(std::move(tokens));
  return parser.Parse();
}

StatusOr<std::vector<SetPredicate>> BindQuery(
    const ParsedQuery& query, Database* db,
    std::vector<std::string>* unknown_strings) {
  std::vector<SetPredicate> predicates;
  predicates.reserve(query.predicates.size());
  for (const ParsedPredicate& parsed : query.predicates) {
    SIGSET_ASSIGN_OR_RETURN(size_t attr, db->AttributeIndex(parsed.attribute));
    SetPredicate predicate;
    predicate.attribute = parsed.attribute;
    predicate.kind = parsed.kind;
    for (const QueryLiteral& literal : parsed.literals) {
      if (!literal.is_string) {
        predicate.query.push_back(literal.number);
        continue;
      }
      StatusOr<uint64_t> id =
          db->dictionary(attr).LookupString(literal.text);
      if (id.ok()) {
        predicate.query.push_back(*id);
      } else {
        // Unknown strings match nothing but must not fail the query: for
        // T ⊇ Q they empty the result; for T ⊆ Q they merely widen Q.
        predicate.query.push_back(UnmatchableId(literal.text));
        if (unknown_strings != nullptr) {
          unknown_strings->push_back(literal.text);
        }
      }
    }
    NormalizeSet(&predicate.query);
    predicates.push_back(std::move(predicate));
  }
  return predicates;
}

StatusOr<DatabaseQueryResult> ExecuteQueryText(const std::string& text,
                                               Database* db) {
  SIGSET_ASSIGN_OR_RETURN(ParsedQuery parsed, ParseQuery(text));
  SIGSET_ASSIGN_OR_RETURN(std::vector<SetPredicate> predicates,
                          BindQuery(parsed, db));
  return db->Query(predicates);
}

StatusOr<ParsedJoin> ParseJoinQuery(const std::string& text) {
  Lexer lexer(text);
  SIGSET_ASSIGN_OR_RETURN(std::vector<Token> tokens, lexer.Tokenize());
  Parser parser(std::move(tokens));
  return parser.ParseJoin();
}

StatusOr<DatabaseJoinResult> ExecuteJoinQueryText(const std::string& text,
                                                  Database* db) {
  SIGSET_ASSIGN_OR_RETURN(ParsedJoin parsed, ParseJoinQuery(text));
  JoinSpec spec;
  spec.strategy = parsed.strategy;
  return db->ExecuteSetJoin(parsed.r_attribute, parsed.s_attribute, spec);
}

}  // namespace sigsetdb
