#include "obj/object_store.h"

#include <cstring>

#include "storage/slotted_page.h"

namespace sigsetdb {

namespace {

// Serializes a set value as [count:u32][elem:u64]*.
std::vector<uint8_t> SerializeSet(const ElementSet& set) {
  std::vector<uint8_t> buf(4 + set.size() * 8);
  uint32_t count = static_cast<uint32_t>(set.size());
  std::memcpy(buf.data(), &count, 4);
  std::memcpy(buf.data() + 4, set.data(), set.size() * 8);
  return buf;
}

Status DeserializeSet(const uint8_t* data, uint16_t len, ElementSet* out) {
  if (len < 4) return Status::Corruption("object record too short");
  uint32_t count;
  std::memcpy(&count, data, 4);
  if (4 + static_cast<size_t>(count) * 8 != len) {
    return Status::Corruption("object record length mismatch");
  }
  out->resize(count);
  std::memcpy(out->data(), data + 4, static_cast<size_t>(count) * 8);
  return Status::OK();
}

}  // namespace

ObjectStore::ObjectStore(PageFile* file) : file_(file) {
  // When reopening a populated file, keep appending to its last page.
  if (file_->num_pages() > 0) tail_page_ = file_->num_pages() - 1;
}

StatusOr<Oid> ObjectStore::Insert(const ElementSet& set_value) {
  std::vector<uint8_t> record = SerializeSet(set_value);
  if (record.size() > kPageSize - 8) {
    return Status::InvalidArgument("set value too large for one page");
  }
  Page page;
  if (tail_page_ != kInvalidPage) {
    SIGSET_RETURN_IF_ERROR(file_->Read(tail_page_, &page));
    SlottedPage sp(&page);
    if (auto slot = sp.Insert(record.data(),
                              static_cast<uint16_t>(record.size()))) {
      SIGSET_RETURN_IF_ERROR(file_->Write(tail_page_, page));
      ++num_objects_;
      return Oid::FromLocation(tail_page_, *slot);
    }
  }
  // Tail page full (or no page yet): start a fresh page.
  SIGSET_ASSIGN_OR_RETURN(PageId new_page, file_->Allocate());
  SlottedPage::Init(&page);
  SlottedPage sp(&page);
  auto slot = sp.Insert(record.data(), static_cast<uint16_t>(record.size()));
  if (!slot.has_value()) {
    return Status::Internal("record does not fit in an empty page");
  }
  SIGSET_RETURN_IF_ERROR(file_->Write(new_page, page));
  tail_page_ = new_page;
  ++num_objects_;
  return Oid::FromLocation(new_page, *slot);
}

StatusOr<StoredObject> ObjectStore::Get(Oid oid, IoStats* io) const {
  if (!oid.valid()) return Status::InvalidArgument("invalid oid");
  Page page;
  SIGSET_RETURN_IF_ERROR(
      file_->Read(oid.page(), &page, io != nullptr ? io : &file_->stats()));
  SlottedPage sp(&page);
  uint16_t len = 0;
  const uint8_t* rec = sp.Get(oid.slot(), &len);
  if (rec == nullptr) {
    return Status::NotFound("no object at " + oid.ToString());
  }
  StoredObject obj;
  obj.oid = oid;
  SIGSET_RETURN_IF_ERROR(DeserializeSet(rec, len, &obj.set_value));
  return obj;
}

Status ObjectStore::Delete(Oid oid) {
  if (!oid.valid()) return Status::InvalidArgument("invalid oid");
  Page page;
  SIGSET_RETURN_IF_ERROR(file_->Read(oid.page(), &page));
  SlottedPage sp(&page);
  uint16_t len = 0;
  if (sp.Get(oid.slot(), &len) == nullptr) {
    return Status::NotFound("no object at " + oid.ToString());
  }
  sp.Delete(oid.slot());
  SIGSET_RETURN_IF_ERROR(file_->Write(oid.page(), page));
  if (num_objects_ > 0) --num_objects_;
  return Status::OK();
}

}  // namespace sigsetdb
