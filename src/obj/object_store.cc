#include "obj/object_store.h"

#include <cstring>

#include "storage/slotted_page.h"

namespace sigsetdb {

namespace {

// Serializes a set value as [count:u32][elem:u64]*.
std::vector<uint8_t> SerializeSet(const ElementSet& set) {
  std::vector<uint8_t> buf(4 + set.size() * 8);
  uint32_t count = static_cast<uint32_t>(set.size());
  std::memcpy(buf.data(), &count, 4);
  std::memcpy(buf.data() + 4, set.data(), set.size() * 8);
  return buf;
}

Status DeserializeSet(const uint8_t* data, uint16_t len, ElementSet* out) {
  if (len < 4) return Status::Corruption("object record too short");
  uint32_t count;
  std::memcpy(&count, data, 4);
  if (4 + static_cast<size_t>(count) * 8 != len) {
    return Status::Corruption("object record length mismatch");
  }
  out->resize(count);
  std::memcpy(out->data(), data + 4, static_cast<size_t>(count) * 8);
  return Status::OK();
}

}  // namespace

ObjectStore::ObjectStore(PageFile* file) : file_(file) {
  // When reopening a populated file, keep appending to its last page.
  if (file_->num_pages() > 0) tail_page_ = file_->num_pages() - 1;
}

StatusOr<Oid> ObjectStore::Insert(const ElementSet& set_value) {
  std::vector<uint8_t> record = SerializeSet(set_value);
  if (record.size() > kPageSize - 8) {
    return Status::InvalidArgument("set value too large for one page");
  }
  Page page;
  if (tail_page_ != kInvalidPage) {
    SIGSET_RETURN_IF_ERROR(file_->Read(tail_page_, &page));
    SlottedPage sp(&page);
    if (auto slot = sp.Insert(record.data(),
                              static_cast<uint16_t>(record.size()))) {
      SIGSET_RETURN_IF_ERROR(file_->Write(tail_page_, page));
      ++num_objects_;
      return Oid::FromLocation(tail_page_, *slot);
    }
  }
  // Tail page full (or no page yet): start a fresh page.
  SIGSET_ASSIGN_OR_RETURN(PageId new_page, file_->Allocate());
  SlottedPage::Init(&page);
  SlottedPage sp(&page);
  auto slot = sp.Insert(record.data(), static_cast<uint16_t>(record.size()));
  if (!slot.has_value()) {
    return Status::Internal("record does not fit in an empty page");
  }
  SIGSET_RETURN_IF_ERROR(file_->Write(new_page, page));
  tail_page_ = new_page;
  ++num_objects_;
  return Oid::FromLocation(new_page, *slot);
}

StatusOr<Oid> ObjectStore::PeekNextOid(const ElementSet& set_value) const {
  std::vector<uint8_t> record = SerializeSet(set_value);
  if (record.size() > kPageSize - 8) {
    return Status::InvalidArgument("set value too large for one page");
  }
  Page scratch;
  if (tail_page_ != kInvalidPage) {
    SIGSET_RETURN_IF_ERROR(file_->Read(tail_page_, &scratch));
    SlottedPage sp(&scratch);
    if (auto slot = sp.Insert(record.data(),
                              static_cast<uint16_t>(record.size()))) {
      return Oid::FromLocation(tail_page_, *slot);
    }
  }
  SlottedPage::Init(&scratch);
  SlottedPage sp(&scratch);
  auto slot = sp.Insert(record.data(), static_cast<uint16_t>(record.size()));
  if (!slot.has_value()) {
    return Status::Internal("record does not fit in an empty page");
  }
  return Oid::FromLocation(file_->num_pages(), *slot);
}

StatusOr<std::vector<Oid>> ObjectStore::PeekOids(
    const std::vector<ElementSet>& set_values) const {
  std::vector<Oid> oids;
  oids.reserve(set_values.size());
  Page scratch;
  PageId cur_page = kInvalidPage;
  PageId pages_added = 0;
  if (tail_page_ != kInvalidPage) {
    SIGSET_RETURN_IF_ERROR(file_->Read(tail_page_, &scratch));
    cur_page = tail_page_;
  }
  for (const ElementSet& set : set_values) {
    std::vector<uint8_t> record = SerializeSet(set);
    if (record.size() > kPageSize - 8) {
      return Status::InvalidArgument("set value too large for one page");
    }
    if (cur_page != kInvalidPage) {
      SlottedPage sp(&scratch);
      if (auto slot = sp.Insert(record.data(),
                                static_cast<uint16_t>(record.size()))) {
        oids.push_back(Oid::FromLocation(cur_page, *slot));
        continue;
      }
    }
    cur_page = file_->num_pages() + pages_added;
    ++pages_added;
    SlottedPage::Init(&scratch);
    SlottedPage sp(&scratch);
    auto slot = sp.Insert(record.data(), static_cast<uint16_t>(record.size()));
    if (!slot.has_value()) {
      return Status::Internal("record does not fit in an empty page");
    }
    oids.push_back(Oid::FromLocation(cur_page, *slot));
  }
  return oids;
}

Status ObjectStore::ReplayEnsurePresent(Oid oid, const ElementSet& set_value) {
  if (!oid.valid()) return Status::InvalidArgument("invalid oid");
  std::vector<uint8_t> record = SerializeSet(set_value);
  if (record.size() > kPageSize - 8) {
    return Status::InvalidArgument("set value too large for one page");
  }
  const uint16_t len = static_cast<uint16_t>(record.size());
  // The crash may have hit before the page was allocated.
  while (file_->num_pages() <= oid.page()) {
    SIGSET_RETURN_IF_ERROR(file_->Allocate().status());
  }
  Page page;
  SIGSET_RETURN_IF_ERROR(file_->Read(oid.page(), &page));
  // A freshly allocated page is all zeros, which reads as num_slots == 0,
  // heap_start == 0 — not a formatted empty page (heap_start == kPageSize).
  if (page.ReadAt<uint16_t>(0) == 0 &&
      page.ReadAt<uint16_t>(2) != static_cast<uint16_t>(kPageSize)) {
    SlottedPage::Init(&page);
  }
  SlottedPage sp(&page);
  if (oid.slot() < sp.num_slots()) {
    uint16_t cur_len = 0;
    const uint8_t* cur = sp.Get(oid.slot(), &cur_len);
    if (cur != nullptr) {
      // Already applied: verify, don't re-apply (idempotent replay).
      if (cur_len != len || std::memcmp(cur, record.data(), len) != 0) {
        return Status::Corruption("replay mismatch at " + oid.ToString());
      }
      return Status::OK();
    }
    // Tombstoned by an aborted delete: restore from the logged preimage.
    if (!sp.Resurrect(oid.slot(), record.data(), len)) {
      return Status::Corruption("cannot resurrect " + oid.ToString());
    }
  } else if (oid.slot() == sp.num_slots()) {
    auto slot = sp.Insert(record.data(), len);
    if (!slot.has_value() || *slot != oid.slot()) {
      return Status::Corruption("replay append failed at " + oid.ToString());
    }
  } else {
    // Slots are assigned densely; a gap means the log and store disagree.
    return Status::Corruption("replay slot gap at " + oid.ToString());
  }
  SIGSET_RETURN_IF_ERROR(file_->Write(oid.page(), page));
  tail_page_ = file_->num_pages() - 1;
  return Status::OK();
}

Status ObjectStore::ReplayEnsureAbsent(Oid oid) {
  if (!oid.valid()) return Status::InvalidArgument("invalid oid");
  if (oid.page() >= file_->num_pages()) return Status::OK();
  Page page;
  SIGSET_RETURN_IF_ERROR(file_->Read(oid.page(), &page));
  SlottedPage sp(&page);
  uint16_t len = 0;
  if (sp.Get(oid.slot(), &len) == nullptr) return Status::OK();
  sp.Delete(oid.slot());
  return file_->Write(oid.page(), page);
}

Status ObjectStore::ForEachLive(
    const std::function<Status(Oid, const ElementSet&)>& fn) const {
  const PageId num_pages = file_->num_pages();
  for (PageId p = 0; p < num_pages; ++p) {
    Page page;
    SIGSET_RETURN_IF_ERROR(file_->Read(p, &page));
    SlottedPage sp(&page);
    const uint16_t slots = sp.num_slots();
    for (uint16_t s = 0; s < slots; ++s) {
      uint16_t len = 0;
      const uint8_t* rec = sp.Get(s, &len);
      if (rec == nullptr) continue;
      ElementSet set;
      SIGSET_RETURN_IF_ERROR(DeserializeSet(rec, len, &set));
      SIGSET_RETURN_IF_ERROR(fn(Oid::FromLocation(p, s), set));
    }
  }
  return Status::OK();
}

StatusOr<StoredObject> ObjectStore::Get(Oid oid, IoStats* io) const {
  if (!oid.valid()) return Status::InvalidArgument("invalid oid");
  Page page;
  SIGSET_RETURN_IF_ERROR(
      file_->Read(oid.page(), &page, io != nullptr ? io : &file_->stats()));
  SlottedPage sp(&page);
  uint16_t len = 0;
  const uint8_t* rec = sp.Get(oid.slot(), &len);
  if (rec == nullptr) {
    return Status::NotFound("no object at " + oid.ToString());
  }
  StoredObject obj;
  obj.oid = oid;
  SIGSET_RETURN_IF_ERROR(DeserializeSet(rec, len, &obj.set_value));
  return obj;
}

Status ObjectStore::Delete(Oid oid) {
  if (!oid.valid()) return Status::InvalidArgument("invalid oid");
  Page page;
  SIGSET_RETURN_IF_ERROR(file_->Read(oid.page(), &page));
  SlottedPage sp(&page);
  uint16_t len = 0;
  if (sp.Get(oid.slot(), &len) == nullptr) {
    return Status::NotFound("no object at " + oid.ToString());
  }
  sp.Delete(oid.slot());
  SIGSET_RETURN_IF_ERROR(file_->Write(oid.page(), page));
  if (num_objects_ > 0) --num_objects_;
  return Status::OK();
}

}  // namespace sigsetdb
