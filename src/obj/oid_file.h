// OidFile: the OID file shared by both signature-file organizations.
//
// The paper's signature files store, for the i-th signature, the OID of the
// corresponding object as the i-th entry of a sequential OID file
// (O_d = ⌊P/oid⌋ = 512 entries per page).  Deletion sets a delete flag in
// the OID entry (found by sequential scan, expected SC_OID/2 page accesses),
// leaving a dangling signature that is filtered at lookup time.
//
// The delete flag doubles as the persistent free-slot record: recovery
// rescans the used pages and rebuilds the in-memory free list from the
// flags, so tombstoned slots can be handed back out to later inserts
// (SetAt/SetMany overwrite the entry in place and clear the flag).  The
// entry count `num_entries_` stays a high-water mark — the checkpoint
// format is unchanged — while `num_live_` tracks the unflagged population.

#ifndef SIGSET_OBJ_OID_FILE_H_
#define SIGSET_OBJ_OID_FILE_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "obj/oid.h"
#include "storage/page_file.h"

namespace sigsetdb {

// Number of OID entries per page (paper Table 2: O_d = 512).
inline constexpr uint32_t kOidsPerPage = kPageSize / kOidBytes;

// Sequential file of 8-byte OID entries addressed by slot number.
class OidFile {
 public:
  // Does not take ownership of `file`.  The appender buffers its tail page in
  // memory, so Append costs exactly one page write — the model's UC_I charge
  // of one access for the OID file.  `file` is assumed empty; to reopen a
  // populated file call Recover() with the persisted entry count.
  explicit OidFile(PageFile* file);

  // Restores appender state over a populated file: validates the page count
  // against `num_entries`, reloads the tail-page image, and rescans the used
  // pages to rebuild the free-slot list from persisted delete flags (one
  // read per used page; callers treat recovery I/O as setup).
  Status Recover(uint64_t num_entries);

  // Restores the counters WITHOUT the recovery scan, for read-only snapshot
  // views: Get/GetMany work immediately, while the write paths (which need
  // the tail image and free list the scan rebuilds) must not be called.
  void AttachReadOnly(uint64_t num_entries, uint64_t num_live) {
    num_entries_ = num_entries;
    num_live_ = num_live;
  }

  // Appends `oid`, returning its slot number (== signature position).
  StatusOr<uint64_t> Append(Oid oid);

  // Appends `oids` as one contiguous run of fresh slots, writing each
  // touched tail page once (⌈n/O_d⌉-ish writes instead of n).  Returns the
  // slot of the first appended entry; the rest follow consecutively.
  StatusOr<uint64_t> AppendMany(const std::vector<Oid>& oids);

  // Reads the entry at `slot` (one page read).  Returns an invalid Oid if
  // the entry is delete-flagged.
  StatusOr<Oid> Get(uint64_t slot) const;

  // Resolves many slots to OIDs with one page read per *distinct page*
  // (`slots` must be sorted ascending) — this is the behaviour behind the
  // paper's look-up cost LC_OID = SC_OID · min(Fd(O_d−α)+α, 1).
  // Delete-flagged entries are skipped.
  StatusOr<std::vector<Oid>> GetMany(const std::vector<uint64_t>& slots) const;

  // Scans from the start for the entry holding `oid` and sets its delete
  // flag.  Costs (slot/O_d + 1) page reads + 1 write; averaged over uniform
  // victims this is the model's UC_D = SC_OID/2.  Returns the tombstoned
  // slot, which also joins the free list for reuse.
  StatusOr<uint64_t> MarkDeleted(Oid oid);

  // Tombstones every oid in `oids` with ONE scan over the used pages and
  // one write per dirty page — the batched UC_D: SC_OID reads plus
  // min(n, dirty pages) writes for the whole batch.  Fails without writing
  // anything if any oid is absent (or listed twice).  Returns the freed
  // slots aligned with the input order.
  StatusOr<std::vector<uint64_t>> MarkDeletedMany(const std::vector<Oid>& oids);

  // Overwrites the tombstoned entry at `slot` with `oid` (clearing the
  // delete flag) and removes the slot from the free list.  One page
  // read-modify-write.  This is the commit point of slot reuse: callers
  // deposit the new signature first, then SetAt publishes the slot.
  Status SetAt(uint64_t slot, Oid oid);

  // SetAt for many (slot, oid) pairs, grouped so each distinct page is
  // read and written once.  `entries` must be sorted by slot.
  Status SetMany(const std::vector<std::pair<uint64_t, Oid>>& entries);

  // All live (unflagged) entries as (slot, oid), in slot order — one read
  // per used page.  This is the compaction source stream.
  StatusOr<std::vector<std::pair<uint64_t, Oid>>> LiveEntries() const;

  // Tombstoned slots available for reuse (most recently freed last; callers
  // take from the back and commit with SetAt/SetMany).
  const std::vector<uint64_t>& free_slots() const { return free_slots_; }

  // Total entries appended (including delete-flagged ones).
  uint64_t num_entries() const { return num_entries_; }

  // Entries not delete-flagged.
  uint64_t num_live() const { return num_live_; }

  // Pages in the file (== ⌈num_entries/O_d⌉), the model's SC_OID.
  PageId num_pages() const { return file_->num_pages(); }

  // Access counters of the backing file (for query tracing).
  const IoStats& stats() const { return file_->stats(); }

 private:
  static constexpr uint64_t kDeleteFlag = uint64_t{1} << 63;

  // Pages holding entries < num_entries_ (extra allocated pages from a
  // crashed append are invisible).
  PageId UsedPages() const {
    return static_cast<PageId>((num_entries_ + kOidsPerPage - 1) /
                               kOidsPerPage);
  }
  void DropFreeSlot(uint64_t slot);

  PageFile* file_;
  uint64_t num_entries_ = 0;
  uint64_t num_live_ = 0;
  std::vector<uint64_t> free_slots_;
  // In-memory image of the tail page being filled.
  Page tail_;
  PageId tail_page_ = kInvalidPage;
};

}  // namespace sigsetdb

#endif  // SIGSET_OBJ_OID_FILE_H_
