// OidFile: the OID file shared by both signature-file organizations.
//
// The paper's signature files store, for the i-th signature, the OID of the
// corresponding object as the i-th entry of a sequential OID file
// (O_d = ⌊P/oid⌋ = 512 entries per page).  Deletion sets a delete flag in
// the OID entry (found by sequential scan, expected SC_OID/2 page accesses),
// leaving a dangling signature that is filtered at lookup time.

#ifndef SIGSET_OBJ_OID_FILE_H_
#define SIGSET_OBJ_OID_FILE_H_

#include <cstdint>
#include <vector>

#include "obj/oid.h"
#include "storage/page_file.h"

namespace sigsetdb {

// Number of OID entries per page (paper Table 2: O_d = 512).
inline constexpr uint32_t kOidsPerPage = kPageSize / kOidBytes;

// Sequential file of 8-byte OID entries addressed by slot number.
class OidFile {
 public:
  // Does not take ownership of `file`.  The appender buffers its tail page in
  // memory, so Append costs exactly one page write — the model's UC_I charge
  // of one access for the OID file.  `file` is assumed empty; to reopen a
  // populated file call Recover() with the persisted entry count.
  explicit OidFile(PageFile* file);

  // Restores appender state over a populated file: validates the page count
  // against `num_entries` and reloads the tail-page image (one page read;
  // callers treat recovery I/O as setup).
  Status Recover(uint64_t num_entries);

  // Appends `oid`, returning its slot number (== signature position).
  StatusOr<uint64_t> Append(Oid oid);

  // Reads the entry at `slot` (one page read).  Returns an invalid Oid if
  // the entry is delete-flagged.
  StatusOr<Oid> Get(uint64_t slot) const;

  // Resolves many slots to OIDs with one page read per *distinct page*
  // (`slots` must be sorted ascending) — this is the behaviour behind the
  // paper's look-up cost LC_OID = SC_OID · min(Fd(O_d−α)+α, 1).
  // Delete-flagged entries are skipped.
  StatusOr<std::vector<Oid>> GetMany(const std::vector<uint64_t>& slots) const;

  // Scans from the start for the entry holding `oid` and sets its delete
  // flag.  Costs (slot/O_d + 1) page reads + 1 write; averaged over uniform
  // victims this is the model's UC_D = SC_OID/2.
  Status MarkDeleted(Oid oid);

  // Total entries appended (including delete-flagged ones).
  uint64_t num_entries() const { return num_entries_; }

  // Pages in the file (== ⌈num_entries/O_d⌉), the model's SC_OID.
  PageId num_pages() const { return file_->num_pages(); }

  // Access counters of the backing file (for query tracing).
  const IoStats& stats() const { return file_->stats(); }

 private:
  static constexpr uint64_t kDeleteFlag = uint64_t{1} << 63;

  PageFile* file_;
  uint64_t num_entries_ = 0;
  // In-memory image of the tail page being filled.
  Page tail_;
  PageId tail_page_ = kInvalidPage;
};

}  // namespace sigsetdb

#endif  // SIGSET_OBJ_OID_FILE_H_
