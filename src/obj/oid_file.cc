#include "obj/oid_file.h"

#include <algorithm>
#include <unordered_map>

#include "util/failpoint.h"

namespace sigsetdb {

OidFile::OidFile(PageFile* file) : file_(file) {}

Status OidFile::Recover(uint64_t num_entries) {
  uint64_t expected_pages =
      (num_entries + kOidsPerPage - 1) / kOidsPerPage;
  // Pages past the recovered count are tolerated (a crashed append can leave
  // an allocated page behind); every accessor is capped at num_entries_, so
  // they stay invisible.  Fewer pages than the count needs is corruption.
  if (file_->num_pages() < expected_pages) {
    return Status::Corruption(
        "oid file has fewer pages than recovered entry count needs");
  }
  num_entries_ = num_entries;
  num_live_ = 0;
  free_slots_.clear();
  // Rebuild the free list from the persisted delete flags: the tombstone bit
  // IS the durable free-slot record, so a rescan is all recovery needs.
  Page page;
  const PageId used_pages = UsedPages();
  for (PageId p = 0; p < used_pages; ++p) {
    SIGSET_RETURN_IF_ERROR(file_->Read(p, &page));
    uint64_t entries_on_page = std::min<uint64_t>(
        kOidsPerPage, num_entries_ - uint64_t{p} * kOidsPerPage);
    for (uint64_t i = 0; i < entries_on_page; ++i) {
      uint64_t slot = uint64_t{p} * kOidsPerPage + i;
      if (page.ReadAt<uint64_t>(i * kOidBytes) & kDeleteFlag) {
        free_slots_.push_back(slot);
      } else {
        ++num_live_;
      }
    }
    if (num_entries_ % kOidsPerPage != 0 && p + 1 == used_pages) {
      // The tail page is the one holding entry num_entries-1: keep the
      // appender image from it.
      tail_page_ = p;
      tail_ = page;
    }
  }
  return Status::OK();
}

StatusOr<uint64_t> OidFile::Append(Oid oid) {
  SIGSET_FAILPOINT("oid_file.append");
  uint64_t slot = num_entries_;
  uint32_t offset_in_page = static_cast<uint32_t>(slot % kOidsPerPage);
  if (offset_in_page == 0) {
    SIGSET_ASSIGN_OR_RETURN(tail_page_, file_->Allocate());
    tail_.Zero();
  }
  tail_.WriteAt<uint64_t>(offset_in_page * kOidBytes, oid.value());
  SIGSET_RETURN_IF_ERROR(file_->Write(tail_page_, tail_));
  ++num_entries_;
  ++num_live_;
  return slot;
}

StatusOr<uint64_t> OidFile::AppendMany(const std::vector<Oid>& oids) {
  const uint64_t first_slot = num_entries_;
  size_t i = 0;
  while (i < oids.size()) {
    SIGSET_FAILPOINT("oid_file.append");
    uint32_t offset_in_page =
        static_cast<uint32_t>(num_entries_ % kOidsPerPage);
    if (offset_in_page == 0) {
      SIGSET_ASSIGN_OR_RETURN(tail_page_, file_->Allocate());
      tail_.Zero();
    }
    // Fill the tail page as far as it goes, then write it once.
    while (i < oids.size() && offset_in_page < kOidsPerPage) {
      tail_.WriteAt<uint64_t>(offset_in_page * kOidBytes, oids[i].value());
      ++offset_in_page;
      ++i;
    }
    SIGSET_RETURN_IF_ERROR(file_->Write(tail_page_, tail_));
    num_entries_ = uint64_t{tail_page_} * kOidsPerPage + offset_in_page;
  }
  num_live_ += oids.size();
  return first_slot;
}

StatusOr<Oid> OidFile::Get(uint64_t slot) const {
  if (slot >= num_entries_) {
    return Status::OutOfRange("oid slot out of range");
  }
  Page page;
  SIGSET_RETURN_IF_ERROR(
      file_->Read(static_cast<PageId>(slot / kOidsPerPage), &page));
  uint64_t raw =
      page.ReadAt<uint64_t>((slot % kOidsPerPage) * kOidBytes);
  if (raw & kDeleteFlag) return Oid();
  return Oid(raw);
}

StatusOr<std::vector<Oid>> OidFile::GetMany(
    const std::vector<uint64_t>& slots) const {
  std::vector<Oid> out;
  out.reserve(slots.size());
  Page page;
  PageId loaded = kInvalidPage;
  for (uint64_t slot : slots) {
    if (slot >= num_entries_) {
      return Status::OutOfRange("oid slot out of range");
    }
    PageId page_no = static_cast<PageId>(slot / kOidsPerPage);
    if (page_no != loaded) {
      SIGSET_RETURN_IF_ERROR(file_->Read(page_no, &page));
      loaded = page_no;
    }
    uint64_t raw = page.ReadAt<uint64_t>((slot % kOidsPerPage) * kOidBytes);
    if ((raw & kDeleteFlag) == 0) out.push_back(Oid(raw));
  }
  return out;
}

StatusOr<uint64_t> OidFile::MarkDeleted(Oid oid) {
  SIGSET_FAILPOINT("oid_file.mark_deleted");
  Page page;
  // Scan only pages holding live entries; the file may have extra allocated
  // pages after crash recovery.
  const PageId used_pages = UsedPages();
  for (PageId p = 0; p < used_pages; ++p) {
    SIGSET_RETURN_IF_ERROR(file_->Read(p, &page));
    uint64_t entries_on_page =
        std::min<uint64_t>(kOidsPerPage,
                           num_entries_ - uint64_t{p} * kOidsPerPage);
    for (uint64_t i = 0; i < entries_on_page; ++i) {
      uint64_t raw = page.ReadAt<uint64_t>(i * kOidBytes);
      if (raw == oid.value()) {
        page.WriteAt<uint64_t>(i * kOidBytes, raw | kDeleteFlag);
        SIGSET_RETURN_IF_ERROR(file_->Write(p, page));
        // Keep the appender's tail image coherent if we touched it.
        if (p == tail_page_) tail_ = page;
        uint64_t slot = uint64_t{p} * kOidsPerPage + i;
        free_slots_.push_back(slot);
        --num_live_;
        return slot;
      }
    }
  }
  return Status::NotFound("oid not present: " + oid.ToString());
}

StatusOr<std::vector<uint64_t>> OidFile::MarkDeletedMany(
    const std::vector<Oid>& oids) {
  // Locate everything first, buffering modified page images; nothing is
  // written until every victim is found, so a missing (or repeated) oid
  // fails cleanly with zero I/O side effects.
  std::unordered_map<uint64_t, size_t> wanted;  // oid value -> input index
  wanted.reserve(oids.size());
  for (size_t i = 0; i < oids.size(); ++i) {
    if (!wanted.emplace(oids[i].value(), i).second) {
      return Status::InvalidArgument("duplicate oid in batch delete: " +
                                     oids[i].ToString());
    }
  }
  std::vector<uint64_t> slots(oids.size());
  std::vector<std::pair<PageId, Page>> dirty;
  size_t found = 0;
  Page page;
  const PageId used_pages = UsedPages();
  for (PageId p = 0; p < used_pages && found < oids.size(); ++p) {
    SIGSET_RETURN_IF_ERROR(file_->Read(p, &page));
    uint64_t entries_on_page = std::min<uint64_t>(
        kOidsPerPage, num_entries_ - uint64_t{p} * kOidsPerPage);
    bool page_dirty = false;
    for (uint64_t i = 0; i < entries_on_page; ++i) {
      uint64_t raw = page.ReadAt<uint64_t>(i * kOidBytes);
      auto it = wanted.find(raw);
      if (it == wanted.end()) continue;
      page.WriteAt<uint64_t>(i * kOidBytes, raw | kDeleteFlag);
      slots[it->second] = uint64_t{p} * kOidsPerPage + i;
      page_dirty = true;
      ++found;
    }
    if (page_dirty) dirty.emplace_back(p, page);
  }
  if (found < oids.size()) {
    // A flagged entry no longer equals the oid value, so double deletes
    // land here too.
    return Status::NotFound("oid not present in batch delete");
  }
  for (auto& [p, image] : dirty) {
    SIGSET_FAILPOINT("oid_file.mark_deleted");
    SIGSET_RETURN_IF_ERROR(file_->Write(p, image));
    if (p == tail_page_) tail_ = image;
  }
  for (uint64_t slot : slots) free_slots_.push_back(slot);
  num_live_ -= oids.size();
  return slots;
}

Status OidFile::SetAt(uint64_t slot, Oid oid) {
  if (slot >= num_entries_) {
    return Status::OutOfRange("oid slot out of range");
  }
  SIGSET_FAILPOINT("oid_file.append");
  PageId page_no = static_cast<PageId>(slot / kOidsPerPage);
  Page page;
  SIGSET_RETURN_IF_ERROR(file_->Read(page_no, &page));
  uint64_t offset = (slot % kOidsPerPage) * kOidBytes;
  if ((page.ReadAt<uint64_t>(offset) & kDeleteFlag) == 0) {
    return Status::Internal("SetAt target slot is not tombstoned");
  }
  page.WriteAt<uint64_t>(offset, oid.value());
  SIGSET_RETURN_IF_ERROR(file_->Write(page_no, page));
  if (page_no == tail_page_) tail_ = page;
  DropFreeSlot(slot);
  ++num_live_;
  return Status::OK();
}

Status OidFile::SetMany(
    const std::vector<std::pair<uint64_t, Oid>>& entries) {
  Page page;
  PageId loaded = kInvalidPage;
  for (size_t i = 0; i < entries.size(); ++i) {
    auto [slot, oid] = entries[i];
    if (slot >= num_entries_) {
      return Status::OutOfRange("oid slot out of range");
    }
    if (i > 0 && slot <= entries[i - 1].first) {
      return Status::InvalidArgument("SetMany entries must be slot-sorted");
    }
    PageId page_no = static_cast<PageId>(slot / kOidsPerPage);
    if (page_no != loaded) {
      if (loaded != kInvalidPage) {
        SIGSET_RETURN_IF_ERROR(file_->Write(loaded, page));
        if (loaded == tail_page_) tail_ = page;
      }
      SIGSET_FAILPOINT("oid_file.append");
      SIGSET_RETURN_IF_ERROR(file_->Read(page_no, &page));
      loaded = page_no;
    }
    uint64_t offset = (slot % kOidsPerPage) * kOidBytes;
    if ((page.ReadAt<uint64_t>(offset) & kDeleteFlag) == 0) {
      return Status::Internal("SetMany target slot is not tombstoned");
    }
    page.WriteAt<uint64_t>(offset, oid.value());
    DropFreeSlot(slot);
    ++num_live_;
  }
  if (loaded != kInvalidPage) {
    SIGSET_RETURN_IF_ERROR(file_->Write(loaded, page));
    if (loaded == tail_page_) tail_ = page;
  }
  return Status::OK();
}

StatusOr<std::vector<std::pair<uint64_t, Oid>>> OidFile::LiveEntries() const {
  std::vector<std::pair<uint64_t, Oid>> out;
  out.reserve(num_live_);
  Page page;
  const PageId used_pages = UsedPages();
  for (PageId p = 0; p < used_pages; ++p) {
    SIGSET_RETURN_IF_ERROR(file_->Read(p, &page));
    uint64_t entries_on_page = std::min<uint64_t>(
        kOidsPerPage, num_entries_ - uint64_t{p} * kOidsPerPage);
    for (uint64_t i = 0; i < entries_on_page; ++i) {
      uint64_t raw = page.ReadAt<uint64_t>(i * kOidBytes);
      if ((raw & kDeleteFlag) == 0) {
        out.emplace_back(uint64_t{p} * kOidsPerPage + i, Oid(raw));
      }
    }
  }
  return out;
}

void OidFile::DropFreeSlot(uint64_t slot) {
  auto it = std::find(free_slots_.begin(), free_slots_.end(), slot);
  if (it != free_slots_.end()) free_slots_.erase(it);
}

}  // namespace sigsetdb
