#include "obj/oid_file.h"

#include "util/failpoint.h"

namespace sigsetdb {

OidFile::OidFile(PageFile* file) : file_(file) {}

Status OidFile::Recover(uint64_t num_entries) {
  uint64_t expected_pages =
      (num_entries + kOidsPerPage - 1) / kOidsPerPage;
  // Pages past the recovered count are tolerated (a crashed append can leave
  // an allocated page behind); every accessor is capped at num_entries_, so
  // they stay invisible.  Fewer pages than the count needs is corruption.
  if (file_->num_pages() < expected_pages) {
    return Status::Corruption(
        "oid file has fewer pages than recovered entry count needs");
  }
  num_entries_ = num_entries;
  if (num_entries_ > 0 && num_entries_ % kOidsPerPage != 0) {
    // The tail page is the one holding entry num_entries-1: reload the
    // appender image from it.
    tail_page_ = static_cast<PageId>(expected_pages - 1);
    SIGSET_RETURN_IF_ERROR(file_->Read(tail_page_, &tail_));
  }
  return Status::OK();
}

StatusOr<uint64_t> OidFile::Append(Oid oid) {
  SIGSET_FAILPOINT("oid_file.append");
  uint64_t slot = num_entries_;
  uint32_t offset_in_page = static_cast<uint32_t>(slot % kOidsPerPage);
  if (offset_in_page == 0) {
    SIGSET_ASSIGN_OR_RETURN(tail_page_, file_->Allocate());
    tail_.Zero();
  }
  tail_.WriteAt<uint64_t>(offset_in_page * kOidBytes, oid.value());
  SIGSET_RETURN_IF_ERROR(file_->Write(tail_page_, tail_));
  ++num_entries_;
  return slot;
}

StatusOr<Oid> OidFile::Get(uint64_t slot) const {
  if (slot >= num_entries_) {
    return Status::OutOfRange("oid slot out of range");
  }
  Page page;
  SIGSET_RETURN_IF_ERROR(
      file_->Read(static_cast<PageId>(slot / kOidsPerPage), &page));
  uint64_t raw =
      page.ReadAt<uint64_t>((slot % kOidsPerPage) * kOidBytes);
  if (raw & kDeleteFlag) return Oid();
  return Oid(raw);
}

StatusOr<std::vector<Oid>> OidFile::GetMany(
    const std::vector<uint64_t>& slots) const {
  std::vector<Oid> out;
  out.reserve(slots.size());
  Page page;
  PageId loaded = kInvalidPage;
  for (uint64_t slot : slots) {
    if (slot >= num_entries_) {
      return Status::OutOfRange("oid slot out of range");
    }
    PageId page_no = static_cast<PageId>(slot / kOidsPerPage);
    if (page_no != loaded) {
      SIGSET_RETURN_IF_ERROR(file_->Read(page_no, &page));
      loaded = page_no;
    }
    uint64_t raw = page.ReadAt<uint64_t>((slot % kOidsPerPage) * kOidBytes);
    if ((raw & kDeleteFlag) == 0) out.push_back(Oid(raw));
  }
  return out;
}

Status OidFile::MarkDeleted(Oid oid) {
  SIGSET_FAILPOINT("oid_file.mark_deleted");
  Page page;
  // Scan only pages holding live entries; the file may have extra allocated
  // pages after crash recovery.
  const PageId used_pages =
      static_cast<PageId>((num_entries_ + kOidsPerPage - 1) / kOidsPerPage);
  for (PageId p = 0; p < used_pages; ++p) {
    SIGSET_RETURN_IF_ERROR(file_->Read(p, &page));
    uint64_t entries_on_page =
        std::min<uint64_t>(kOidsPerPage,
                           num_entries_ - uint64_t{p} * kOidsPerPage);
    for (uint64_t i = 0; i < entries_on_page; ++i) {
      uint64_t raw = page.ReadAt<uint64_t>(i * kOidBytes);
      if (raw == oid.value()) {
        page.WriteAt<uint64_t>(i * kOidBytes, raw | kDeleteFlag);
        SIGSET_RETURN_IF_ERROR(file_->Write(p, page));
        // Keep the appender's tail image coherent if we touched it.
        if (p == tail_page_) tail_ = page;
        return Status::OK();
      }
    }
  }
  return Status::NotFound("oid not present: " + oid.ToString());
}

}  // namespace sigsetdb
