// MultiObjectStore: objects with several set-valued attributes.
//
// The paper's Student class carries two set attributes (`courses`,
// `hobbies`).  This store keeps the whole object in one slotted-page record
// — "no type of decomposition is applied" — so a fetch still costs one page
// access, while each attribute can be indexed by its own access facility.

#ifndef SIGSET_OBJ_MULTI_OBJECT_STORE_H_
#define SIGSET_OBJ_MULTI_OBJECT_STORE_H_

#include <functional>
#include <vector>

#include "obj/object.h"
#include "obj/oid.h"
#include "storage/page_file.h"

namespace sigsetdb {

// An object with `attrs.size()` set-valued attributes (all normalized).
struct MultiSetObject {
  Oid oid;
  std::vector<ElementSet> attrs;
};

// Heap file of multi-attribute objects with physical OIDs.
class MultiObjectStore {
 public:
  // Does not take ownership of `file`.  `num_attributes` is fixed per store
  // (one class per store, as in the paper's schema).
  MultiObjectStore(PageFile* file, uint16_t num_attributes);

  // Appends an object; `attr_values.size()` must equal num_attributes().
  StatusOr<Oid> Insert(const std::vector<ElementSet>& attr_values);

  // Fetches an object (one page read).  A non-null `io` receives the charge
  // instead of the file's counters (thread-local accounting for parallel
  // resolution workers).
  StatusOr<MultiSetObject> Get(Oid oid, IoStats* io = nullptr) const;

  // Removes the object.
  Status Delete(Oid oid);

  // --- Write-ahead-log support (see ObjectStore for semantics) -----------

  // The OID Insert(attr_values) would assign right now.
  StatusOr<Oid> PeekNextOid(const std::vector<ElementSet>& attr_values) const;

  // The OIDs a sequence of Inserts would assign.
  StatusOr<std::vector<Oid>> PeekOids(
      const std::vector<std::vector<ElementSet>>& objects) const;

  // Recovery redo: verify-or-write the object at exactly `oid`.
  Status ReplayEnsurePresent(Oid oid,
                             const std::vector<ElementSet>& attr_values);

  // Recovery redo: make `oid` not exist.
  Status ReplayEnsureAbsent(Oid oid);

  // Scans every live object in physical order.
  Status ForEachLive(
      const std::function<Status(Oid, const std::vector<ElementSet>&)>& fn)
      const;

  // Restores the live-object counter after reopening a populated file.
  void RecoverCount(uint64_t num_objects) { num_objects_ = num_objects; }

  uint16_t num_attributes() const { return num_attributes_; }
  uint64_t num_objects() const { return num_objects_; }
  PageId num_pages() const { return file_->num_pages(); }

  // The backing file's access counters (parallel workers merge their
  // thread-local stats here on join).
  IoStats& stats() const { return file_->stats(); }

 private:
  PageFile* file_;
  uint16_t num_attributes_;
  PageId tail_page_ = kInvalidPage;
  uint64_t num_objects_ = 0;
};

}  // namespace sigsetdb

#endif  // SIGSET_OBJ_MULTI_OBJECT_STORE_H_
