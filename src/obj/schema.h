// A lightweight OODB schema layer.
//
// The core experiments operate directly on dense element ids, but the
// paper's motivation is object-oriented: classes such as Student with
// set-valued attributes (`hobbies`: set of strings, `courses`: set of
// Course OIDs).  This layer gives the examples that vocabulary: it maps
// application-level set elements (strings or OIDs) to the 64-bit element
// ids indexed by the access facilities, and remembers class/attribute
// definitions for introspection.

#ifndef SIGSET_OBJ_SCHEMA_H_
#define SIGSET_OBJ_SCHEMA_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "obj/oid.h"
#include "util/hashing.h"
#include "util/status.h"

namespace sigsetdb {

// Kinds of attribute values supported by the example schema.
enum class AttributeKind {
  kString,   // primitive string
  kInt,      // primitive integer
  kRef,      // reference to another object (OID)
  kSetOfString,  // set of strings (e.g. Student.hobbies)
  kSetOfRef,     // set of OIDs (e.g. Student.courses)
};

// One attribute of a class.
struct AttributeDef {
  std::string name;
  AttributeKind kind;
  // For kRef/kSetOfRef: the referenced class name.
  std::string target_class;
};

// One class of the schema.
struct ClassDef {
  std::string name;
  std::vector<AttributeDef> attributes;

  // Returns the attribute definition or nullptr.
  const AttributeDef* FindAttribute(const std::string& attr_name) const {
    for (const auto& a : attributes) {
      if (a.name == attr_name) return &a;
    }
    return nullptr;
  }
};

// A set of class definitions.
class Schema {
 public:
  // Registers a class; fails on duplicate names.
  Status AddClass(ClassDef def);

  const ClassDef* FindClass(const std::string& name) const;

 private:
  std::unordered_map<std::string, ClassDef> classes_;
};

// ElementDictionary maps application-level set elements to the dense 64-bit
// element ids consumed by the access facilities and back.  String elements
// are interned; OID elements use the OID value directly (already 64-bit).
class ElementDictionary {
 public:
  // Returns a stable id for `text`, interning it on first use.
  uint64_t IdForString(const std::string& text);

  // Returns the id for `text` if interned, or status kNotFound.
  StatusOr<uint64_t> LookupString(const std::string& text) const;

  // Returns the interned string for `id`, or kNotFound.
  StatusOr<std::string> StringForId(uint64_t id) const;

  // OIDs are their own ids.
  static uint64_t IdForOid(Oid oid) { return oid.value(); }

  size_t size() const { return by_id_.size(); }

 private:
  std::unordered_map<std::string, uint64_t> by_string_;
  std::vector<std::string> by_id_;
};

}  // namespace sigsetdb

#endif  // SIGSET_OBJ_SCHEMA_H_
