// The stored object: an OID plus an indexed set attribute.
//
// In the paper's running example objects are Students whose `hobbies`
// attribute holds a set drawn from a V-element domain.  Set elements are
// modeled as 64-bit values: either dense domain ids produced by the workload
// generator, or hashes of strings / OIDs of referenced objects when the
// schema layer (schema.h) maps application values into the domain.

#ifndef SIGSET_OBJ_OBJECT_H_
#define SIGSET_OBJ_OBJECT_H_

#include <algorithm>
#include <cstdint>
#include <vector>

#include "obj/oid.h"

namespace sigsetdb {

// A set-attribute value: sorted unique 64-bit element ids.
using ElementSet = std::vector<uint64_t>;

// Normalizes `set` to sorted-unique form (the canonical representation used
// throughout the library).
inline void NormalizeSet(ElementSet* set) {
  std::sort(set->begin(), set->end());
  set->erase(std::unique(set->begin(), set->end()), set->end());
}

// Returns true iff `sub` ⊆ `super`.  Both must be normalized.
bool IsSubset(const ElementSet& sub, const ElementSet& super);

// Returns true iff the sets share at least one element.  Both normalized.
bool Overlaps(const ElementSet& a, const ElementSet& b);

// An object as stored in the object file.
struct StoredObject {
  Oid oid;            // assigned by ObjectStore::Insert
  ElementSet set_value;  // the indexed set attribute (normalized)

  // Serialized size: count (4 bytes) + 8 bytes per element.
  size_t SerializedBytes() const { return 4 + set_value.size() * 8; }
};

// Evaluates the paper's predicates against a stored object's set value.
// `query` must be normalized.
bool SatisfiesSuperset(const StoredObject& obj, const ElementSet& query);
bool SatisfiesSubset(const StoredObject& obj, const ElementSet& query);
bool SatisfiesProperSuperset(const StoredObject& obj,
                             const ElementSet& query);
bool SatisfiesProperSubset(const StoredObject& obj, const ElementSet& query);
bool SatisfiesEquals(const StoredObject& obj, const ElementSet& query);
bool SatisfiesOverlap(const StoredObject& obj, const ElementSet& query);

}  // namespace sigsetdb

#endif  // SIGSET_OBJ_OBJECT_H_
