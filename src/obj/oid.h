// Object identifiers.
//
// Following the paper ("Each object has a unique OID.  We can directly
// access any object by its OID"), OIDs are *physical*: the 8-byte value
// encodes the object's page number and slot within the object file, so a
// fetch costs exactly one page access — the paper's P_s = P_u = 1.

#ifndef SIGSET_OBJ_OID_H_
#define SIGSET_OBJ_OID_H_

#include <cstdint>
#include <functional>
#include <string>

#include "storage/page.h"

namespace sigsetdb {

// 8-byte object identifier (paper Table 2: oid = 8 bytes).
class Oid {
 public:
  constexpr Oid() : value_(kInvalidValue) {}
  constexpr explicit Oid(uint64_t value) : value_(value) {}

  // Builds a physical OID from (page, slot).
  static constexpr Oid FromLocation(PageId page, uint16_t slot) {
    return Oid((static_cast<uint64_t>(page) << 16) | slot);
  }

  constexpr bool valid() const { return value_ != kInvalidValue; }
  constexpr uint64_t value() const { return value_; }
  constexpr PageId page() const {
    return static_cast<PageId>(value_ >> 16);
  }
  constexpr uint16_t slot() const {
    return static_cast<uint16_t>(value_ & 0xffff);
  }

  std::string ToString() const {
    return "oid(" + std::to_string(page()) + "," + std::to_string(slot()) + ")";
  }

  friend constexpr bool operator==(Oid a, Oid b) {
    return a.value_ == b.value_;
  }
  friend constexpr bool operator!=(Oid a, Oid b) {
    return a.value_ != b.value_;
  }
  friend constexpr bool operator<(Oid a, Oid b) { return a.value_ < b.value_; }

 private:
  static constexpr uint64_t kInvalidValue = ~uint64_t{0};
  uint64_t value_;
};

// Size of a serialized OID in bytes (paper Table 2).
inline constexpr size_t kOidBytes = 8;

}  // namespace sigsetdb

template <>
struct std::hash<sigsetdb::Oid> {
  size_t operator()(sigsetdb::Oid oid) const noexcept {
    return std::hash<uint64_t>{}(oid.value());
  }
};

#endif  // SIGSET_OBJ_OID_H_
