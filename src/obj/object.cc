#include "obj/object.h"

namespace sigsetdb {

bool IsSubset(const ElementSet& sub, const ElementSet& super) {
  return std::includes(super.begin(), super.end(), sub.begin(), sub.end());
}

bool Overlaps(const ElementSet& a, const ElementSet& b) {
  auto ia = a.begin();
  auto ib = b.begin();
  while (ia != a.end() && ib != b.end()) {
    if (*ia == *ib) return true;
    if (*ia < *ib) {
      ++ia;
    } else {
      ++ib;
    }
  }
  return false;
}

bool SatisfiesSuperset(const StoredObject& obj, const ElementSet& query) {
  return IsSubset(query, obj.set_value);
}

bool SatisfiesSubset(const StoredObject& obj, const ElementSet& query) {
  return IsSubset(obj.set_value, query);
}

bool SatisfiesProperSuperset(const StoredObject& obj,
                             const ElementSet& query) {
  return obj.set_value.size() > query.size() &&
         IsSubset(query, obj.set_value);
}

bool SatisfiesProperSubset(const StoredObject& obj, const ElementSet& query) {
  return obj.set_value.size() < query.size() &&
         IsSubset(obj.set_value, query);
}

bool SatisfiesEquals(const StoredObject& obj, const ElementSet& query) {
  return obj.set_value == query;
}

bool SatisfiesOverlap(const StoredObject& obj, const ElementSet& query) {
  return Overlaps(obj.set_value, query);
}

}  // namespace sigsetdb
