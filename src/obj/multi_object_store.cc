#include "obj/multi_object_store.h"

#include <cstring>

#include "storage/slotted_page.h"

namespace sigsetdb {

namespace {

// Record layout: [num_attrs:u16] then per attribute [count:u32][elems:u64*].
std::vector<uint8_t> Serialize(const std::vector<ElementSet>& attrs) {
  size_t bytes = 2;
  for (const ElementSet& set : attrs) bytes += 4 + set.size() * 8;
  std::vector<uint8_t> buf(bytes);
  uint16_t n = static_cast<uint16_t>(attrs.size());
  std::memcpy(buf.data(), &n, 2);
  size_t off = 2;
  for (const ElementSet& set : attrs) {
    uint32_t count = static_cast<uint32_t>(set.size());
    std::memcpy(buf.data() + off, &count, 4);
    std::memcpy(buf.data() + off + 4, set.data(), set.size() * 8);
    off += 4 + set.size() * 8;
  }
  return buf;
}

Status Deserialize(const uint8_t* data, uint16_t len,
                   std::vector<ElementSet>* out) {
  if (len < 2) return Status::Corruption("object record too short");
  uint16_t n;
  std::memcpy(&n, data, 2);
  out->clear();
  out->reserve(n);
  size_t off = 2;
  for (uint16_t i = 0; i < n; ++i) {
    if (off + 4 > len) return Status::Corruption("truncated attribute count");
    uint32_t count;
    std::memcpy(&count, data + off, 4);
    off += 4;
    if (off + static_cast<size_t>(count) * 8 > len) {
      return Status::Corruption("truncated attribute elements");
    }
    ElementSet set(count);
    std::memcpy(set.data(), data + off, static_cast<size_t>(count) * 8);
    off += static_cast<size_t>(count) * 8;
    out->push_back(std::move(set));
  }
  if (off != len) return Status::Corruption("trailing bytes in record");
  return Status::OK();
}

}  // namespace

MultiObjectStore::MultiObjectStore(PageFile* file, uint16_t num_attributes)
    : file_(file), num_attributes_(num_attributes) {
  if (file_->num_pages() > 0) tail_page_ = file_->num_pages() - 1;
}

StatusOr<Oid> MultiObjectStore::Insert(
    const std::vector<ElementSet>& attr_values) {
  if (attr_values.size() != num_attributes_) {
    return Status::InvalidArgument("attribute count mismatch");
  }
  std::vector<uint8_t> record = Serialize(attr_values);
  if (record.size() > kPageSize - 8) {
    return Status::InvalidArgument("object too large for one page");
  }
  Page page;
  if (tail_page_ != kInvalidPage) {
    SIGSET_RETURN_IF_ERROR(file_->Read(tail_page_, &page));
    SlottedPage sp(&page);
    if (auto slot = sp.Insert(record.data(),
                              static_cast<uint16_t>(record.size()))) {
      SIGSET_RETURN_IF_ERROR(file_->Write(tail_page_, page));
      ++num_objects_;
      return Oid::FromLocation(tail_page_, *slot);
    }
  }
  SIGSET_ASSIGN_OR_RETURN(PageId new_page, file_->Allocate());
  SlottedPage::Init(&page);
  SlottedPage sp(&page);
  auto slot = sp.Insert(record.data(), static_cast<uint16_t>(record.size()));
  if (!slot.has_value()) {
    return Status::Internal("record does not fit in an empty page");
  }
  SIGSET_RETURN_IF_ERROR(file_->Write(new_page, page));
  tail_page_ = new_page;
  ++num_objects_;
  return Oid::FromLocation(new_page, *slot);
}

StatusOr<MultiSetObject> MultiObjectStore::Get(Oid oid, IoStats* io) const {
  if (!oid.valid()) return Status::InvalidArgument("invalid oid");
  Page page;
  SIGSET_RETURN_IF_ERROR(
      file_->Read(oid.page(), &page, io != nullptr ? io : &file_->stats()));
  SlottedPage sp(&page);
  uint16_t len = 0;
  const uint8_t* rec = sp.Get(oid.slot(), &len);
  if (rec == nullptr) {
    return Status::NotFound("no object at " + oid.ToString());
  }
  MultiSetObject obj;
  obj.oid = oid;
  SIGSET_RETURN_IF_ERROR(Deserialize(rec, len, &obj.attrs));
  if (obj.attrs.size() != num_attributes_) {
    return Status::Corruption("stored attribute count mismatch");
  }
  return obj;
}

Status MultiObjectStore::Delete(Oid oid) {
  if (!oid.valid()) return Status::InvalidArgument("invalid oid");
  Page page;
  SIGSET_RETURN_IF_ERROR(file_->Read(oid.page(), &page));
  SlottedPage sp(&page);
  uint16_t len = 0;
  if (sp.Get(oid.slot(), &len) == nullptr) {
    return Status::NotFound("no object at " + oid.ToString());
  }
  sp.Delete(oid.slot());
  SIGSET_RETURN_IF_ERROR(file_->Write(oid.page(), page));
  if (num_objects_ > 0) --num_objects_;
  return Status::OK();
}

}  // namespace sigsetdb
