#include "obj/multi_object_store.h"

#include <cstring>

#include "storage/slotted_page.h"

namespace sigsetdb {

namespace {

// Record layout: [num_attrs:u16] then per attribute [count:u32][elems:u64*].
std::vector<uint8_t> Serialize(const std::vector<ElementSet>& attrs) {
  size_t bytes = 2;
  for (const ElementSet& set : attrs) bytes += 4 + set.size() * 8;
  std::vector<uint8_t> buf(bytes);
  uint16_t n = static_cast<uint16_t>(attrs.size());
  std::memcpy(buf.data(), &n, 2);
  size_t off = 2;
  for (const ElementSet& set : attrs) {
    uint32_t count = static_cast<uint32_t>(set.size());
    std::memcpy(buf.data() + off, &count, 4);
    std::memcpy(buf.data() + off + 4, set.data(), set.size() * 8);
    off += 4 + set.size() * 8;
  }
  return buf;
}

Status Deserialize(const uint8_t* data, uint16_t len,
                   std::vector<ElementSet>* out) {
  if (len < 2) return Status::Corruption("object record too short");
  uint16_t n;
  std::memcpy(&n, data, 2);
  out->clear();
  out->reserve(n);
  size_t off = 2;
  for (uint16_t i = 0; i < n; ++i) {
    if (off + 4 > len) return Status::Corruption("truncated attribute count");
    uint32_t count;
    std::memcpy(&count, data + off, 4);
    off += 4;
    if (off + static_cast<size_t>(count) * 8 > len) {
      return Status::Corruption("truncated attribute elements");
    }
    ElementSet set(count);
    std::memcpy(set.data(), data + off, static_cast<size_t>(count) * 8);
    off += static_cast<size_t>(count) * 8;
    out->push_back(std::move(set));
  }
  if (off != len) return Status::Corruption("trailing bytes in record");
  return Status::OK();
}

}  // namespace

MultiObjectStore::MultiObjectStore(PageFile* file, uint16_t num_attributes)
    : file_(file), num_attributes_(num_attributes) {
  if (file_->num_pages() > 0) tail_page_ = file_->num_pages() - 1;
}

StatusOr<Oid> MultiObjectStore::Insert(
    const std::vector<ElementSet>& attr_values) {
  if (attr_values.size() != num_attributes_) {
    return Status::InvalidArgument("attribute count mismatch");
  }
  std::vector<uint8_t> record = Serialize(attr_values);
  if (record.size() > kPageSize - 8) {
    return Status::InvalidArgument("object too large for one page");
  }
  Page page;
  if (tail_page_ != kInvalidPage) {
    SIGSET_RETURN_IF_ERROR(file_->Read(tail_page_, &page));
    SlottedPage sp(&page);
    if (auto slot = sp.Insert(record.data(),
                              static_cast<uint16_t>(record.size()))) {
      SIGSET_RETURN_IF_ERROR(file_->Write(tail_page_, page));
      ++num_objects_;
      return Oid::FromLocation(tail_page_, *slot);
    }
  }
  SIGSET_ASSIGN_OR_RETURN(PageId new_page, file_->Allocate());
  SlottedPage::Init(&page);
  SlottedPage sp(&page);
  auto slot = sp.Insert(record.data(), static_cast<uint16_t>(record.size()));
  if (!slot.has_value()) {
    return Status::Internal("record does not fit in an empty page");
  }
  SIGSET_RETURN_IF_ERROR(file_->Write(new_page, page));
  tail_page_ = new_page;
  ++num_objects_;
  return Oid::FromLocation(new_page, *slot);
}

StatusOr<Oid> MultiObjectStore::PeekNextOid(
    const std::vector<ElementSet>& attr_values) const {
  if (attr_values.size() != num_attributes_) {
    return Status::InvalidArgument("attribute count mismatch");
  }
  std::vector<uint8_t> record = Serialize(attr_values);
  if (record.size() > kPageSize - 8) {
    return Status::InvalidArgument("object too large for one page");
  }
  Page scratch;
  if (tail_page_ != kInvalidPage) {
    SIGSET_RETURN_IF_ERROR(file_->Read(tail_page_, &scratch));
    SlottedPage sp(&scratch);
    if (auto slot = sp.Insert(record.data(),
                              static_cast<uint16_t>(record.size()))) {
      return Oid::FromLocation(tail_page_, *slot);
    }
  }
  SlottedPage::Init(&scratch);
  SlottedPage sp(&scratch);
  auto slot = sp.Insert(record.data(), static_cast<uint16_t>(record.size()));
  if (!slot.has_value()) {
    return Status::Internal("record does not fit in an empty page");
  }
  return Oid::FromLocation(file_->num_pages(), *slot);
}

StatusOr<std::vector<Oid>> MultiObjectStore::PeekOids(
    const std::vector<std::vector<ElementSet>>& objects) const {
  std::vector<Oid> oids;
  oids.reserve(objects.size());
  Page scratch;
  PageId cur_page = kInvalidPage;
  PageId pages_added = 0;
  if (tail_page_ != kInvalidPage) {
    SIGSET_RETURN_IF_ERROR(file_->Read(tail_page_, &scratch));
    cur_page = tail_page_;
  }
  for (const std::vector<ElementSet>& attrs : objects) {
    if (attrs.size() != num_attributes_) {
      return Status::InvalidArgument("attribute count mismatch");
    }
    std::vector<uint8_t> record = Serialize(attrs);
    if (record.size() > kPageSize - 8) {
      return Status::InvalidArgument("object too large for one page");
    }
    if (cur_page != kInvalidPage) {
      SlottedPage sp(&scratch);
      if (auto slot = sp.Insert(record.data(),
                                static_cast<uint16_t>(record.size()))) {
        oids.push_back(Oid::FromLocation(cur_page, *slot));
        continue;
      }
    }
    cur_page = file_->num_pages() + pages_added;
    ++pages_added;
    SlottedPage::Init(&scratch);
    SlottedPage sp(&scratch);
    auto slot = sp.Insert(record.data(), static_cast<uint16_t>(record.size()));
    if (!slot.has_value()) {
      return Status::Internal("record does not fit in an empty page");
    }
    oids.push_back(Oid::FromLocation(cur_page, *slot));
  }
  return oids;
}

Status MultiObjectStore::ReplayEnsurePresent(
    Oid oid, const std::vector<ElementSet>& attr_values) {
  if (!oid.valid()) return Status::InvalidArgument("invalid oid");
  if (attr_values.size() != num_attributes_) {
    return Status::InvalidArgument("attribute count mismatch");
  }
  std::vector<uint8_t> record = Serialize(attr_values);
  if (record.size() > kPageSize - 8) {
    return Status::InvalidArgument("object too large for one page");
  }
  const uint16_t len = static_cast<uint16_t>(record.size());
  while (file_->num_pages() <= oid.page()) {
    SIGSET_RETURN_IF_ERROR(file_->Allocate().status());
  }
  Page page;
  SIGSET_RETURN_IF_ERROR(file_->Read(oid.page(), &page));
  if (page.ReadAt<uint16_t>(0) == 0 &&
      page.ReadAt<uint16_t>(2) != static_cast<uint16_t>(kPageSize)) {
    SlottedPage::Init(&page);
  }
  SlottedPage sp(&page);
  if (oid.slot() < sp.num_slots()) {
    uint16_t cur_len = 0;
    const uint8_t* cur = sp.Get(oid.slot(), &cur_len);
    if (cur != nullptr) {
      if (cur_len != len || std::memcmp(cur, record.data(), len) != 0) {
        return Status::Corruption("replay mismatch at " + oid.ToString());
      }
      return Status::OK();
    }
    if (!sp.Resurrect(oid.slot(), record.data(), len)) {
      return Status::Corruption("cannot resurrect " + oid.ToString());
    }
  } else if (oid.slot() == sp.num_slots()) {
    auto slot = sp.Insert(record.data(), len);
    if (!slot.has_value() || *slot != oid.slot()) {
      return Status::Corruption("replay append failed at " + oid.ToString());
    }
  } else {
    return Status::Corruption("replay slot gap at " + oid.ToString());
  }
  SIGSET_RETURN_IF_ERROR(file_->Write(oid.page(), page));
  tail_page_ = file_->num_pages() - 1;
  return Status::OK();
}

Status MultiObjectStore::ReplayEnsureAbsent(Oid oid) {
  if (!oid.valid()) return Status::InvalidArgument("invalid oid");
  if (oid.page() >= file_->num_pages()) return Status::OK();
  Page page;
  SIGSET_RETURN_IF_ERROR(file_->Read(oid.page(), &page));
  SlottedPage sp(&page);
  uint16_t len = 0;
  if (sp.Get(oid.slot(), &len) == nullptr) return Status::OK();
  sp.Delete(oid.slot());
  return file_->Write(oid.page(), page);
}

Status MultiObjectStore::ForEachLive(
    const std::function<Status(Oid, const std::vector<ElementSet>&)>& fn)
    const {
  const PageId num_pages = file_->num_pages();
  for (PageId p = 0; p < num_pages; ++p) {
    Page page;
    SIGSET_RETURN_IF_ERROR(file_->Read(p, &page));
    SlottedPage sp(&page);
    const uint16_t slots = sp.num_slots();
    for (uint16_t s = 0; s < slots; ++s) {
      uint16_t len = 0;
      const uint8_t* rec = sp.Get(s, &len);
      if (rec == nullptr) continue;
      std::vector<ElementSet> attrs;
      SIGSET_RETURN_IF_ERROR(Deserialize(rec, len, &attrs));
      SIGSET_RETURN_IF_ERROR(fn(Oid::FromLocation(p, s), attrs));
    }
  }
  return Status::OK();
}

StatusOr<MultiSetObject> MultiObjectStore::Get(Oid oid, IoStats* io) const {
  if (!oid.valid()) return Status::InvalidArgument("invalid oid");
  Page page;
  SIGSET_RETURN_IF_ERROR(
      file_->Read(oid.page(), &page, io != nullptr ? io : &file_->stats()));
  SlottedPage sp(&page);
  uint16_t len = 0;
  const uint8_t* rec = sp.Get(oid.slot(), &len);
  if (rec == nullptr) {
    return Status::NotFound("no object at " + oid.ToString());
  }
  MultiSetObject obj;
  obj.oid = oid;
  SIGSET_RETURN_IF_ERROR(Deserialize(rec, len, &obj.attrs));
  if (obj.attrs.size() != num_attributes_) {
    return Status::Corruption("stored attribute count mismatch");
  }
  return obj;
}

Status MultiObjectStore::Delete(Oid oid) {
  if (!oid.valid()) return Status::InvalidArgument("invalid oid");
  Page page;
  SIGSET_RETURN_IF_ERROR(file_->Read(oid.page(), &page));
  SlottedPage sp(&page);
  uint16_t len = 0;
  if (sp.Get(oid.slot(), &len) == nullptr) {
    return Status::NotFound("no object at " + oid.ToString());
  }
  sp.Delete(oid.slot());
  SIGSET_RETURN_IF_ERROR(file_->Write(oid.page(), page));
  if (num_objects_ > 0) --num_objects_;
  return Status::OK();
}

}  // namespace sigsetdb
