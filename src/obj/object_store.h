// ObjectStore: the object file.
//
// Objects are stored in slotted pages ("objects are straightforwardly stored
// in the object file; no type of decomposition is applied" — paper §4).
// OIDs are physical (page, slot), so Get costs exactly one page read,
// realizing the model's P_s = P_u = 1 page access per object retrieval.

#ifndef SIGSET_OBJ_OBJECT_STORE_H_
#define SIGSET_OBJ_OBJECT_STORE_H_

#include <functional>
#include <vector>

#include "obj/object.h"
#include "obj/oid.h"
#include "storage/page_file.h"

namespace sigsetdb {

// A heap file of objects with physical OIDs.
class ObjectStore {
 public:
  // Does not take ownership of `file`; `file` must outlive the store.
  // `file` must be empty or a file previously populated by an ObjectStore.
  explicit ObjectStore(PageFile* file);

  // Appends an object, assigning and returning its OID.
  StatusOr<Oid> Insert(const ElementSet& set_value);

  // Fetches the object with `oid` (one page read).  When `io` is non-null
  // the read is charged there instead of the file's counters — parallel
  // resolution workers pass a thread-local IoStats and merge via stats().
  StatusOr<StoredObject> Get(Oid oid, IoStats* io = nullptr) const;

  // Removes the object (one page read + one page write).  The OID becomes
  // dangling; access facilities are responsible for their own bookkeeping.
  Status Delete(Oid oid);

  // --- Write-ahead-log support -------------------------------------------
  // OIDs are physical, so the WAL must log the OID an insert WILL get
  // before touching the store (log-before-apply); these predict it by
  // simulating the append on a scratch copy of the tail page.

  // The OID Insert(set_value) would assign right now.
  StatusOr<Oid> PeekNextOid(const ElementSet& set_value) const;

  // The OIDs a sequence of Inserts would assign (simulates page fills and
  // fresh-page starts across the whole batch).
  StatusOr<std::vector<Oid>> PeekOids(
      const std::vector<ElementSet>& set_values) const;

  // Recovery redo: make the object at exactly `oid` exist with `set_value`.
  // Verifies if already present (idempotent), appends if the slot is next
  // in sequence, resurrects if tombstoned (aborted delete); kCorruption if
  // the slot holds a different record or is out of sequence.
  Status ReplayEnsurePresent(Oid oid, const ElementSet& set_value);

  // Recovery redo: make `oid` not exist (no-op when it already doesn't).
  Status ReplayEnsureAbsent(Oid oid);

  // Scans every live object in physical order.  Recovery rebuilds the
  // access facilities and counters from this — the store is the single
  // source of truth after replay.
  Status ForEachLive(
      const std::function<Status(Oid, const ElementSet&)>& fn) const;

  // Restores the live-object counter after reopening a populated file
  // (physical OIDs need no other recovery; the page data is the state).
  void RecoverCount(uint64_t num_objects) { num_objects_ = num_objects; }

  // Number of live objects inserted through this store instance.
  uint64_t num_objects() const { return num_objects_; }

  // The number of pages in the object file.
  PageId num_pages() const { return file_->num_pages(); }

  // The backing file's access counters (parallel workers merge their
  // thread-local stats here on join).
  IoStats& stats() const { return file_->stats(); }

 private:
  PageFile* file_;
  // Page currently being filled by Insert (kInvalidPage before first insert).
  PageId tail_page_ = kInvalidPage;
  uint64_t num_objects_ = 0;
};

}  // namespace sigsetdb

#endif  // SIGSET_OBJ_OBJECT_STORE_H_
