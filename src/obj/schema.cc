#include "obj/schema.h"

namespace sigsetdb {

Status Schema::AddClass(ClassDef def) {
  auto [it, inserted] = classes_.try_emplace(def.name, std::move(def));
  (void)it;
  if (!inserted) {
    return Status::AlreadyExists("class already defined: " + it->first);
  }
  return Status::OK();
}

const ClassDef* Schema::FindClass(const std::string& name) const {
  auto it = classes_.find(name);
  return it == classes_.end() ? nullptr : &it->second;
}

uint64_t ElementDictionary::IdForString(const std::string& text) {
  auto it = by_string_.find(text);
  if (it != by_string_.end()) return it->second;
  uint64_t id = by_id_.size();
  by_string_.emplace(text, id);
  by_id_.push_back(text);
  return id;
}

StatusOr<uint64_t> ElementDictionary::LookupString(
    const std::string& text) const {
  auto it = by_string_.find(text);
  if (it == by_string_.end()) {
    return Status::NotFound("element not interned: " + text);
  }
  return it->second;
}

StatusOr<std::string> ElementDictionary::StringForId(uint64_t id) const {
  if (id >= by_id_.size()) {
    return Status::NotFound("no interned string for id " + std::to_string(id));
  }
  return by_id_[id];
}

}  // namespace sigsetdb
