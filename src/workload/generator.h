// Synthetic workload generation (paper §4 assumptions, plus the §6
// "varying target-set cardinality" extension and a Zipf skew option).
//
// The paper's database: N objects, each with a set attribute of exactly Dt
// elements drawn uniformly from a V-element domain.  Queries are Dq-element
// sets, either drawn uniformly (the unsuccessful-search regime the model
// assumes) or biased to hit a stored object (for correctness tests).

#ifndef SIGSET_WORKLOAD_GENERATOR_H_
#define SIGSET_WORKLOAD_GENERATOR_H_

#include <cstdint>
#include <vector>

#include "obj/object.h"
#include "util/rng.h"
#include "util/status.h"

namespace sigsetdb {

// How set cardinalities are chosen.
struct CardinalitySpec {
  int64_t min;  // inclusive
  int64_t max;  // inclusive; == min for the paper's fixed-Dt setting

  static CardinalitySpec Fixed(int64_t dt) { return {dt, dt}; }
};

// Element-popularity skew.
enum class SkewKind {
  kUniform,  // the paper's assumption
  kZipf,     // extension: element e drawn ∝ 1/(e+1)^theta
};

// Configuration for one synthetic database.
struct WorkloadConfig {
  int64_t num_objects;       // N
  int64_t domain;            // V
  CardinalitySpec cardinality;  // Dt
  SkewKind skew = SkewKind::kUniform;
  double zipf_theta = 0.99;  // used when skew == kZipf
  uint64_t seed = 42;
};

// Draws element ids with the configured skew, without replacement per set.
class SetGenerator {
 public:
  explicit SetGenerator(const WorkloadConfig& config);

  // Next target-set value (normalized, cardinality per the spec).
  ElementSet NextSet();

  // A query set of exactly `dq` elements with the same skew.
  ElementSet QuerySet(int64_t dq);

  Rng& rng() { return rng_; }

 private:
  uint64_t DrawElement();

  WorkloadConfig config_;
  Rng rng_;
  // Precomputed Zipf CDF (lazily built for kZipf).
  std::vector<double> zipf_cdf_;
};

// Generates the full database: `n` set values.
std::vector<ElementSet> MakeDatabase(const WorkloadConfig& config);

// A superset-query guaranteed to succeed against `target`: a uniform
// dq-subset of it (requires dq <= |target|).
ElementSet MakeHittingSupersetQuery(const ElementSet& target, int64_t dq,
                                    Rng& rng);

// A subset-query guaranteed to succeed against `target`: `target` plus
// dq − |target| fresh domain elements (requires dq >= |target|).
ElementSet MakeHittingSubsetQuery(const ElementSet& target, int64_t domain,
                                  int64_t dq, Rng& rng);

}  // namespace sigsetdb

#endif  // SIGSET_WORKLOAD_GENERATOR_H_
