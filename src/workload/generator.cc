#include "workload/generator.h"

#include <algorithm>
#include <cmath>
#include <unordered_set>

namespace sigsetdb {

SetGenerator::SetGenerator(const WorkloadConfig& config)
    : config_(config), rng_(config.seed) {
  if (config_.skew == SkewKind::kZipf) {
    zipf_cdf_.resize(static_cast<size_t>(config_.domain));
    double acc = 0.0;
    for (int64_t i = 0; i < config_.domain; ++i) {
      acc += 1.0 / std::pow(static_cast<double>(i + 1), config_.zipf_theta);
      zipf_cdf_[static_cast<size_t>(i)] = acc;
    }
    for (double& c : zipf_cdf_) c /= acc;
  }
}

uint64_t SetGenerator::DrawElement() {
  if (config_.skew == SkewKind::kUniform) {
    return rng_.NextBelow(static_cast<uint64_t>(config_.domain));
  }
  double u = rng_.NextDouble();
  auto it = std::lower_bound(zipf_cdf_.begin(), zipf_cdf_.end(), u);
  return static_cast<uint64_t>(it - zipf_cdf_.begin());
}

ElementSet SetGenerator::NextSet() {
  int64_t span = config_.cardinality.max - config_.cardinality.min + 1;
  int64_t d = config_.cardinality.min +
              static_cast<int64_t>(rng_.NextBelow(
                  static_cast<uint64_t>(span)));
  return QuerySet(d);
}

ElementSet SetGenerator::QuerySet(int64_t dq) {
  if (config_.skew == SkewKind::kUniform) {
    // Exact uniform dq-subset.
    return rng_.SampleWithoutReplacement(static_cast<uint64_t>(config_.domain),
                                         static_cast<uint64_t>(dq));
  }
  // Skewed draw with rejection of duplicates.
  std::unordered_set<uint64_t> chosen;
  while (chosen.size() < static_cast<size_t>(dq)) {
    chosen.insert(DrawElement());
  }
  ElementSet set(chosen.begin(), chosen.end());
  NormalizeSet(&set);
  return set;
}

std::vector<ElementSet> MakeDatabase(const WorkloadConfig& config) {
  SetGenerator gen(config);
  std::vector<ElementSet> sets;
  sets.reserve(static_cast<size_t>(config.num_objects));
  for (int64_t i = 0; i < config.num_objects; ++i) {
    sets.push_back(gen.NextSet());
  }
  return sets;
}

ElementSet MakeHittingSupersetQuery(const ElementSet& target, int64_t dq,
                                    Rng& rng) {
  std::vector<uint64_t> idx = rng.SampleWithoutReplacement(
      target.size(), static_cast<uint64_t>(dq));
  ElementSet query;
  query.reserve(idx.size());
  for (uint64_t i : idx) query.push_back(target[i]);
  NormalizeSet(&query);
  return query;
}

ElementSet MakeHittingSubsetQuery(const ElementSet& target, int64_t domain,
                                  int64_t dq, Rng& rng) {
  ElementSet query = target;
  std::unordered_set<uint64_t> present(target.begin(), target.end());
  while (query.size() < static_cast<size_t>(dq)) {
    uint64_t e = rng.NextBelow(static_cast<uint64_t>(domain));
    if (present.insert(e).second) query.push_back(e);
  }
  NormalizeSet(&query);
  return query;
}

}  // namespace sigsetdb
