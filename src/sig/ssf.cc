#include "sig/ssf.h"

#include "sig/bitpack.h"
#include "util/failpoint.h"

namespace sigsetdb {

StatusOr<std::unique_ptr<SequentialSignatureFile>>
SequentialSignatureFile::Create(const SignatureConfig& config,
                                PageFile* signature_file, PageFile* oid_file) {
  SIGSET_RETURN_IF_ERROR(config.Validate());
  if (config.f > kPageBits) {
    return Status::InvalidArgument("F exceeds one page worth of bits");
  }
  return std::unique_ptr<SequentialSignatureFile>(
      new SequentialSignatureFile(config, signature_file, oid_file));
}

StatusOr<std::unique_ptr<SequentialSignatureFile>>
SequentialSignatureFile::CreateFromExisting(const SignatureConfig& config,
                                            PageFile* signature_file,
                                            PageFile* oid_file,
                                            uint64_t num_signatures) {
  SIGSET_ASSIGN_OR_RETURN(std::unique_ptr<SequentialSignatureFile> ssf,
                          Create(config, signature_file, oid_file));
  uint64_t expected_pages =
      (num_signatures + ssf->sigs_per_page_ - 1) / ssf->sigs_per_page_;
  // Pages beyond the checkpointed count are legitimate after a crash (an
  // insert allocated its page before the manifest was rewritten); scans are
  // capped at num_signatures_, so the trailing pages are invisible.  Too few
  // pages means checkpointed signatures are gone — that is corruption.
  if (signature_file->num_pages() < expected_pages) {
    return Status::Corruption(
        "signature file has fewer pages than the recovered count needs");
  }
  SIGSET_RETURN_IF_ERROR(ssf->oid_file_.Recover(num_signatures));
  ssf->num_signatures_ = num_signatures;
  if (num_signatures > 0 && num_signatures % ssf->sigs_per_page_ != 0) {
    // The tail is the page holding slot num_signatures-1, not necessarily the
    // file's last page (a crashed insert may have allocated one past it).
    ssf->tail_page_ = static_cast<PageId>(expected_pages - 1);
    SIGSET_RETURN_IF_ERROR(signature_file->Read(ssf->tail_page_, &ssf->tail_));
  }
  // Recovery I/O is setup, not an experiment cost.
  signature_file->stats().Reset();
  oid_file->stats().Reset();
  return ssf;
}

SequentialSignatureFile::SequentialSignatureFile(const SignatureConfig& config,
                                                 PageFile* signature_file,
                                                 PageFile* oid_file)
    : config_(config),
      sigs_per_page_(static_cast<uint32_t>(kPageBits / config.f)),
      signature_file_(signature_file),
      oid_file_(oid_file) {}

Status SequentialSignatureFile::Insert(Oid oid, const ElementSet& set_value) {
  SIGSET_FAILPOINT("ssf.insert");
  BitVector sig = MakeSetSignature(set_value, config_);
  uint32_t slot_in_page =
      static_cast<uint32_t>(num_signatures_ % sigs_per_page_);
  if (slot_in_page == 0) {
    SIGSET_ASSIGN_OR_RETURN(tail_page_, signature_file_->Allocate());
    tail_.Zero();
  }
  DepositBits(sig, tail_.data(), static_cast<size_t>(slot_in_page) * config_.f);
  SIGSET_RETURN_IF_ERROR(signature_file_->Write(tail_page_, tail_));
  SIGSET_ASSIGN_OR_RETURN(uint64_t oid_slot, oid_file_.Append(oid));
  if (oid_slot != num_signatures_) {
    return Status::Internal("signature/OID slot mismatch");
  }
  ++num_signatures_;
  return Status::OK();
}

Status SequentialSignatureFile::Remove(Oid oid,
                                       const ElementSet& /*set_value*/) {
  return oid_file_.MarkDeleted(oid);
}

StatusOr<std::vector<uint64_t>> SequentialSignatureFile::ScanMatchingSlots(
    const std::function<bool(const BitVector&)>& matches) const {
  std::vector<uint64_t> slots;
  Page page;
  BitVector sig(config_.f);
  uint64_t slot = 0;
  for (PageId p = 0; p < signature_file_->num_pages() && slot < num_signatures_;
       ++p) {
    SIGSET_RETURN_IF_ERROR(signature_file_->Read(p, &page));
    for (uint32_t i = 0; i < sigs_per_page_ && slot < num_signatures_;
         ++i, ++slot) {
      ExtractBits(page.data(), static_cast<size_t>(i) * config_.f, &sig);
      if (matches(sig)) slots.push_back(slot);
    }
  }
  return slots;
}

StatusOr<CandidateResult> SequentialSignatureFile::Candidates(
    QueryKind kind, const ElementSet& query) {
  BitVector query_sig = MakeSetSignature(query, config_);
  std::function<bool(const BitVector&)> matches;
  switch (kind) {
    case QueryKind::kSuperset:
    case QueryKind::kProperSuperset:  // strictness checked at resolution
      matches = [&](const BitVector& t) {
        return MatchesSuperset(t, query_sig);
      };
      break;
    case QueryKind::kSubset:
    case QueryKind::kProperSubset:  // strictness checked at resolution
      matches = [&](const BitVector& t) { return MatchesSubset(t, query_sig); };
      break;
    case QueryKind::kEquals:
      matches = [&](const BitVector& t) { return MatchesEquals(t, query_sig); };
      break;
    case QueryKind::kOverlaps: {
      // T ∩ Q ≠ ∅ ⟹ some element signature of Q is covered by the target
      // signature, so testing coverage per query element is a complete
      // filter (extension; paper §6 future work).
      std::vector<BitVector> element_sigs;
      element_sigs.reserve(query.size());
      for (uint64_t e : query) {
        element_sigs.push_back(MakeElementSignature(e, config_));
      }
      matches = [element_sigs = std::move(element_sigs)](const BitVector& t) {
        for (const BitVector& es : element_sigs) {
          if (es.IsSubsetOf(t)) return true;
        }
        return false;
      };
      break;
    }
  }
  SIGSET_ASSIGN_OR_RETURN(std::vector<uint64_t> slots,
                          ScanMatchingSlots(matches));
  CandidateResult result;
  result.exact = false;
  SIGSET_ASSIGN_OR_RETURN(result.oids, oid_file_.GetMany(slots));
  return result;
}

uint64_t SequentialSignatureFile::StoragePages() const {
  return static_cast<uint64_t>(signature_file_->num_pages()) +
         oid_file_.num_pages();
}

}  // namespace sigsetdb
