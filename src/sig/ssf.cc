#include "sig/ssf.h"

#include <algorithm>

#include "sig/bitpack.h"
#include "sig/kernels.h"
#include "util/failpoint.h"

namespace sigsetdb {
namespace {

// Writes `page` at index `p`, allocating intermediate pages as needed.
// Compaction targets may hold stale pages from a crashed earlier attempt,
// so plain Allocate-then-Write would mis-place pages on retry.
Status WriteOrAllocate(PageFile* file, PageId p, const Page& page) {
  while (file->num_pages() <= p) {
    SIGSET_ASSIGN_OR_RETURN(PageId allocated, file->Allocate());
    (void)allocated;
  }
  return file->Write(p, page);
}

}  // namespace

StatusOr<std::unique_ptr<SequentialSignatureFile>>
SequentialSignatureFile::Create(const SignatureConfig& config,
                                PageFile* signature_file, PageFile* oid_file) {
  SIGSET_RETURN_IF_ERROR(config.Validate());
  if (config.f > kPageBits) {
    return Status::InvalidArgument("F exceeds one page worth of bits");
  }
  return std::unique_ptr<SequentialSignatureFile>(
      new SequentialSignatureFile(config, signature_file, oid_file));
}

StatusOr<std::unique_ptr<SequentialSignatureFile>>
SequentialSignatureFile::CreateFromExisting(const SignatureConfig& config,
                                            PageFile* signature_file,
                                            PageFile* oid_file,
                                            uint64_t num_signatures) {
  SIGSET_ASSIGN_OR_RETURN(std::unique_ptr<SequentialSignatureFile> ssf,
                          Create(config, signature_file, oid_file));
  uint64_t expected_pages =
      (num_signatures + ssf->sigs_per_page_ - 1) / ssf->sigs_per_page_;
  // Pages beyond the checkpointed count are legitimate after a crash (an
  // insert allocated its page before the manifest was rewritten); scans are
  // capped at num_signatures_, so the trailing pages are invisible.  Too few
  // pages means checkpointed signatures are gone — that is corruption.
  if (signature_file->num_pages() < expected_pages) {
    return Status::Corruption(
        "signature file has fewer pages than the recovered count needs");
  }
  SIGSET_RETURN_IF_ERROR(ssf->oid_file_.Recover(num_signatures));
  ssf->num_signatures_ = num_signatures;
  // Rebuild the page-union index exactly: per page, the OR of its *live*
  // signatures and the live count (tombstoned slots' stale bits are dropped
  // here — recovery is the one point where the grow-only union tightens).
  // Like the rest of recovery this scan is setup; stats are reset below.
  {
    std::vector<bool> tombstoned(num_signatures, false);
    for (uint64_t slot : ssf->oid_file_.free_slots()) {
      if (slot < num_signatures) tombstoned[slot] = true;
    }
    Page page;
    BitVector sig(config.f);
    uint64_t slot = 0;
    for (PageId p = 0; p < expected_pages && slot < num_signatures; ++p) {
      SIGSET_RETURN_IF_ERROR(signature_file->Read(p, &page));
      BitVector page_union(config.f);
      uint32_t live = 0;
      for (uint32_t i = 0; i < ssf->sigs_per_page_ && slot < num_signatures;
           ++i, ++slot) {
        if (tombstoned[slot]) continue;
        ExtractBits(page.data(), static_cast<size_t>(i) * config.f, &sig);
        page_union.OrWith(sig);
        ++live;
      }
      ssf->union_index_.SetPage(p, std::move(page_union), live);
    }
  }
  if (num_signatures > 0 && num_signatures % ssf->sigs_per_page_ != 0) {
    // The tail is the page holding slot num_signatures-1, not necessarily the
    // file's last page (a crashed insert may have allocated one past it).
    ssf->tail_page_ = static_cast<PageId>(expected_pages - 1);
    SIGSET_RETURN_IF_ERROR(signature_file->Read(ssf->tail_page_, &ssf->tail_));
  }
  // Recovery I/O is setup, not an experiment cost.
  signature_file->stats().Reset();
  oid_file->stats().Reset();
  return ssf;
}

StatusOr<std::unique_ptr<SequentialSignatureFile>>
SequentialSignatureFile::CreateReadView(const SignatureConfig& config,
                                        PageFile* signature_file,
                                        PageFile* oid_file,
                                        uint64_t num_signatures,
                                        uint64_t num_live) {
  SIGSET_ASSIGN_OR_RETURN(std::unique_ptr<SequentialSignatureFile> ssf,
                          Create(config, signature_file, oid_file));
  const uint64_t expected_pages =
      (num_signatures + ssf->sigs_per_page_ - 1) / ssf->sigs_per_page_;
  if (signature_file->num_pages() < expected_pages) {
    return Status::Corruption(
        "snapshot signature file has fewer pages than its count needs");
  }
  ssf->num_signatures_ = num_signatures;
  ssf->oid_file_.AttachReadOnly(num_signatures, num_live);
  ssf->paranoid_checks_ = false;
  return ssf;
}

SequentialSignatureFile::SequentialSignatureFile(const SignatureConfig& config,
                                                 PageFile* signature_file,
                                                 PageFile* oid_file)
    : config_(config),
      sigs_per_page_(static_cast<uint32_t>(kPageBits / config.f)),
      signature_file_(signature_file),
      oid_file_(oid_file),
      union_index_(config.f) {}

Status SequentialSignatureFile::Insert(Oid oid, const ElementSet& set_value) {
  SIGSET_FAILPOINT("ssf.insert");
  BitVector sig = MakeSetSignature(set_value, config_);
  if (!oid_file_.free_slots().empty()) {
    // Reuse the most recently tombstoned slot: overwrite the dead signature
    // in place (DepositBits writes clear bits too, so no stale bits leak),
    // then publish by clearing the OID entry's delete flag.  A crash
    // between the two writes leaves the slot tombstoned — invisible, still
    // free, and repaired by the next reuse.
    uint64_t slot = oid_file_.free_slots().back();
    SIGSET_RETURN_IF_ERROR(OverwriteSlot(slot, sig));
    union_index_.AddSignature(slot / sigs_per_page_, sig);
    return oid_file_.SetAt(slot, oid);
  }
  uint32_t slot_in_page =
      static_cast<uint32_t>(num_signatures_ % sigs_per_page_);
  if (slot_in_page == 0) {
    SIGSET_ASSIGN_OR_RETURN(tail_page_, signature_file_->Allocate());
    tail_.Zero();
  }
  DepositBits(sig, tail_.data(), static_cast<size_t>(slot_in_page) * config_.f);
  SIGSET_RETURN_IF_ERROR(signature_file_->Write(tail_page_, tail_));
  union_index_.AddSignature(num_signatures_ / sigs_per_page_, sig);
  SIGSET_ASSIGN_OR_RETURN(uint64_t oid_slot, oid_file_.Append(oid));
  if (oid_slot != num_signatures_) {
    return Status::Internal("signature/OID slot mismatch");
  }
  ++num_signatures_;
  return Status::OK();
}

Status SequentialSignatureFile::OverwriteSlot(uint64_t slot,
                                              const BitVector& sig) {
  PageId p = static_cast<PageId>(slot / sigs_per_page_);
  size_t bit_off =
      static_cast<size_t>(slot % sigs_per_page_) * config_.f;
  if (p == tail_page_) {
    DepositBits(sig, tail_.data(), bit_off);
    return signature_file_->Write(tail_page_, tail_);
  }
  Page page;
  SIGSET_RETURN_IF_ERROR(signature_file_->Read(p, &page));
  DepositBits(sig, page.data(), bit_off);
  return signature_file_->Write(p, page);
}

Status SequentialSignatureFile::CheckSlotSignature(
    uint64_t slot, const ElementSet& set_value) const {
  PageId p = static_cast<PageId>(slot / sigs_per_page_);
  Page page;
  SIGSET_RETURN_IF_ERROR(signature_file_->Read(p, &page));
  BitVector stored(config_.f);
  ExtractBits(page.data(),
              static_cast<size_t>(slot % sigs_per_page_) * config_.f,
              &stored);
  if (!(stored == MakeSetSignature(set_value, config_))) {
    return Status::Internal(
        "stored signature does not match the removed object's set value");
  }
  return Status::OK();
}

Status SequentialSignatureFile::Remove(Oid oid, const ElementSet& set_value) {
  SIGSET_ASSIGN_OR_RETURN(uint64_t slot, oid_file_.MarkDeleted(oid));
  // The dangling signature stays in the page, so the page union keeps its
  // bits (upper bound); only the live count shrinks.
  union_index_.OnDelete(slot / sigs_per_page_);
  if (paranoid_checks_) {
    SIGSET_RETURN_IF_ERROR(CheckSlotSignature(slot, set_value));
  }
  return Status::OK();
}

Status SequentialSignatureFile::ApplyBatch(const std::vector<BatchOp>& ops) {
  SIGSET_FAILPOINT("ssf.insert");
  // Removes first, so slots this batch frees are available to its inserts.
  std::vector<Oid> remove_oids;
  std::vector<const ElementSet*> remove_sets;
  std::vector<const BatchOp*> inserts;
  for (const BatchOp& op : ops) {
    if (op.kind == BatchOp::Kind::kRemove) {
      remove_oids.push_back(op.oid);
      remove_sets.push_back(&op.set_value);
    } else {
      inserts.push_back(&op);
    }
  }
  if (!remove_oids.empty()) {
    SIGSET_ASSIGN_OR_RETURN(std::vector<uint64_t> slots,
                            oid_file_.MarkDeletedMany(remove_oids));
    for (uint64_t slot : slots) {
      union_index_.OnDelete(slot / sigs_per_page_);
    }
    if (paranoid_checks_) {
      for (size_t i = 0; i < slots.size(); ++i) {
        SIGSET_RETURN_IF_ERROR(
            CheckSlotSignature(slots[i], *remove_sets[i]));
      }
    }
  }
  // Refill tombstoned slots: one signature-page RMW per distinct page, one
  // OID-page RMW per distinct page (SetMany).
  size_t reuse = std::min(inserts.size(), oid_file_.free_slots().size());
  if (reuse > 0) {
    std::vector<std::pair<uint64_t, const BatchOp*>> refill;
    refill.reserve(reuse);
    const std::vector<uint64_t>& free_slots = oid_file_.free_slots();
    for (size_t i = 0; i < reuse; ++i) {
      refill.emplace_back(free_slots[free_slots.size() - 1 - i],
                          inserts[i]);
    }
    std::sort(refill.begin(), refill.end(),
              [](const auto& a, const auto& b) { return a.first < b.first; });
    Page page;
    PageId loaded = kInvalidPage;
    for (const auto& [slot, op] : refill) {
      PageId p = static_cast<PageId>(slot / sigs_per_page_);
      if (p != loaded) {
        if (loaded != kInvalidPage) {
          SIGSET_RETURN_IF_ERROR(signature_file_->Write(loaded, page));
          if (loaded == tail_page_) tail_ = page;
        }
        SIGSET_RETURN_IF_ERROR(signature_file_->Read(p, &page));
        loaded = p;
      }
      BitVector refill_sig = MakeSetSignature(op->set_value, config_);
      DepositBits(refill_sig, page.data(),
                  static_cast<size_t>(slot % sigs_per_page_) * config_.f);
      union_index_.AddSignature(slot / sigs_per_page_, refill_sig);
    }
    if (loaded != kInvalidPage) {
      SIGSET_RETURN_IF_ERROR(signature_file_->Write(loaded, page));
      if (loaded == tail_page_) tail_ = page;
    }
    std::vector<std::pair<uint64_t, Oid>> entries;
    entries.reserve(reuse);
    for (const auto& [slot, op] : refill) entries.emplace_back(slot, op->oid);
    SIGSET_RETURN_IF_ERROR(oid_file_.SetMany(entries));
  }
  // Append the rest tail-page-at-a-time: each signature page and each OID
  // page is written once.
  if (reuse < inserts.size()) {
    std::vector<Oid> appended;
    appended.reserve(inserts.size() - reuse);
    uint64_t next_slot = num_signatures_;
    size_t i = reuse;
    while (i < inserts.size()) {
      uint32_t slot_in_page =
          static_cast<uint32_t>(next_slot % sigs_per_page_);
      if (slot_in_page == 0) {
        SIGSET_ASSIGN_OR_RETURN(tail_page_, signature_file_->Allocate());
        tail_.Zero();
      }
      while (i < inserts.size() && slot_in_page < sigs_per_page_) {
        BitVector append_sig = MakeSetSignature(inserts[i]->set_value, config_);
        DepositBits(append_sig, tail_.data(),
                    static_cast<size_t>(slot_in_page) * config_.f);
        union_index_.AddSignature(next_slot / sigs_per_page_, append_sig);
        appended.push_back(inserts[i]->oid);
        ++slot_in_page;
        ++next_slot;
        ++i;
      }
      SIGSET_RETURN_IF_ERROR(signature_file_->Write(tail_page_, tail_));
    }
    SIGSET_ASSIGN_OR_RETURN(uint64_t first_slot,
                            oid_file_.AppendMany(appended));
    if (first_slot != num_signatures_) {
      return Status::Internal("signature/OID slot mismatch in batch append");
    }
    num_signatures_ = next_slot;
  }
  return Status::OK();
}

StatusOr<uint64_t> SequentialSignatureFile::CompactTo(
    PageFile* new_signature_file, PageFile* new_oid_file) const {
  SIGSET_ASSIGN_OR_RETURN(auto live, oid_file_.LiveEntries());
  Page in_page, out_sig, out_oid;
  out_sig.Zero();
  out_oid.Zero();
  PageId loaded = kInvalidPage;
  BitVector sig(config_.f);
  uint64_t dense = 0;
  for (const auto& [slot, oid] : live) {
    // Live slots arrive sorted, so the old signature file is read
    // sequentially, one read per distinct page.
    PageId p = static_cast<PageId>(slot / sigs_per_page_);
    if (p != loaded) {
      SIGSET_RETURN_IF_ERROR(signature_file_->Read(p, &in_page));
      loaded = p;
    }
    ExtractBits(in_page.data(),
                static_cast<size_t>(slot % sigs_per_page_) * config_.f, &sig);
    DepositBits(sig, out_sig.data(),
                static_cast<size_t>(dense % sigs_per_page_) * config_.f);
    out_oid.WriteAt<uint64_t>((dense % kOidsPerPage) * kOidBytes,
                              oid.value());
    ++dense;
    if (dense % sigs_per_page_ == 0) {
      SIGSET_RETURN_IF_ERROR(WriteOrAllocate(
          new_signature_file,
          static_cast<PageId>(dense / sigs_per_page_ - 1), out_sig));
      out_sig.Zero();
    }
    if (dense % kOidsPerPage == 0) {
      SIGSET_RETURN_IF_ERROR(WriteOrAllocate(
          new_oid_file, static_cast<PageId>(dense / kOidsPerPage - 1),
          out_oid));
      out_oid.Zero();
    }
  }
  if (dense % sigs_per_page_ != 0) {
    SIGSET_RETURN_IF_ERROR(WriteOrAllocate(
        new_signature_file, static_cast<PageId>(dense / sigs_per_page_),
        out_sig));
  }
  if (dense % kOidsPerPage != 0) {
    SIGSET_RETURN_IF_ERROR(WriteOrAllocate(
        new_oid_file, static_cast<PageId>(dense / kOidsPerPage), out_oid));
  }
  return dense;
}

StatusOr<std::vector<uint64_t>> SequentialSignatureFile::ScanMatchingSlots(
    const std::function<bool(const BitVector&)>& matches,
    const std::function<bool(PageId)>* skip_page) const {
  std::vector<uint64_t> slots;
  Page page;
  BitVector sig(config_.f);
  uint64_t slot = 0;
  for (PageId p = 0; p < signature_file_->num_pages() && slot < num_signatures_;
       ++p) {
    if (skip_page != nullptr && (*skip_page)(p)) {
      signature_file_->stats().AddSkip();
      slot = std::min<uint64_t>(num_signatures_,
                                (static_cast<uint64_t>(p) + 1) *
                                    sigs_per_page_);
      continue;
    }
    SIGSET_RETURN_IF_ERROR(signature_file_->Read(p, &page));
    for (uint32_t i = 0; i < sigs_per_page_ && slot < num_signatures_;
         ++i, ++slot) {
      ExtractBits(page.data(), static_cast<size_t>(i) * config_.f, &sig);
      if (matches(sig)) slots.push_back(slot);
    }
  }
  return slots;
}

StatusOr<CandidateResult> SequentialSignatureFile::Candidates(
    QueryKind kind, const ElementSet& query) {
  BitVector query_sig = MakeSetSignature(query, config_);
  std::function<bool(const BitVector&)> matches;
  std::function<bool(PageId)> skip;
  // Skip predicates are per-kind because soundness differs: a page union is
  // an upper bound on every resident signature, so "query ⊄ union" kills
  // superset/equals matches and "no element signature ⊆ union" kills
  // overlap matches; subset matches can only be killed by emptiness
  // (live == 0), since smaller residents match more easily, not less.
  // Pages past the index (none today; defensive) are never skipped.
  auto page_live = [this](PageId p) {
    return p < union_index_.num_pages() ? union_index_.live(p) : 1u;
  };
  switch (kind) {
    case QueryKind::kSuperset:
    case QueryKind::kProperSuperset:  // strictness checked at resolution
      matches = [&](const BitVector& t) {
        return MatchesSuperset(t, query_sig);
      };
      if (skip_enabled_) {
        skip = [this, &query_sig, page_live](PageId p) {
          if (page_live(p) == 0) return true;
          return p < union_index_.num_pages() &&
                 !KernelIsSubsetOf(query_sig, union_index_.page_union(p));
        };
      }
      break;
    case QueryKind::kSubset:
    case QueryKind::kProperSubset:  // strictness checked at resolution
      matches = [&](const BitVector& t) { return MatchesSubset(t, query_sig); };
      if (skip_enabled_) {
        skip = [page_live](PageId p) { return page_live(p) == 0; };
      }
      break;
    case QueryKind::kEquals:
      matches = [&](const BitVector& t) { return MatchesEquals(t, query_sig); };
      if (skip_enabled_) {
        // Equal signatures are in particular covered by the page union, so
        // the superset predicate applies unchanged.
        skip = [this, &query_sig, page_live](PageId p) {
          if (page_live(p) == 0) return true;
          return p < union_index_.num_pages() &&
                 !KernelIsSubsetOf(query_sig, union_index_.page_union(p));
        };
      }
      break;
    case QueryKind::kOverlaps: {
      // T ∩ Q ≠ ∅ ⟹ some element signature of Q is covered by the target
      // signature, so testing coverage per query element is a complete
      // filter (extension; paper §6 future work).  The coverage test is the
      // early-exit ContainsAll kernel — the SSF scan's inner loop.
      std::vector<BitVector> element_sigs;
      element_sigs.reserve(query.size());
      for (uint64_t e : query) {
        element_sigs.push_back(MakeElementSignature(e, config_));
      }
      if (skip_enabled_) {
        skip = [this, element_sigs, page_live](PageId p) {
          if (page_live(p) == 0) return true;
          if (p >= union_index_.num_pages()) return false;
          for (const BitVector& es : element_sigs) {
            if (KernelIsSubsetOf(es, union_index_.page_union(p))) return false;
          }
          return true;
        };
      }
      matches = [element_sigs = std::move(element_sigs)](const BitVector& t) {
        for (const BitVector& es : element_sigs) {
          if (KernelIsSubsetOf(es, t)) return true;
        }
        return false;
      };
      break;
    }
  }
  SIGSET_ASSIGN_OR_RETURN(
      std::vector<uint64_t> slots,
      ScanMatchingSlots(matches, skip ? &skip : nullptr));
  CandidateResult result;
  result.exact = false;
  SIGSET_ASSIGN_OR_RETURN(result.oids, oid_file_.GetMany(slots));
  return result;
}

uint64_t SequentialSignatureFile::StoragePages() const {
  return static_cast<uint64_t>(signature_file_->num_pages()) +
         oid_file_.num_pages();
}

}  // namespace sigsetdb
