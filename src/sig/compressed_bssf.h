// CompressedBitSlicedSignatureFile: a BSSF whose bit slices are WAH
// run-length compressed (extension; see sig/wah.h for the motivation).
//
// Each slice's encoded words occupy their own page run, so reading slice j
// costs its *compressed* page count — usually 1 page at small-m densities
// even when the uncompressed slice spans many pages.  The organization is
// bulk-built (one pass over the database, like the benchmark setup of the
// uncompressed BSSF); incremental insertion into compressed slices is a
// known hard problem in bitmap indexing and out of scope here.
//
// The slice directory (per-slice page ranges and word counts) lives in a
// directory page block at the front of the file so the structure is
// self-describing.

#ifndef SIGSET_SIG_COMPRESSED_BSSF_H_
#define SIGSET_SIG_COMPRESSED_BSSF_H_

#include <limits>
#include <memory>

#include "obj/oid_file.h"
#include "sig/facility.h"
#include "sig/signature.h"
#include "storage/page_file.h"

namespace sigsetdb {

// WAH-compressed bit-sliced signature file (read-mostly).
class CompressedBitSlicedSignatureFile {
 public:
  // Neither file is owned; both must be empty.
  static StatusOr<std::unique_ptr<CompressedBitSlicedSignatureFile>> Create(
      const SignatureConfig& config, PageFile* slice_file, PageFile* oid_file);

  // Builds all slices from the database in one pass.  May be called once.
  Status BulkLoad(const std::vector<Oid>& oids,
                  const std::vector<ElementSet>& sets);

  // Candidate slots for T ⊇ Q / T ⊆ Q (same semantics as the uncompressed
  // BSSF, including the partial-scan knob).
  StatusOr<std::vector<uint64_t>> SupersetCandidateSlots(
      const BitVector& query_sig) const;
  StatusOr<std::vector<uint64_t>> SubsetCandidateSlots(
      const BitVector& query_sig,
      size_t max_slices = std::numeric_limits<size_t>::max()) const;

  StatusOr<std::vector<Oid>> ResolveSlots(
      const std::vector<uint64_t>& slots) const {
    return oid_file_.GetMany(slots);
  }

  uint64_t num_signatures() const { return num_signatures_; }
  const SignatureConfig& config() const { return config_; }

  // Compressed pages of slice j (what one slice read costs).
  uint32_t PagesForSlice(uint32_t slice) const;

  // Total pages: directory + all compressed slices (+ OID file elsewhere).
  uint64_t SlicePages() const { return slice_file_->num_pages(); }
  uint64_t StoragePages() const {
    return SlicePages() + oid_file_.num_pages();
  }

 private:
  CompressedBitSlicedSignatureFile(const SignatureConfig& config,
                                   PageFile* slice_file, PageFile* oid_file)
      : config_(config), slice_file_(slice_file), oid_file_(oid_file) {}

  // Reads and decodes slice j into `out` (num_signatures_ bits).
  Status ReadSlice(uint32_t slice, BitVector* out) const;

  struct SliceRef {
    PageId first_page = kInvalidPage;
    uint32_t num_pages = 0;
    uint32_t num_words = 0;
  };

  SignatureConfig config_;
  PageFile* slice_file_;
  OidFile oid_file_;
  uint64_t num_signatures_ = 0;
  std::vector<SliceRef> directory_;  // F entries after BulkLoad
};

}  // namespace sigsetdb

#endif  // SIGSET_SIG_COMPRESSED_BSSF_H_
