// SetAccessFacility: the common interface of the three access methods the
// paper compares (SSF, BSSF, NIX).
//
// A facility maps a set-predicate query to a *candidate* OID list.  When
// `exact` is false the list may contain false drops and the caller must run
// false-drop resolution (fetch each object and re-check the predicate) —
// query/executor.h implements that step.

#ifndef SIGSET_SIG_FACILITY_H_
#define SIGSET_SIG_FACILITY_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "obj/object.h"
#include "obj/oid.h"
#include "storage/io_stats.h"
#include "util/status.h"
#include "util/thread_pool.h"

namespace sigsetdb {

// The set-comparison queries studied by the paper (§2) plus the two
// operators listed as future work in §6 (equality and overlap), which this
// reproduction implements as extensions.
enum class QueryKind {
  kSuperset,        // T ⊇ Q  ("has-subset")
  kSubset,          // T ⊆ Q  ("in-subset")
  kProperSuperset,  // T ⊋ Q  (the paper's §1 "only the lectures" variant)
  kProperSubset,    // T ⊊ Q
  kEquals,          // T = Q
  kOverlaps,        // T ∩ Q ≠ ∅
};

// The non-strict predicate whose candidates are a superset of `kind`'s
// (proper variants filter during resolution; others are themselves).
QueryKind CandidateKind(QueryKind kind);

const char* QueryKindName(QueryKind kind);

// Result of the candidate-selection phase.
struct CandidateResult {
  std::vector<Oid> oids;
  // True when the facility guarantees no false drops (e.g. NIX intersection
  // for T ⊇ Q); resolution can then skip the re-check.
  bool exact = false;
};

// One operation of a grouped write batch, applied facility-side so each
// implementation can coalesce page touches across the whole group (BSSF
// touches each dirty slice page once per batch instead of once per insert;
// NIX descends once per distinct key).
struct BatchOp {
  enum class Kind { kInsert, kRemove };
  Kind kind = Kind::kInsert;
  Oid oid;
  ElementSet set_value;
};

// Abstract access facility over one indexed set attribute.
class SetAccessFacility {
 public:
  virtual ~SetAccessFacility() = default;

  // Human-readable facility name ("ssf", "bssf", "nix").
  virtual const std::string& name() const = 0;

  // Indexes `set_value` for object `oid`.
  virtual Status Insert(Oid oid, const ElementSet& set_value) = 0;

  // Removes the index information for `oid` (whose indexed value was
  // `set_value`; signature facilities ignore it, NIX needs it).
  virtual Status Remove(Oid oid, const ElementSet& set_value) = 0;

  // Applies a group of inserts/removes in one call.  Implementations
  // override this to coalesce page writes across the batch; the default is
  // the op-by-op loop, so the result is always equivalent to applying the
  // ops in order.  Removes are not transactional: a mid-batch error leaves
  // a prefix applied (the crash-recovery protocol owns atomicity).
  virtual Status ApplyBatch(const std::vector<BatchOp>& ops) {
    for (const BatchOp& op : ops) {
      if (op.kind == BatchOp::Kind::kInsert) {
        SIGSET_RETURN_IF_ERROR(Insert(op.oid, op.set_value));
      } else {
        SIGSET_RETURN_IF_ERROR(Remove(op.oid, op.set_value));
      }
    }
    return Status::OK();
  }

  // Returns candidate OIDs for the query.  `query` must be normalized.
  virtual StatusOr<CandidateResult> Candidates(QueryKind kind,
                                               const ElementSet& query) = 0;

  // Parallel-aware variant: facilities that can fan candidate selection out
  // over `ctx` (BSSF slice scans) override this; the default ignores the
  // context and runs the serial path.  Results and logical page-access
  // counts are identical either way.
  virtual StatusOr<CandidateResult> Candidates(
      QueryKind kind, const ElementSet& query,
      const ParallelExecutionContext* ctx) {
    (void)ctx;
    return Candidates(kind, query);
  }

  // Pages occupied by the facility's files (the paper's storage cost SC,
  // excluding the object file).
  virtual uint64_t StoragePages() const = 0;

  // Stage-labelled snapshots of the facility's per-file access counters,
  // e.g. {"slice scan", <slice-file stats>}, {"oid lookup", <oid-file
  // stats>}.  Query tracing diffs two snapshots around candidate selection
  // to attribute the stage's page accesses to the facility's files; the
  // snapshots are value copies, so taking them performs no page I/O.  The
  // default (no breakdown) keeps tracing usable with any facility.
  virtual std::vector<std::pair<std::string, IoStats>> StageStats() const {
    return {};
  }
};

}  // namespace sigsetdb

#endif  // SIGSET_SIG_FACILITY_H_
