// Sequential Signature File (paper §4.1).
//
// The simplest signature organization: set signatures are stored
// sequentially, ⌊P·b/F⌋ per page, with a parallel OID file mapping signature
// slot i to the i-th object's OID.  Every query scans the whole signature
// file (SC_SIG pages), which is why the paper finds SSF dominated by BSSF in
// retrieval cost, while its insertion cost (2 page accesses) is the lowest.

#ifndef SIGSET_SIG_SSF_H_
#define SIGSET_SIG_SSF_H_

#include <functional>
#include <memory>

#include "obj/oid_file.h"
#include "sig/facility.h"
#include "sig/signature.h"
#include "sig/skip_index.h"
#include "storage/page_file.h"

namespace sigsetdb {

// Sequential signature file over one indexed set attribute.
class SequentialSignatureFile : public SetAccessFacility {
 public:
  // Neither file is owned; both must be empty on first use and outlive the
  // facility.
  static StatusOr<std::unique_ptr<SequentialSignatureFile>> Create(
      const SignatureConfig& config, PageFile* signature_file,
      PageFile* oid_file);

  // Reopens a facility over previously populated files (e.g. after a
  // restart of a disk-backed StorageManager).  `num_signatures` comes from
  // the manifest written by SetIndex::Checkpoint().
  static StatusOr<std::unique_ptr<SequentialSignatureFile>>
  CreateFromExisting(const SignatureConfig& config, PageFile* signature_file,
                     PageFile* oid_file, uint64_t num_signatures);

  // Lightweight read-only view over fixed-epoch snapshot files: no recovery
  // scan, no free-list/tail/union rebuild, no stats reset (the counters come
  // from the SnapshotState published with the epoch).  Only the query
  // surface (Candidates/ScanMatchingSlots/ResolveSlots) may be used; the
  // skip index stays disabled because its summaries are not rebuilt.
  static StatusOr<std::unique_ptr<SequentialSignatureFile>> CreateReadView(
      const SignatureConfig& config, PageFile* signature_file,
      PageFile* oid_file, uint64_t num_signatures, uint64_t num_live);

  const std::string& name() const override { return name_; }

  // Appends the signature of `set_value` and the OID (2 page writes — the
  // paper's UC_I = 2).  When a tombstoned slot is available it is reused
  // instead: the new signature overwrites the dead one in place (DepositBits
  // writes both set and clear bits) and the OID entry's delete flag is
  // cleared, so deleted space is recycled rather than scanned forever.
  Status Insert(Oid oid, const ElementSet& set_value) override;

  // Sets the delete flag in the OID file (expected SC_OID/2 page reads plus
  // one write — the paper's UC_D).  The dangling signature remains, is
  // filtered by the OID lookup, and its slot joins the free list for reuse.
  // With paranoid checks on, verifies the stored signature at the
  // tombstoned slot matches `set_value` (corruption tripwire).
  Status Remove(Oid oid, const ElementSet& set_value) override;

  // Grouped write path: removes are tombstoned with one OID-file scan,
  // freed slots are refilled with one read-modify-write per distinct
  // signature page, and the remaining inserts are appended tail-page-at-a-
  // time — ⌈n/sigs_per_page⌉ + ⌈n/O_d⌉ writes for n appends instead of 2n.
  Status ApplyBatch(const std::vector<BatchOp>& ops) override;

  // Rewrites the live signatures and OID entries densely into the target
  // files (slot order preserved, tombstones dropped) and returns the live
  // count.  Target files may hold stale pages from a crashed earlier
  // attempt — pages are overwritten, not appended — so compaction is safe
  // to retry against the same generation files.  The caller swaps the new
  // files in via CreateFromExisting + checkpoint.
  StatusOr<uint64_t> CompactTo(PageFile* new_signature_file,
                               PageFile* new_oid_file) const;

  StatusOr<CandidateResult> Candidates(QueryKind kind,
                                       const ElementSet& query) override;

  // SC = SC_SIG + SC_OID.
  uint64_t StoragePages() const override;

  // Tracing: {"signature scan", sig-file stats}, {"oid lookup", oid stats}.
  std::vector<std::pair<std::string, IoStats>> StageStats() const override {
    return {{"signature scan", signature_file_->stats()},
            {"oid lookup", oid_file_.stats()}};
  }

  // --- lower-level API used by tests and the smart strategies ---

  // Scans the signature file and returns the slots whose signature satisfies
  // `matches` (costs exactly SC_SIG page reads).  A non-null `skip_page`
  // lets the caller prove whole pages irrelevant before the read: a page for
  // which it returns true is charged to pages_skipped instead of page_reads
  // and none of its slots are tested.
  StatusOr<std::vector<uint64_t>> ScanMatchingSlots(
      const std::function<bool(const BitVector&)>& matches,
      const std::function<bool(PageId)>* skip_page = nullptr) const;

  // Resolves slots (sorted) to OIDs via the OID file.
  StatusOr<std::vector<Oid>> ResolveSlots(
      const std::vector<uint64_t>& slots) const {
    return oid_file_.GetMany(slots);
  }

  uint64_t num_signatures() const { return num_signatures_; }
  // Signatures not tombstoned (the model's live population after deletes).
  uint64_t num_live() const { return oid_file_.num_live(); }
  uint32_t signatures_per_page() const { return sigs_per_page_; }
  const SignatureConfig& config() const { return config_; }

  // Enables/disables the Remove() signature-match tripwire (defaults to on
  // in debug builds, off under NDEBUG).
  void set_paranoid_checks(bool on) { paranoid_checks_ = on; }

  // Pages of the signature file alone (the paper's SC_SIG).
  uint64_t SignaturePages() const { return signature_file_->num_pages(); }

  // Whether Candidates() consults the page-union skip index (unions are
  // always maintained; only consultation is switched).  Off by default so
  // page-access totals are bit-identical to the pre-skip-index behaviour.
  // When on: superset/equals scans skip pages whose union does not cover
  // the query signature, overlap scans skip pages whose union covers no
  // element signature, and every scan skips pages with zero live slots.
  void set_skip_index_enabled(bool on) { skip_enabled_ = on; }
  bool skip_index_enabled() const { return skip_enabled_; }
  const PageUnionIndex& union_index() const { return union_index_; }

 private:
  SequentialSignatureFile(const SignatureConfig& config,
                          PageFile* signature_file, PageFile* oid_file);

  // Overwrites the signature at `slot` in place (one page RMW; uses the
  // tail image when the slot lives on the tail page).
  Status OverwriteSlot(uint64_t slot, const BitVector& sig);
  // Tripwire: extract the signature stored at `slot` and compare it with
  // the signature of `set_value`.
  Status CheckSlotSignature(uint64_t slot, const ElementSet& set_value) const;

  std::string name_ = "ssf";
  SignatureConfig config_;
  uint32_t sigs_per_page_;
  PageFile* signature_file_;
  OidFile oid_file_;
  uint64_t num_signatures_ = 0;
  // In-memory image of the tail signature page (appender buffer, so that an
  // insert costs one signature-page write, matching the model).
  Page tail_;
  PageId tail_page_ = kInvalidPage;
  // Per-page signature unions + live counts; maintained by every write path
  // (grow-only across deletes/slot reuse, so always an upper bound) and
  // rebuilt exactly by CreateFromExisting's recovery scan.
  PageUnionIndex union_index_;
  bool skip_enabled_ = false;
  bool paranoid_checks_ =
#ifndef NDEBUG
      true;
#else
      false;
#endif
};

}  // namespace sigsetdb

#endif  // SIGSET_SIG_SSF_H_
