#include "sig/compressed_bssf.h"

#include <cstring>

#include "sig/kernels.h"
#include "sig/wah.h"
#include "util/math.h"

namespace sigsetdb {

namespace {

// Directory layout: page 0.. hold [num_signatures:u64][num_slices:u32]
// then per slice [first_page:u32][num_pages:u32][num_words:u32], packed
// contiguously across the directory pages.
constexpr size_t kDirHeaderBytes = 12;
constexpr size_t kDirEntryBytes = 12;

size_t DirectoryBytes(uint32_t f) {
  return kDirHeaderBytes + static_cast<size_t>(f) * kDirEntryBytes;
}

size_t DirectoryPages(uint32_t f) {
  return (DirectoryBytes(f) + kPageSize - 1) / kPageSize;
}

}  // namespace

StatusOr<std::unique_ptr<CompressedBitSlicedSignatureFile>>
CompressedBitSlicedSignatureFile::Create(const SignatureConfig& config,
                                         PageFile* slice_file,
                                         PageFile* oid_file) {
  SIGSET_RETURN_IF_ERROR(config.Validate());
  if (slice_file->num_pages() != 0) {
    return Status::InvalidArgument("slice file must be empty");
  }
  return std::unique_ptr<CompressedBitSlicedSignatureFile>(
      new CompressedBitSlicedSignatureFile(config, slice_file, oid_file));
}

Status CompressedBitSlicedSignatureFile::BulkLoad(
    const std::vector<Oid>& oids, const std::vector<ElementSet>& sets) {
  if (!directory_.empty()) {
    return Status::FailedPrecondition("BulkLoad may run once");
  }
  if (oids.size() != sets.size()) {
    return Status::InvalidArgument("oids/sets size mismatch");
  }
  const uint64_t n = oids.size();

  // Materialize the uncompressed slices (slice-major bit matrix), then
  // compress each.  Memory: F · N bits.
  std::vector<BitVector> slices(config_.f, BitVector(n));
  for (uint64_t slot = 0; slot < n; ++slot) {
    BitVector sig = MakeSetSignature(sets[slot], config_);
    sig.ForEachSetBit([&](size_t j) { slices[j].Set(slot); });
  }

  // Reserve the directory block, then append each compressed slice on a
  // fresh page boundary (a slice read must not touch its neighbours).
  const size_t dir_pages = DirectoryPages(config_.f);
  for (size_t i = 0; i < dir_pages; ++i) {
    SIGSET_ASSIGN_OR_RETURN(PageId id, slice_file_->Allocate());
    (void)id;
  }
  directory_.resize(config_.f);
  Page page;
  for (uint32_t j = 0; j < config_.f; ++j) {
    std::vector<uint32_t> words = WahEncode(slices[j]);
    SliceRef& ref = directory_[j];
    ref.num_words = static_cast<uint32_t>(words.size());
    ref.num_pages = static_cast<uint32_t>(
        CeilDiv(static_cast<int64_t>(words.size() * 4),
                static_cast<int64_t>(kPageSize)));
    if (ref.num_pages == 0) ref.num_pages = 1;  // empty slice: one page
    for (uint32_t p = 0; p < ref.num_pages; ++p) {
      SIGSET_ASSIGN_OR_RETURN(PageId id, slice_file_->Allocate());
      if (p == 0) ref.first_page = id;
      page.Zero();
      size_t begin = static_cast<size_t>(p) * (kPageSize / 4);
      size_t count = std::min(words.size() - begin, kPageSize / 4);
      std::memcpy(page.data(), words.data() + begin, count * 4);
      SIGSET_RETURN_IF_ERROR(slice_file_->Write(id, page));
    }
  }

  // Serialize the directory.
  std::vector<uint8_t> dir(DirectoryBytes(config_.f));
  std::memcpy(dir.data(), &n, 8);
  uint32_t f = config_.f;
  std::memcpy(dir.data() + 8, &f, 4);
  for (uint32_t j = 0; j < config_.f; ++j) {
    uint8_t* e = dir.data() + kDirHeaderBytes + j * kDirEntryBytes;
    uint32_t first = directory_[j].first_page;
    std::memcpy(e, &first, 4);
    std::memcpy(e + 4, &directory_[j].num_pages, 4);
    std::memcpy(e + 8, &directory_[j].num_words, 4);
  }
  for (size_t p = 0; p < dir_pages; ++p) {
    page.Zero();
    size_t begin = p * kPageSize;
    size_t count = std::min(dir.size() - begin, kPageSize);
    std::memcpy(page.data(), dir.data() + begin, count);
    SIGSET_RETURN_IF_ERROR(slice_file_->Write(static_cast<PageId>(p), page));
  }

  for (uint64_t slot = 0; slot < n; ++slot) {
    SIGSET_ASSIGN_OR_RETURN(uint64_t oid_slot, oid_file_.Append(oids[slot]));
    if (oid_slot != slot) return Status::Internal("bulk OID slot mismatch");
  }
  num_signatures_ = n;
  // Bulk-build I/O is setup, not an experiment cost.
  slice_file_->stats().Reset();
  return Status::OK();
}

uint32_t CompressedBitSlicedSignatureFile::PagesForSlice(
    uint32_t slice) const {
  return slice < directory_.size() ? directory_[slice].num_pages : 0;
}

Status CompressedBitSlicedSignatureFile::ReadSlice(uint32_t slice,
                                                   BitVector* out) const {
  if (slice >= directory_.size()) {
    return Status::OutOfRange("slice out of range");
  }
  const SliceRef& ref = directory_[slice];
  std::vector<uint32_t> words(ref.num_words);
  Page page;
  for (uint32_t p = 0; p < ref.num_pages; ++p) {
    SIGSET_RETURN_IF_ERROR(
        slice_file_->Read(ref.first_page + p, &page));
    size_t begin = static_cast<size_t>(p) * (kPageSize / 4);
    size_t count = std::min(words.size() - begin, kPageSize / 4);
    std::memcpy(words.data() + begin, page.data() + 0, count * 4);
  }
  if (!WahDecode(words, num_signatures_, out)) {
    return Status::Corruption("malformed WAH slice " + std::to_string(slice));
  }
  return Status::OK();
}

StatusOr<std::vector<uint64_t>>
CompressedBitSlicedSignatureFile::SupersetCandidateSlots(
    const BitVector& query_sig) const {
  BitVector acc(num_signatures_);
  acc.SetAll();
  Status status = Status::OK();
  BitVector slice_bits;
  query_sig.ForEachSetBit([&](size_t j) {
    if (!status.ok()) return;
    status = ReadSlice(static_cast<uint32_t>(j), &slice_bits);
    if (status.ok()) KernelAndWith(&acc, slice_bits);
  });
  SIGSET_RETURN_IF_ERROR(status);
  std::vector<uint64_t> slots;
  acc.ForEachSetBit([&](size_t slot) { slots.push_back(slot); });
  return slots;
}

StatusOr<std::vector<uint64_t>>
CompressedBitSlicedSignatureFile::SubsetCandidateSlots(
    const BitVector& query_sig, size_t max_slices) const {
  BitVector acc(num_signatures_);
  BitVector slice_bits;
  size_t scanned = 0;
  for (uint32_t j = 0; j < config_.f && scanned < max_slices; ++j) {
    if (query_sig.Test(j)) continue;
    SIGSET_RETURN_IF_ERROR(ReadSlice(j, &slice_bits));
    KernelOrWith(&acc, slice_bits);
    ++scanned;
  }
  std::vector<uint64_t> slots;
  for (uint64_t slot = 0; slot < num_signatures_; ++slot) {
    if (!acc.Test(slot)) slots.push_back(slot);
  }
  return slots;
}

}  // namespace sigsetdb
