// Bit-level packing helpers for the sequential signature file.
//
// SSF packs ⌊P·b/F⌋ signatures per page at arbitrary bit offsets (the paper
// computes SC_SIG = ⌈N / ⌊P·b/F⌋⌉, which only holds with bit-exact packing:
// e.g. 131 signatures of 250 bits in one 4 KiB page).

#ifndef SIGSET_SIG_BITPACK_H_
#define SIGSET_SIG_BITPACK_H_

#include <cstddef>
#include <cstdint>

#include "util/bitvector.h"

namespace sigsetdb {

// Copies `out->size()` bits from `src` starting at absolute bit offset
// `bit_off` (bit i of byte j is bit (j*8 + i), little-endian bit order).
void ExtractBits(const uint8_t* src, size_t bit_off, BitVector* out);

// Writes all bits of `in` into `dst` starting at bit offset `bit_off`.
void DepositBits(const BitVector& in, uint8_t* dst, size_t bit_off);

}  // namespace sigsetdb

#endif  // SIGSET_SIG_BITPACK_H_
