#include "sig/facility.h"

namespace sigsetdb {

const char* QueryKindName(QueryKind kind) {
  switch (kind) {
    case QueryKind::kSuperset:
      return "superset";
    case QueryKind::kSubset:
      return "subset";
    case QueryKind::kProperSuperset:
      return "proper-superset";
    case QueryKind::kProperSubset:
      return "proper-subset";
    case QueryKind::kEquals:
      return "equals";
    case QueryKind::kOverlaps:
      return "overlaps";
  }
  return "unknown";
}

QueryKind CandidateKind(QueryKind kind) {
  switch (kind) {
    case QueryKind::kProperSuperset:
      return QueryKind::kSuperset;
    case QueryKind::kProperSubset:
      return QueryKind::kSubset;
    default:
      return kind;
  }
}

}  // namespace sigsetdb
