#include "sig/hot_tier.h"

#include <limits>
#include <mutex>

#include "obs/metrics.h"

namespace sigsetdb {

HotSliceTier::HotSliceTier(uint64_t num_pages, size_t capacity_pages,
                           uint64_t admit_threshold)
    : admit_threshold_(admit_threshold == 0 ? 1 : admit_threshold),
      capacity_(capacity_pages),
      access_counts_(num_pages) {}

bool HotSliceTier::Lookup(PageId page_no, Page* out) {
  return VisitPage(page_no, [out](const Page& page) { *out = page; });
}

void HotSliceTier::Admit(PageId page_no, const Page& page) {
  if (page_no >= access_counts_.size() || capacity_ == 0) return;
  const uint64_t count =
      access_counts_[page_no].load(std::memory_order_relaxed);
  if (count < admit_threshold_) return;
  // Lock-free reject for the common steady-state miss: the tier is full
  // and this page is no hotter than the (monotone) coldest-count floor, so
  // the strictly-hotter rule below could not admit it anyway.
  if (pinned_count_.load(std::memory_order_relaxed) >= capacity_ &&
      count <= full_floor_.load(std::memory_order_relaxed)) {
    return;
  }
  std::unique_lock<std::shared_mutex> lock(mu_);
  if (pinned_.count(page_no) != 0) return;  // raced with another admitter
  if (pinned_.size() >= capacity_) {
    // Evict-lowest, but only for a strictly hotter newcomer — a tie must
    // not thrash two equally warm pages in and out of the tier.
    PageId coldest = kInvalidPage;
    uint64_t coldest_count = std::numeric_limits<uint64_t>::max();
    for (const auto& [id, copy] : pinned_) {
      (void)copy;
      const uint64_t c = access_counts_[id].load(std::memory_order_relaxed);
      if (c < coldest_count) {
        coldest_count = c;
        coldest = id;
      }
    }
    // The scanned minimum is the tightest floor known; publish it so the
    // next hopeless candidate is rejected before the lock.  (Counts only
    // grow, so the true minimum can never fall back below it.)
    if (coldest_count > full_floor_.load(std::memory_order_relaxed)) {
      full_floor_.store(coldest_count, std::memory_order_relaxed);
    }
    if (coldest == kInvalidPage || coldest_count >= count) return;
    pinned_.erase(coldest);
    evictions_.fetch_add(1, std::memory_order_relaxed);
  }
  pinned_[page_no] = std::make_unique<Page>(page);
  pinned_count_.store(pinned_.size(), std::memory_order_relaxed);
  admissions_.fetch_add(1, std::memory_order_relaxed);
}

void HotSliceTier::Update(PageId page_no, const Page& page) {
  std::unique_lock<std::shared_mutex> lock(mu_);
  auto it = pinned_.find(page_no);
  if (it != pinned_.end()) *it->second = page;
}

void HotSliceTier::Clear() {
  std::unique_lock<std::shared_mutex> lock(mu_);
  pinned_.clear();
  pinned_count_.store(0, std::memory_order_relaxed);
  full_floor_.store(0, std::memory_order_relaxed);
  for (std::atomic<uint64_t>& c : access_counts_) {
    c.store(0, std::memory_order_relaxed);
  }
}

void HotSliceTier::EvictColdestLocked() {
  PageId coldest = kInvalidPage;
  uint64_t coldest_count = std::numeric_limits<uint64_t>::max();
  for (const auto& [id, copy] : pinned_) {
    (void)copy;
    const uint64_t c = access_counts_[id].load(std::memory_order_relaxed);
    if (c < coldest_count) {
      coldest_count = c;
      coldest = id;
    }
  }
  if (coldest == kInvalidPage) return;
  pinned_.erase(coldest);
  pinned_count_.store(pinned_.size(), std::memory_order_relaxed);
  evictions_.fetch_add(1, std::memory_order_relaxed);
}

void HotSliceTier::set_capacity(size_t capacity_pages) {
  std::unique_lock<std::shared_mutex> lock(mu_);
  capacity_ = capacity_pages;
  while (pinned_.size() > capacity_) EvictColdestLocked();
}

size_t HotSliceTier::pinned_pages() const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  return pinned_.size();
}

uint64_t HotSliceTier::accesses(PageId page_no) const {
  if (page_no >= access_counts_.size()) return 0;
  return access_counts_[page_no].load(std::memory_order_relaxed);
}

void HotSliceTier::ExportMetrics(MetricsRegistry* registry,
                                 const std::string& prefix) const {
  // Same monotonic-raise discipline as obs/storage_metrics.cc: counters
  // only move up, so exporting twice (or after a facility swap) is safe.
  auto sync = [&](const std::string& name, uint64_t live) {
    Counter* counter = registry->counter(prefix + name);
    const uint64_t current = counter->value();
    if (live > current) counter->Increment(live - current);
  };
  sync(".hits", hits());
  sync(".admissions", admissions());
  sync(".evictions", evictions());
  registry->gauge(prefix + ".pinned")->Set(static_cast<double>(pinned_pages()));
}

}  // namespace sigsetdb
