#include "sig/wah.h"

namespace sigsetdb {

namespace {

constexpr uint32_t kFillFlag = 0x80000000u;
constexpr uint32_t kFillValueBit = 0x40000000u;
constexpr uint32_t kRunMask = 0x3fffffffu;
constexpr uint32_t kAllOnes = 0x7fffffffu;

// Extracts group `g` (31 bits) from `bits`.
uint32_t ExtractGroup(const BitVector& bits, size_t g) {
  uint32_t group = 0;
  size_t base = g * 31;
  size_t end = std::min(base + 31, bits.size());
  for (size_t i = base; i < end; ++i) {
    if (bits.Test(i)) group |= 1u << (i - base);
  }
  return group;
}

}  // namespace

void WahBuilder::AppendFill(bool value, uint64_t count) {
  while (count > 0) {
    // Try to extend a preceding fill of the same value.
    if (!words_.empty() && (words_.back() & kFillFlag) != 0 &&
        ((words_.back() & kFillValueBit) != 0) == value &&
        (words_.back() & kRunMask) < kMaxRun) {
      uint32_t room = kMaxRun - (words_.back() & kRunMask);
      uint32_t take = static_cast<uint32_t>(
          std::min<uint64_t>(count, room));
      words_.back() += take;
      count -= take;
      continue;
    }
    uint32_t take = static_cast<uint32_t>(
        std::min<uint64_t>(count, kMaxRun));
    words_.push_back(kFillFlag | (value ? kFillValueBit : 0u) | take);
    count -= take;
  }
}

void WahBuilder::AppendGroup(uint32_t group) {
  group &= kAllOnes;
  ++num_groups_;
  if (group == 0) {
    AppendFill(false, 1);
  } else if (group == kAllOnes) {
    AppendFill(true, 1);
  } else {
    words_.push_back(group);
  }
}

void WahBuilder::AppendZeroGroups(uint64_t count) {
  num_groups_ += count;
  AppendFill(false, count);
}

std::vector<uint32_t> WahEncode(const BitVector& bits) {
  WahBuilder builder;
  size_t groups = (bits.size() + 30) / 31;
  for (size_t g = 0; g < groups; ++g) {
    builder.AppendGroup(ExtractGroup(bits, g));
  }
  return builder.TakeWords();
}

bool WahDecode(const std::vector<uint32_t>& words, size_t num_bits,
               BitVector* out) {
  *out = BitVector(num_bits);
  const size_t total_groups = (num_bits + 30) / 31;
  size_t g = 0;
  for (uint32_t word : words) {
    if ((word & kFillFlag) != 0) {
      uint64_t run = word & kRunMask;
      if (run == 0) return false;
      bool value = (word & kFillValueBit) != 0;
      if (g + run > total_groups) return false;
      if (value) {
        for (uint64_t k = 0; k < run; ++k, ++g) {
          size_t base = g * 31;
          size_t end = std::min(base + 31, num_bits);
          for (size_t i = base; i < end; ++i) out->Set(i);
        }
      } else {
        g += run;
      }
    } else {
      if (g >= total_groups) return false;
      size_t base = g * 31;
      for (int b = 0; b < 31; ++b) {
        if ((word >> b) & 1u) {
          size_t pos = base + static_cast<size_t>(b);
          if (pos >= num_bits) return false;  // padding bits must be zero
          out->Set(pos);
        }
      }
      ++g;
    }
  }
  return g == total_groups;
}

}  // namespace sigsetdb
