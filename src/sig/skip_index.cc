#include "sig/skip_index.h"

#include "sig/kernels.h"

namespace sigsetdb {

SlicePageSummary SlicePageSummary::FromPage(const Page& page) {
  const uint64_t* words = reinterpret_cast<const uint64_t*>(page.data());
  const SignatureKernels& k = ActiveKernels();
  SlicePageSummary s;
  s.live_bits = static_cast<uint32_t>(
      k.popcount_and(words, words, kPageSize / 8));
  for (size_t g = 0; g < 64; ++g) {
    // A group is nonzero exactly when it is not contained in the zero
    // vector; OR-reduce via the containment kernel's negation would cost a
    // scratch buffer, so reduce the 8 words directly.
    uint64_t any = 0;
    for (size_t w = 0; w < kSummaryWordsPerGroup; ++w) {
      any |= words[g * kSummaryWordsPerGroup + w];
    }
    if (any != 0) s.group_nonzero |= uint64_t{1} << g;
  }
  return s;
}

std::vector<bool> SliceSkipIndex::DeadColumns(
    const std::vector<uint32_t>& slices, uint32_t columns) const {
  std::vector<bool> dead(columns, false);
  if (slices.empty()) return dead;
  for (uint32_t p = 0; p < columns && p < pages_per_slice_; ++p) {
    uint64_t alive_groups = ~uint64_t{0};
    for (uint32_t j : slices) {
      alive_groups &= summary(j, p).group_nonzero;
      if (alive_groups == 0) break;
    }
    dead[p] = alive_groups == 0;
  }
  return dead;
}

void PageUnionIndex::EnsurePage(size_t page) {
  while (unions_.size() <= page) {
    unions_.emplace_back(f_);
    live_.push_back(0);
  }
}

}  // namespace sigsetdb
