// Vectorized signature kernels: the word-array operations every query
// bottoms out in, behind one runtime-dispatched function table.
//
//   AndAccumulate  acc[i] &= src[i]        (T ⊇ Q slice combination)
//   OrAccumulate   acc[i] |= src[i]        (T ⊆ Q slice combination)
//   ContainsAll    ∀i: sub[i] & ~super[i] == 0, early exit
//                                          (inclusion tests / SSF matching)
//   PopcountAnd    Σ popcount(a[i] & b[i]) (signature weights, skip summaries)
//   IntersectU64   sorted-array intersection (NIX posting-list plans)
//
// Three implementations of the same table:
//
//   ScalarKernels()   word-at-a-time loops with compiler auto-vectorization
//                     suppressed.  This is the ORACLE: the property tests
//                     assert every other target is bit-identical to it, and
//                     bench_kernels reports speedups against it.
//   PortableKernels() 4x-unrolled word loops the compiler is free to
//                     auto-vectorize — the baseline on any CPU.
//   Avx2Kernels()     256-bit AVX2 bodies compiled with a function-level
//                     target attribute; nullptr when the toolchain cannot
//                     build them.
//
// ActiveKernels() picks AVX2 when __builtin_cpu_supports("avx2") holds and
// the environment variable SIGSET_DISABLE_AVX2 is unset/0 (the CI matrix
// forces the portable leg with SIGSET_DISABLE_AVX2=1), portable otherwise.
// The choice is made once, on first use, and is immutable afterwards.
//
// All kernels demand only natural uint64_t alignment of their operands and
// tolerate any misalignment relative to the vector width (loads/stores are
// unaligned); n may be any value including 0.  Callers combining BitVectors
// must uphold the tail invariant (padding bits beyond size() are zero) —
// kernels operate on whole words and preserve it for AND/OR by construction.

#ifndef SIGSET_SIG_KERNELS_H_
#define SIGSET_SIG_KERNELS_H_

#include <cstddef>
#include <cstdint>

#include "util/bitvector.h"

namespace sigsetdb {

// One dispatch target: five function pointers plus a display name
// ("scalar", "portable", "avx2") surfaced by bench_kernels and tests.
struct SignatureKernels {
  const char* name;
  void (*and_accumulate)(uint64_t* acc, const uint64_t* src, size_t n);
  void (*or_accumulate)(uint64_t* acc, const uint64_t* src, size_t n);
  // True iff every set bit of sub[0..n) is also set in super[0..n).
  bool (*contains_all)(const uint64_t* sub, const uint64_t* super, size_t n);
  uint64_t (*popcount_and)(const uint64_t* a, const uint64_t* b, size_t n);
  // Intersection of two ascending-sorted arrays with std::set_intersection
  // semantics (duplicates contribute min multiplicity); writes the result
  // to out (capacity >= min(na, nb)) and returns the count.  out must not
  // alias either input.
  size_t (*intersect_u64)(const uint64_t* a, size_t na, const uint64_t* b,
                          size_t nb, uint64_t* out);
};

// The de-vectorized reference implementation (the property-test oracle).
const SignatureKernels& ScalarKernels();

// The unrolled portable implementation (auto-vectorizable baseline).
const SignatureKernels& PortableKernels();

// The AVX2 implementation, or nullptr when the build target cannot emit
// AVX2 code.  Callers must additionally check Avx2Supported() before
// invoking it on a live CPU (tests do; ActiveKernels already has).
const SignatureKernels* Avx2Kernels();

// True when the running CPU supports AVX2 (regardless of the env override).
bool Avx2Supported();

// The dispatched table: AVX2 when supported and not disabled via the
// SIGSET_DISABLE_AVX2 environment variable, else portable.  Resolved once.
const SignatureKernels& ActiveKernels();

// --- BitVector-level conveniences over the active table ---
// Both operands must have equal size(); the tail invariant is preserved.

inline void KernelAndWith(BitVector* acc, const BitVector& other) {
  ActiveKernels().and_accumulate(acc->mutable_words(), other.words(),
                                 acc->num_words());
}

inline void KernelOrWith(BitVector* acc, const BitVector& other) {
  ActiveKernels().or_accumulate(acc->mutable_words(), other.words(),
                                acc->num_words());
}

// sub ⊆ super as bit sets (early-exit inclusion test).
inline bool KernelIsSubsetOf(const BitVector& sub, const BitVector& super) {
  return ActiveKernels().contains_all(sub.words(), super.words(),
                                      sub.num_words());
}

inline uint64_t KernelCountAnd(const BitVector& a, const BitVector& b) {
  return ActiveKernels().popcount_and(a.words(), b.words(), a.num_words());
}

// Sorted-array intersection through the active table (see intersect_u64).
inline size_t KernelIntersectU64(const uint64_t* a, size_t na,
                                 const uint64_t* b, size_t nb,
                                 uint64_t* out) {
  return ActiveKernels().intersect_u64(a, na, b, nb, out);
}

}  // namespace sigsetdb

#endif  // SIGSET_SIG_KERNELS_H_
