#include "sig/signature.h"

#include <algorithm>

#include "util/hashing.h"

namespace sigsetdb {

std::vector<uint32_t> ElementSignaturePositions(
    uint64_t element, const SignatureConfig& config) {
  // Counter-mode hashing with rejection of duplicates gives m distinct,
  // uniformly distributed positions — the paper's "ideal hash" assumption.
  // The seed folds in (F, m) so signatures under different configurations
  // are decorrelated (h mod 256 and h mod 512 of the same h are not).
  std::vector<uint32_t> positions;
  positions.reserve(config.m);
  const uint64_t seed =
      Mix64(element ^ (static_cast<uint64_t>(config.f) << 32 | config.m));
  uint64_t counter = 0;
  while (positions.size() < config.m) {
    uint64_t h = HashCombine(seed, counter++);
    uint32_t pos = static_cast<uint32_t>(h % config.f);
    if (std::find(positions.begin(), positions.end(), pos) ==
        positions.end()) {
      positions.push_back(pos);
    }
  }
  std::sort(positions.begin(), positions.end());
  return positions;
}

BitVector MakeElementSignature(uint64_t element,
                               const SignatureConfig& config) {
  BitVector sig(config.f);
  for (uint32_t pos : ElementSignaturePositions(element, config)) {
    sig.Set(pos);
  }
  return sig;
}

BitVector MakeSetSignature(const ElementSet& set,
                           const SignatureConfig& config) {
  BitVector sig(config.f);
  for (uint64_t element : set) {
    for (uint32_t pos : ElementSignaturePositions(element, config)) {
      sig.Set(pos);
    }
  }
  return sig;
}

BitVector MakePartialQuerySignature(const ElementSet& query,
                                    size_t use_elements,
                                    const SignatureConfig& config) {
  BitVector sig(config.f);
  size_t n = std::min(use_elements, query.size());
  for (size_t i = 0; i < n; ++i) {
    for (uint32_t pos : ElementSignaturePositions(query[i], config)) {
      sig.Set(pos);
    }
  }
  return sig;
}

}  // namespace sigsetdb
