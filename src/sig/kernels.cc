#include "sig/kernels.h"

#include <bit>
#include <cstdlib>
#include <cstring>
#include <utility>

#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
#define SIGSET_HAVE_AVX2_TARGET 1
#include <immintrin.h>
#else
#define SIGSET_HAVE_AVX2_TARGET 0
#endif

namespace sigsetdb {
namespace {

// --- scalar reference (the oracle) ---
//
// These are the loops the rest of the repo ran before the kernel library
// existed, pinned to word-at-a-time execution: the optimizer is told not to
// vectorize them so that they stay an honest baseline for bench_kernels and
// an independent oracle for the property tests (a miscompiled vector path
// cannot hide behind an identically miscompiled reference).
#if defined(__clang__)
#define SIGSET_NO_VECTORIZE _Pragma("clang loop vectorize(disable)")
#define SIGSET_SCALAR_FN
#elif defined(__GNUC__)
#define SIGSET_NO_VECTORIZE
#define SIGSET_SCALAR_FN \
  __attribute__((optimize("no-tree-vectorize", "no-tree-slp-vectorize")))
#else
#define SIGSET_NO_VECTORIZE
#define SIGSET_SCALAR_FN
#endif

SIGSET_SCALAR_FN
void ScalarAndAccumulate(uint64_t* acc, const uint64_t* src, size_t n) {
  SIGSET_NO_VECTORIZE
  for (size_t i = 0; i < n; ++i) acc[i] &= src[i];
}

SIGSET_SCALAR_FN
void ScalarOrAccumulate(uint64_t* acc, const uint64_t* src, size_t n) {
  SIGSET_NO_VECTORIZE
  for (size_t i = 0; i < n; ++i) acc[i] |= src[i];
}

SIGSET_SCALAR_FN
bool ScalarContainsAll(const uint64_t* sub, const uint64_t* super, size_t n) {
  SIGSET_NO_VECTORIZE
  for (size_t i = 0; i < n; ++i) {
    if ((sub[i] & ~super[i]) != 0) return false;
  }
  return true;
}

SIGSET_SCALAR_FN
uint64_t ScalarPopcountAnd(const uint64_t* a, const uint64_t* b, size_t n) {
  uint64_t count = 0;
  SIGSET_NO_VECTORIZE
  for (size_t i = 0; i < n; ++i) {
    count += static_cast<uint64_t>(std::popcount(a[i] & b[i]));
  }
  return count;
}

SIGSET_SCALAR_FN
size_t ScalarIntersectU64(const uint64_t* a, size_t na, const uint64_t* b,
                          size_t nb, uint64_t* out) {
  // Textbook branchy merge — deliberately the naive loop the NIX smart
  // plans ran before this kernel existed (std::set_intersection), so the
  // bench speedups measure the real before/after.
  size_t i = 0, j = 0, k = 0;
  SIGSET_NO_VECTORIZE
  while (i < na && j < nb) {
    if (a[i] < b[j]) {
      ++i;
    } else if (b[j] < a[i]) {
      ++j;
    } else {
      out[k++] = a[i];
      ++i;
      ++j;
    }
  }
  return k;
}

// --- portable unrolled baseline ---
//
// Manually unrolled 4-wide so the compiler can keep four independent
// dependency chains in flight (and auto-vectorize where the target allows).

void PortableAndAccumulate(uint64_t* acc, const uint64_t* src, size_t n) {
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    acc[i] &= src[i];
    acc[i + 1] &= src[i + 1];
    acc[i + 2] &= src[i + 2];
    acc[i + 3] &= src[i + 3];
  }
  for (; i < n; ++i) acc[i] &= src[i];
}

void PortableOrAccumulate(uint64_t* acc, const uint64_t* src, size_t n) {
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    acc[i] |= src[i];
    acc[i + 1] |= src[i + 1];
    acc[i + 2] |= src[i + 2];
    acc[i + 3] |= src[i + 3];
  }
  for (; i < n; ++i) acc[i] |= src[i];
}

bool PortableContainsAll(const uint64_t* sub, const uint64_t* super,
                         size_t n) {
  size_t i = 0;
  // OR the violations of four lanes together; one branch per 4 words keeps
  // the early exit (the property SSF scans rely on: most signatures fail on
  // the first word) while letting the common all-clear case run branch-lean.
  for (; i + 4 <= n; i += 4) {
    uint64_t violation = (sub[i] & ~super[i]) | (sub[i + 1] & ~super[i + 1]) |
                         (sub[i + 2] & ~super[i + 2]) |
                         (sub[i + 3] & ~super[i + 3]);
    if (violation != 0) return false;
  }
  for (; i < n; ++i) {
    if ((sub[i] & ~super[i]) != 0) return false;
  }
  return true;
}

uint64_t PortablePopcountAnd(const uint64_t* a, const uint64_t* b, size_t n) {
  uint64_t c0 = 0, c1 = 0, c2 = 0, c3 = 0;
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    c0 += static_cast<uint64_t>(std::popcount(a[i] & b[i]));
    c1 += static_cast<uint64_t>(std::popcount(a[i + 1] & b[i + 1]));
    c2 += static_cast<uint64_t>(std::popcount(a[i + 2] & b[i + 2]));
    c3 += static_cast<uint64_t>(std::popcount(a[i + 3] & b[i + 3]));
  }
  uint64_t count = c0 + c1 + c2 + c3;
  for (; i < n; ++i) {
    count += static_cast<uint64_t>(std::popcount(a[i] & b[i]));
  }
  return count;
}

// Branchless merge core: one comparison pair per step, no unpredictable
// branch on the match outcome.  Emits min-multiplicity duplicates exactly
// like std::set_intersection (equal heads advance both cursors), so it is
// bit-identical to the scalar oracle on any sorted input.
size_t BranchlessMergeIntersect(const uint64_t* a, size_t na,
                                const uint64_t* b, size_t nb, uint64_t* out) {
  size_t i = 0, j = 0, k = 0;
  while (i < na && j < nb) {
    const uint64_t x = a[i];
    const uint64_t y = b[j];
    out[k] = x;
    k += (x == y);
    i += (x <= y);
    j += (y <= x);
  }
  return k;
}

// Galloping (exponential-probe) intersection for skewed size ratios: for
// each element of the small array, gallop forward in the large one.  The
// large-side cursor only ever advances, and a matched element is consumed
// (lo moves past it), which preserves min-multiplicity semantics when
// either side carries duplicates.
size_t GallopIntersect(const uint64_t* small, size_t ns, const uint64_t* large,
                       size_t nl, uint64_t* out) {
  size_t lo = 0, k = 0;
  for (size_t i = 0; i < ns && lo < nl; ++i) {
    const uint64_t x = small[i];
    // Probe 1, 2, 4, ... past lo until large[lo+step] >= x, then binary
    // search the bracketed window for the first element >= x.
    size_t hi = lo;
    size_t step = 1;
    while (hi < nl && large[hi] < x) {
      lo = hi + 1;
      hi = lo + step;
      step *= 2;
    }
    if (hi > nl) hi = nl;
    while (lo < hi) {
      const size_t mid = lo + (hi - lo) / 2;
      if (large[mid] < x) {
        lo = mid + 1;
      } else {
        hi = mid;
      }
    }
    if (lo < nl && large[lo] == x) {
      out[k++] = x;
      ++lo;
    }
  }
  return k;
}

// Size ratio beyond which galloping beats merging.  The classic crossover
// is around nl/ns ≈ 32 for in-cache uint64 arrays; below it the branchless
// merge's perfect locality wins.
constexpr size_t kGallopRatio = 32;

size_t PortableIntersectU64(const uint64_t* a, size_t na, const uint64_t* b,
                            size_t nb, uint64_t* out) {
  if (na == 0 || nb == 0) return 0;
  if (na > nb) {
    std::swap(a, b);
    std::swap(na, nb);
  }
  if (nb / na >= kGallopRatio) return GallopIntersect(a, na, b, nb, out);
  return BranchlessMergeIntersect(a, na, b, nb, out);
}

#if SIGSET_HAVE_AVX2_TARGET

// --- AVX2 path ---
//
// Function-level target attributes let a single TU carry AVX2 bodies while
// the rest of the library keeps the default ISA; ActiveKernels() only hands
// these out after __builtin_cpu_supports("avx2") confirmed the CPU.  All
// memory operands use unaligned loads/stores: slice pages arrive as
// reinterpret_cast word views of page buffers, and BitVector words carry no
// 32-byte guarantee.

__attribute__((target("avx2"))) void Avx2AndAccumulate(uint64_t* acc,
                                                       const uint64_t* src,
                                                       size_t n) {
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    __m256i a0 = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(acc + i));
    __m256i a1 =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(acc + i + 4));
    __m256i s0 = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src + i));
    __m256i s1 =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src + i + 4));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(acc + i),
                        _mm256_and_si256(a0, s0));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(acc + i + 4),
                        _mm256_and_si256(a1, s1));
  }
  for (; i < n; ++i) acc[i] &= src[i];
}

__attribute__((target("avx2"))) void Avx2OrAccumulate(uint64_t* acc,
                                                      const uint64_t* src,
                                                      size_t n) {
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    __m256i a0 = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(acc + i));
    __m256i a1 =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(acc + i + 4));
    __m256i s0 = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src + i));
    __m256i s1 =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src + i + 4));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(acc + i),
                        _mm256_or_si256(a0, s0));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(acc + i + 4),
                        _mm256_or_si256(a1, s1));
  }
  for (; i < n; ++i) acc[i] |= src[i];
}

__attribute__((target("avx2"))) bool Avx2ContainsAll(const uint64_t* sub,
                                                     const uint64_t* super,
                                                     size_t n) {
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    __m256i s = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(sub + i));
    __m256i p =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(super + i));
    // testc returns 1 iff (s & ~p) == 0 across the whole vector — exactly
    // the containment condition, with the early exit per 256-bit block.
    if (!_mm256_testc_si256(p, s)) return false;
  }
  for (; i < n; ++i) {
    if ((sub[i] & ~super[i]) != 0) return false;
  }
  return true;
}

__attribute__((target("avx2"))) uint64_t Avx2PopcountAnd(const uint64_t* a,
                                                         const uint64_t* b,
                                                         size_t n) {
  // AND in 256-bit blocks, popcount the lanes with scalar popcnt (Haswell+
  // popcnt is 1/cycle; a Harley-Seal vector popcount only pays off beyond
  // the slice sizes this repo touches).
  uint64_t c0 = 0, c1 = 0, c2 = 0, c3 = 0;
  size_t i = 0;
  alignas(32) uint64_t lanes[4];
  for (; i + 4 <= n; i += 4) {
    __m256i va = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i));
    __m256i vb = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + i));
    _mm256_store_si256(reinterpret_cast<__m256i*>(lanes),
                       _mm256_and_si256(va, vb));
    c0 += static_cast<uint64_t>(std::popcount(lanes[0]));
    c1 += static_cast<uint64_t>(std::popcount(lanes[1]));
    c2 += static_cast<uint64_t>(std::popcount(lanes[2]));
    c3 += static_cast<uint64_t>(std::popcount(lanes[3]));
  }
  uint64_t count = c0 + c1 + c2 + c3;
  for (; i < n; ++i) {
    count += static_cast<uint64_t>(std::popcount(a[i] & b[i]));
  }
  return count;
}

// True when x[0..n) contains two equal adjacent elements.  On a sorted
// array this is exactly "x has a duplicate"; checked with 256-bit
// compare-shifted-self blocks so the prescan costs a fraction of the
// intersection it guards.
__attribute__((target("avx2"))) bool Avx2HasAdjacentDup(const uint64_t* x,
                                                        size_t n) {
  size_t i = 0;
  for (; i + 5 <= n; i += 4) {
    __m256i v = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(x + i));
    __m256i w =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(x + i + 1));
    if (_mm256_movemask_epi8(_mm256_cmpeq_epi64(v, w)) != 0) return true;
  }
  for (; i + 1 < n; ++i) {
    if (x[i] == x[i + 1]) return true;
  }
  return false;
}

// Left-pack shuffle control per 4-bit match mask: dword indices that move
// the matched 64-bit lanes (as dword pairs 2i, 2i+1) to the front of the
// vector, ascending, for _mm256_permutevar8x32_epi32.  Unmatched tail
// lanes are don't-cares (they land past the popcount cursor).
alignas(32) constexpr uint32_t kLeftPack4x64[16][8] = {
    {0, 1, 2, 3, 4, 5, 6, 7}, {0, 1, 0, 0, 0, 0, 0, 0},
    {2, 3, 0, 0, 0, 0, 0, 0}, {0, 1, 2, 3, 0, 0, 0, 0},
    {4, 5, 0, 0, 0, 0, 0, 0}, {0, 1, 4, 5, 0, 0, 0, 0},
    {2, 3, 4, 5, 0, 0, 0, 0}, {0, 1, 2, 3, 4, 5, 0, 0},
    {6, 7, 0, 0, 0, 0, 0, 0}, {0, 1, 6, 7, 0, 0, 0, 0},
    {2, 3, 6, 7, 0, 0, 0, 0}, {0, 1, 2, 3, 6, 7, 0, 0},
    {4, 5, 6, 7, 0, 0, 0, 0}, {0, 1, 4, 5, 6, 7, 0, 0},
    {2, 3, 4, 5, 6, 7, 0, 0}, {0, 1, 2, 3, 4, 5, 6, 7}};

__attribute__((target("avx2"))) size_t Avx2IntersectU64(const uint64_t* a,
                                                        size_t na,
                                                        const uint64_t* b,
                                                        size_t nb,
                                                        uint64_t* out) {
  if (na == 0 || nb == 0) return 0;
  if (na > nb) {
    std::swap(a, b);
    std::swap(na, nb);
  }
  // Skewed plans gallop: probing log(nl) elements per lookup beats touching
  // every block of the large list.
  if (nb / na >= kGallopRatio) return GallopIntersect(a, na, b, nb, out);
  // The 4x4 all-pairs block compare below pairs each a-lane with at most
  // one match, which is only exact when neither input repeats a value.
  // Posting lists never do (one posting per OID per key); the prescan keeps
  // the kernel honest for arbitrary callers by routing duplicate-bearing
  // inputs through the merge, whose multiplicity semantics are the oracle's.
  if (Avx2HasAdjacentDup(a, na) || Avx2HasAdjacentDup(b, nb)) {
    return BranchlessMergeIntersect(a, na, b, nb, out);
  }
  size_t i = 0, j = 0, k = 0;
  while (i + 4 <= na && j + 4 <= nb) {
    const __m256i va =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i));
    const __m256i vb =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + j));
    // Compare va against all four rotations of vb: every (a-lane, b-lane)
    // pair is tested, so a match mask per a-lane falls out of the ORs.
    const __m256i r1 = _mm256_permute4x64_epi64(vb, 0x39);  // 1,2,3,0
    const __m256i r2 = _mm256_permute4x64_epi64(vb, 0x4e);  // 2,3,0,1
    const __m256i r3 = _mm256_permute4x64_epi64(vb, 0x93);  // 3,0,1,2
    const __m256i eq = _mm256_or_si256(
        _mm256_or_si256(_mm256_cmpeq_epi64(va, vb),
                        _mm256_cmpeq_epi64(va, r1)),
        _mm256_or_si256(_mm256_cmpeq_epi64(va, r2),
                        _mm256_cmpeq_epi64(va, r3)));
    const int mask = _mm256_movemask_pd(_mm256_castsi256_pd(eq));
    if (k + 4 <= na) {
      // Branch-free emission: left-pack the matched lanes and bump the
      // cursor by the match count.  A match-free block stores 32 don't-care
      // bytes at out+k and advances nothing — cheaper than a 37 %-taken
      // branch on `mask != 0`, which is what capped this loop's throughput.
      const __m256i idx = _mm256_load_si256(
          reinterpret_cast<const __m256i*>(kLeftPack4x64[mask]));
      _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + k),
                          _mm256_permutevar8x32_epi32(va, idx));
      k += static_cast<size_t>(std::popcount(static_cast<unsigned>(mask)));
    } else {
      // Within the last 3 slots of the out buffer (capacity is only
      // guaranteed to be min(na, nb)): emit scalar, no over-write.
      int m = mask;
      while (m != 0) {
        const int lane = std::countr_zero(static_cast<unsigned>(m));
        out[k++] = a[i + static_cast<size_t>(lane)];
        m &= m - 1;
      }
    }
    // Discard whichever block's maximum is smaller: every element it could
    // still match lies inside the other block, and that pairing was just
    // tested.  Equal maxima retire both blocks.
    const uint64_t amax = a[i + 3];
    const uint64_t bmax = b[j + 3];
    i += (amax <= bmax) ? 4 : 0;
    j += (bmax <= amax) ? 4 : 0;
  }
  return k + BranchlessMergeIntersect(a + i, na - i, b + j, nb - j, out + k);
}

#endif  // SIGSET_HAVE_AVX2_TARGET

constexpr SignatureKernels kScalar = {
    "scalar", ScalarAndAccumulate, ScalarOrAccumulate, ScalarContainsAll,
    ScalarPopcountAnd, ScalarIntersectU64};

constexpr SignatureKernels kPortable = {
    "portable", PortableAndAccumulate, PortableOrAccumulate,
    PortableContainsAll, PortablePopcountAnd, PortableIntersectU64};

#if SIGSET_HAVE_AVX2_TARGET
constexpr SignatureKernels kAvx2 = {"avx2", Avx2AndAccumulate,
                                    Avx2OrAccumulate, Avx2ContainsAll,
                                    Avx2PopcountAnd, Avx2IntersectU64};
#endif

bool Avx2Disabled() {
  const char* env = std::getenv("SIGSET_DISABLE_AVX2");
  return env != nullptr && env[0] != '\0' && std::strcmp(env, "0") != 0;
}

}  // namespace

const SignatureKernels& ScalarKernels() { return kScalar; }

const SignatureKernels& PortableKernels() { return kPortable; }

const SignatureKernels* Avx2Kernels() {
#if SIGSET_HAVE_AVX2_TARGET
  return &kAvx2;
#else
  return nullptr;
#endif
}

bool Avx2Supported() {
#if SIGSET_HAVE_AVX2_TARGET
  return __builtin_cpu_supports("avx2") != 0;
#else
  return false;
#endif
}

const SignatureKernels& ActiveKernels() {
  // Resolved once; the env override is read at first use, matching how the
  // CI matrix leg sets SIGSET_DISABLE_AVX2 before the process starts.
  static const SignatureKernels& active = [&]() -> const SignatureKernels& {
    const SignatureKernels* avx2 = Avx2Kernels();
    if (avx2 != nullptr && Avx2Supported() && !Avx2Disabled()) return *avx2;
    return kPortable;
  }();
  return active;
}

}  // namespace sigsetdb
