#include "sig/kernels.h"

#include <bit>
#include <cstdlib>
#include <cstring>

#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
#define SIGSET_HAVE_AVX2_TARGET 1
#include <immintrin.h>
#else
#define SIGSET_HAVE_AVX2_TARGET 0
#endif

namespace sigsetdb {
namespace {

// --- scalar reference (the oracle) ---
//
// These are the loops the rest of the repo ran before the kernel library
// existed, pinned to word-at-a-time execution: the optimizer is told not to
// vectorize them so that they stay an honest baseline for bench_kernels and
// an independent oracle for the property tests (a miscompiled vector path
// cannot hide behind an identically miscompiled reference).
#if defined(__clang__)
#define SIGSET_NO_VECTORIZE _Pragma("clang loop vectorize(disable)")
#define SIGSET_SCALAR_FN
#elif defined(__GNUC__)
#define SIGSET_NO_VECTORIZE
#define SIGSET_SCALAR_FN \
  __attribute__((optimize("no-tree-vectorize", "no-tree-slp-vectorize")))
#else
#define SIGSET_NO_VECTORIZE
#define SIGSET_SCALAR_FN
#endif

SIGSET_SCALAR_FN
void ScalarAndAccumulate(uint64_t* acc, const uint64_t* src, size_t n) {
  SIGSET_NO_VECTORIZE
  for (size_t i = 0; i < n; ++i) acc[i] &= src[i];
}

SIGSET_SCALAR_FN
void ScalarOrAccumulate(uint64_t* acc, const uint64_t* src, size_t n) {
  SIGSET_NO_VECTORIZE
  for (size_t i = 0; i < n; ++i) acc[i] |= src[i];
}

SIGSET_SCALAR_FN
bool ScalarContainsAll(const uint64_t* sub, const uint64_t* super, size_t n) {
  SIGSET_NO_VECTORIZE
  for (size_t i = 0; i < n; ++i) {
    if ((sub[i] & ~super[i]) != 0) return false;
  }
  return true;
}

SIGSET_SCALAR_FN
uint64_t ScalarPopcountAnd(const uint64_t* a, const uint64_t* b, size_t n) {
  uint64_t count = 0;
  SIGSET_NO_VECTORIZE
  for (size_t i = 0; i < n; ++i) {
    count += static_cast<uint64_t>(std::popcount(a[i] & b[i]));
  }
  return count;
}

// --- portable unrolled baseline ---
//
// Manually unrolled 4-wide so the compiler can keep four independent
// dependency chains in flight (and auto-vectorize where the target allows).

void PortableAndAccumulate(uint64_t* acc, const uint64_t* src, size_t n) {
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    acc[i] &= src[i];
    acc[i + 1] &= src[i + 1];
    acc[i + 2] &= src[i + 2];
    acc[i + 3] &= src[i + 3];
  }
  for (; i < n; ++i) acc[i] &= src[i];
}

void PortableOrAccumulate(uint64_t* acc, const uint64_t* src, size_t n) {
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    acc[i] |= src[i];
    acc[i + 1] |= src[i + 1];
    acc[i + 2] |= src[i + 2];
    acc[i + 3] |= src[i + 3];
  }
  for (; i < n; ++i) acc[i] |= src[i];
}

bool PortableContainsAll(const uint64_t* sub, const uint64_t* super,
                         size_t n) {
  size_t i = 0;
  // OR the violations of four lanes together; one branch per 4 words keeps
  // the early exit (the property SSF scans rely on: most signatures fail on
  // the first word) while letting the common all-clear case run branch-lean.
  for (; i + 4 <= n; i += 4) {
    uint64_t violation = (sub[i] & ~super[i]) | (sub[i + 1] & ~super[i + 1]) |
                         (sub[i + 2] & ~super[i + 2]) |
                         (sub[i + 3] & ~super[i + 3]);
    if (violation != 0) return false;
  }
  for (; i < n; ++i) {
    if ((sub[i] & ~super[i]) != 0) return false;
  }
  return true;
}

uint64_t PortablePopcountAnd(const uint64_t* a, const uint64_t* b, size_t n) {
  uint64_t c0 = 0, c1 = 0, c2 = 0, c3 = 0;
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    c0 += static_cast<uint64_t>(std::popcount(a[i] & b[i]));
    c1 += static_cast<uint64_t>(std::popcount(a[i + 1] & b[i + 1]));
    c2 += static_cast<uint64_t>(std::popcount(a[i + 2] & b[i + 2]));
    c3 += static_cast<uint64_t>(std::popcount(a[i + 3] & b[i + 3]));
  }
  uint64_t count = c0 + c1 + c2 + c3;
  for (; i < n; ++i) {
    count += static_cast<uint64_t>(std::popcount(a[i] & b[i]));
  }
  return count;
}

#if SIGSET_HAVE_AVX2_TARGET

// --- AVX2 path ---
//
// Function-level target attributes let a single TU carry AVX2 bodies while
// the rest of the library keeps the default ISA; ActiveKernels() only hands
// these out after __builtin_cpu_supports("avx2") confirmed the CPU.  All
// memory operands use unaligned loads/stores: slice pages arrive as
// reinterpret_cast word views of page buffers, and BitVector words carry no
// 32-byte guarantee.

__attribute__((target("avx2"))) void Avx2AndAccumulate(uint64_t* acc,
                                                       const uint64_t* src,
                                                       size_t n) {
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    __m256i a0 = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(acc + i));
    __m256i a1 =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(acc + i + 4));
    __m256i s0 = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src + i));
    __m256i s1 =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src + i + 4));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(acc + i),
                        _mm256_and_si256(a0, s0));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(acc + i + 4),
                        _mm256_and_si256(a1, s1));
  }
  for (; i < n; ++i) acc[i] &= src[i];
}

__attribute__((target("avx2"))) void Avx2OrAccumulate(uint64_t* acc,
                                                      const uint64_t* src,
                                                      size_t n) {
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    __m256i a0 = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(acc + i));
    __m256i a1 =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(acc + i + 4));
    __m256i s0 = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src + i));
    __m256i s1 =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src + i + 4));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(acc + i),
                        _mm256_or_si256(a0, s0));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(acc + i + 4),
                        _mm256_or_si256(a1, s1));
  }
  for (; i < n; ++i) acc[i] |= src[i];
}

__attribute__((target("avx2"))) bool Avx2ContainsAll(const uint64_t* sub,
                                                     const uint64_t* super,
                                                     size_t n) {
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    __m256i s = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(sub + i));
    __m256i p =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(super + i));
    // testc returns 1 iff (s & ~p) == 0 across the whole vector — exactly
    // the containment condition, with the early exit per 256-bit block.
    if (!_mm256_testc_si256(p, s)) return false;
  }
  for (; i < n; ++i) {
    if ((sub[i] & ~super[i]) != 0) return false;
  }
  return true;
}

__attribute__((target("avx2"))) uint64_t Avx2PopcountAnd(const uint64_t* a,
                                                         const uint64_t* b,
                                                         size_t n) {
  // AND in 256-bit blocks, popcount the lanes with scalar popcnt (Haswell+
  // popcnt is 1/cycle; a Harley-Seal vector popcount only pays off beyond
  // the slice sizes this repo touches).
  uint64_t c0 = 0, c1 = 0, c2 = 0, c3 = 0;
  size_t i = 0;
  alignas(32) uint64_t lanes[4];
  for (; i + 4 <= n; i += 4) {
    __m256i va = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i));
    __m256i vb = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + i));
    _mm256_store_si256(reinterpret_cast<__m256i*>(lanes),
                       _mm256_and_si256(va, vb));
    c0 += static_cast<uint64_t>(std::popcount(lanes[0]));
    c1 += static_cast<uint64_t>(std::popcount(lanes[1]));
    c2 += static_cast<uint64_t>(std::popcount(lanes[2]));
    c3 += static_cast<uint64_t>(std::popcount(lanes[3]));
  }
  uint64_t count = c0 + c1 + c2 + c3;
  for (; i < n; ++i) {
    count += static_cast<uint64_t>(std::popcount(a[i] & b[i]));
  }
  return count;
}

#endif  // SIGSET_HAVE_AVX2_TARGET

constexpr SignatureKernels kScalar = {
    "scalar", ScalarAndAccumulate, ScalarOrAccumulate, ScalarContainsAll,
    ScalarPopcountAnd};

constexpr SignatureKernels kPortable = {
    "portable", PortableAndAccumulate, PortableOrAccumulate,
    PortableContainsAll, PortablePopcountAnd};

#if SIGSET_HAVE_AVX2_TARGET
constexpr SignatureKernels kAvx2 = {"avx2", Avx2AndAccumulate,
                                    Avx2OrAccumulate, Avx2ContainsAll,
                                    Avx2PopcountAnd};
#endif

bool Avx2Disabled() {
  const char* env = std::getenv("SIGSET_DISABLE_AVX2");
  return env != nullptr && env[0] != '\0' && std::strcmp(env, "0") != 0;
}

}  // namespace

const SignatureKernels& ScalarKernels() { return kScalar; }

const SignatureKernels& PortableKernels() { return kPortable; }

const SignatureKernels* Avx2Kernels() {
#if SIGSET_HAVE_AVX2_TARGET
  return &kAvx2;
#else
  return nullptr;
#endif
}

bool Avx2Supported() {
#if SIGSET_HAVE_AVX2_TARGET
  return __builtin_cpu_supports("avx2") != 0;
#else
  return false;
#endif
}

const SignatureKernels& ActiveKernels() {
  // Resolved once; the env override is read at first use, matching how the
  // CI matrix leg sets SIGSET_DISABLE_AVX2 before the process starts.
  static const SignatureKernels& active = [&]() -> const SignatureKernels& {
    const SignatureKernels* avx2 = Avx2Kernels();
    if (avx2 != nullptr && Avx2Supported() && !Avx2Disabled()) return *avx2;
    return kPortable;
  }();
  return active;
}

}  // namespace sigsetdb
