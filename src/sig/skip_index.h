// Slice-page skip index: per-page summaries that let T ⊇ Q (and the other
// combine scans) prove pages irrelevant without reading them.
//
// BSSF side — SliceSkipIndex.  Every slice page gets a SlicePageSummary:
//
//   group_nonzero  one bit per 8-word group of the page (64 groups cover the
//                  page's 512 words); bit g is set iff any word of group g
//                  is nonzero — a word-granularity OR-aggregate.
//   live_bits      popcount of the page (live-bit count).
//
// For an AND-combine over slices S (superset scans, the ones side of
// equality, per-element overlap probes), a slot can survive only if every
// scanned slice has its bit set, so group g of page column p can hold a
// survivor only if group_nonzero(j, p) has bit g for EVERY j ∈ S.  When the
// AND of the scanned slices' group bitmaps is zero, the whole page column is
// dead: the scan zeroes the accumulator range and skips |S| page reads.
// For an OR-combine (subset scans), a page with live_bits == 0 contributes
// nothing and its single read is skipped.  Both rules are conservative —
// they can only skip reads whose content provably cannot change the result,
// so candidate sets are unchanged (the differential fuzz suite pins this).
//
// SSF side — PageUnionIndex.  Every signature page gets the OR of the
// signatures deposited into it (an F-bit union, again an OR-aggregate over
// the page's occupants) plus the count of live (non-tombstoned) slots.  A
// T ⊇ Q scan skips a page when the query signature is not covered by the
// union (no resident signature can cover it); any scan skips a page whose
// live count is zero.  Unions grow monotonically on writes — slot reuse and
// deletes leave stale bits, which keeps the union an upper bound (sound) —
// and are rebuilt exactly by compaction/recovery.
//
// Summaries are maintained by the write paths (which always hold the page
// image they just produced, so recomputation is exact and costs no I/O) and
// rebuilt by CreateFromExisting's recovery scan.  Maintenance is always on;
// whether scans *consult* the index is a per-facility switch, default off,
// so page-access totals are bit-identical to the pre-skip-index behaviour
// unless a caller opts in.  Skipped pages are charged to IoStats'
// pages_skipped counter, which tracing/EXPLAIN surface next to reads.

#ifndef SIGSET_SIG_SKIP_INDEX_H_
#define SIGSET_SIG_SKIP_INDEX_H_

#include <cstdint>
#include <vector>

#include "storage/page.h"
#include "util/bitvector.h"

namespace sigsetdb {

// Words the group_nonzero bitmap divides a page into: 512 words / 64 bits.
inline constexpr size_t kSummaryWordsPerGroup = (kPageSize / 8) / 64;

// Summary of one slice page (16 bytes per 4 KiB page, 0.4 % overhead).
struct SlicePageSummary {
  uint64_t group_nonzero = 0;
  uint32_t live_bits = 0;

  bool empty() const { return live_bits == 0; }

  // Exact recomputation from a page image (no I/O; pure CPU).
  static SlicePageSummary FromPage(const Page& page);
};

// Per-(slice, page-in-slice) summaries for a bit-sliced store.
class SliceSkipIndex {
 public:
  SliceSkipIndex() = default;
  SliceSkipIndex(uint32_t num_slices, uint32_t pages_per_slice)
      : pages_per_slice_(pages_per_slice),
        summaries_(static_cast<size_t>(num_slices) * pages_per_slice) {}

  // Replaces the summary of slice page `page_no` (the slice file's PageId,
  // slice-major layout) from the page image just read or written.
  void Update(PageId page_no, const Page& page) {
    summaries_[page_no] = SlicePageSummary::FromPage(page);
  }

  const SlicePageSummary& summary(uint32_t slice, uint32_t page) const {
    return summaries_[static_cast<size_t>(slice) * pages_per_slice_ + page];
  }

  // AND-combine planning: dead[p] is true when page column p cannot hold a
  // surviving slot for an AND over `slices` (the scanned slices' group
  // bitmaps AND to zero).  `columns` caps the scan range (the accumulator's
  // page count).  An empty `slices` yields no dead columns (the AND
  // identity is all-ones).
  std::vector<bool> DeadColumns(const std::vector<uint32_t>& slices,
                                uint32_t columns) const;

  uint32_t pages_per_slice() const { return pages_per_slice_; }

 private:
  uint32_t pages_per_slice_ = 0;
  std::vector<SlicePageSummary> summaries_;
};

// Per-signature-page union signatures + live counts for a sequential store.
class PageUnionIndex {
 public:
  explicit PageUnionIndex(uint32_t f) : f_(f) {}

  // Grows the index to cover `page + 1` pages (new pages start empty).
  void EnsurePage(size_t page);

  // Records a signature deposited into `page` and counts its slot live
  // (deposits target fresh appends or tombstoned slots, never a slot
  // already counted live).
  void AddSignature(size_t page, const BitVector& sig) {
    EnsurePage(page);
    unions_[page].OrWith(sig);
    ++live_[page];
  }

  void OnDelete(size_t page) {
    if (page < live_.size() && live_[page] > 0) --live_[page];
  }

  // Recovery: resets page `page` to an exact (union, live) pair.
  void SetPage(size_t page, BitVector union_sig, uint32_t live) {
    EnsurePage(page);
    unions_[page] = std::move(union_sig);
    live_[page] = live;
  }

  size_t num_pages() const { return unions_.size(); }
  // The union of signatures ever deposited into `page` (upper bound on any
  // resident signature).  Pages beyond the index are reported as unknown
  // (all-ones), never skippable.
  const BitVector& page_union(size_t page) const { return unions_[page]; }
  uint32_t live(size_t page) const { return live_[page]; }

 private:
  uint32_t f_;
  std::vector<BitVector> unions_;
  std::vector<uint32_t> live_;
};

}  // namespace sigsetdb

#endif  // SIGSET_SIG_SKIP_INDEX_H_
