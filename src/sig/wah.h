// Word-Aligned Hybrid (WAH) bitmap compression.
//
// The paper's bit slices are sparse: a slice of a BSSF with small m has
// one-bit density ≈ m_t/F ≈ 4–10 %.  At the paper's N = 32,000 a slice is
// a single page either way, but as N grows each slice spans ⌈N/(P·b)⌉
// pages and a query pays that multiple per slice.  Run-length compressing
// the slices — exactly what modern bitmap indexes (WAH/Concise/Roaring
// ancestry) do — collapses the zero runs.  CompressedBitSlicedSignatureFile
// builds on this encoder; the ablation bench quantifies the effect.
//
// Format (32-bit words):
//   literal word: MSB = 0, low 31 bits = payload (bit i of the group);
//   fill word:    MSB = 1, bit 30 = fill value, low 30 bits = run length in
//                 31-bit groups (1 .. 2^30−1).
// A bitmap of n bits is ⌈n/31⌉ groups; the final group is zero-padded.

#ifndef SIGSET_SIG_WAH_H_
#define SIGSET_SIG_WAH_H_

#include <cstdint>
#include <vector>

#include "util/bitvector.h"

namespace sigsetdb {

// Encodes `bits` into WAH words.
std::vector<uint32_t> WahEncode(const BitVector& bits);

// Decodes `words` into a BitVector of `num_bits` bits.  Returns false when
// the encoding does not cover exactly ⌈num_bits/31⌉ groups or contains
// malformed words (zero-length fills).
bool WahDecode(const std::vector<uint32_t>& words, size_t num_bits,
               BitVector* out);

// Incremental encoder: append bits one group at a time (used when building
// many slices in one pass over the signatures).
class WahBuilder {
 public:
  // Appends one 31-bit group (low 31 bits of `group`).
  void AppendGroup(uint32_t group);

  // Appends `count` all-zero groups.
  void AppendZeroGroups(uint64_t count);

  // Returns the encoded words (builder can keep appending afterwards).
  const std::vector<uint32_t>& words() const { return words_; }
  std::vector<uint32_t> TakeWords() { return std::move(words_); }

  uint64_t num_groups() const { return num_groups_; }

 private:
  static constexpr uint32_t kAllOnes = 0x7fffffffu;
  static constexpr uint32_t kMaxRun = (1u << 30) - 1;

  void AppendFill(bool value, uint64_t count);

  std::vector<uint32_t> words_;
  uint64_t num_groups_ = 0;
};

}  // namespace sigsetdb

#endif  // SIGSET_SIG_WAH_H_
