#include "sig/bitpack.h"

namespace sigsetdb {

void ExtractBits(const uint8_t* src, size_t bit_off, BitVector* out) {
  const size_t n = out->size();
  out->ClearAll();
  // Word-at-a-time gather: assemble each destination word from the two
  // source bytes spanning it.  Simple byte loop with shift; fast enough for
  // full SSF scans (tens of MB/s of signature data per millisecond).
  size_t src_byte = bit_off >> 3;
  unsigned shift = static_cast<unsigned>(bit_off & 7);
  uint64_t* words = out->mutable_words();
  size_t full_bytes = (n + 7) / 8;
  for (size_t i = 0; i < full_bytes; ++i) {
    uint8_t b = static_cast<uint8_t>(src[src_byte + i] >> shift);
    // Pull the high bits from the following byte only when bits of this
    // destination byte actually come from it; the guard also keeps the read
    // inside the source buffer when the extraction ends at its last byte.
    if (shift != 0 && i * 8 + 8 - shift < n) {
      b = static_cast<uint8_t>(b | (src[src_byte + i + 1] << (8 - shift)));
    }
    words[i >> 3] |= static_cast<uint64_t>(b) << ((i & 7) * 8);
  }
  // Zero any bits beyond n in the last word.
  size_t tail = n & 63;
  if (tail != 0) {
    words[(n - 1) >> 6] &= (uint64_t{1} << tail) - 1;
  }
}

void DepositBits(const BitVector& in, uint8_t* dst, size_t bit_off) {
  // Per-bit store: deposits happen once per insert (not per scan), so
  // simplicity wins over speed here.
  for (size_t i = 0; i < in.size(); ++i) {
    size_t pos = bit_off + i;
    uint8_t mask = static_cast<uint8_t>(1u << (pos & 7));
    if (in.Test(i)) {
      dst[pos >> 3] |= mask;
    } else {
      dst[pos >> 3] &= static_cast<uint8_t>(~mask);
    }
  }
}

}  // namespace sigsetdb
