// Cache-resident hot-slice tier: pinned in-memory copies of the hottest
// slice pages, consulted after the skip index and before the buffer pool.
//
// The paper charges every slice access one page read; the skip index (see
// sig/skip_index.h) removes reads it can *prove* irrelevant, while this tier
// removes the disk/buffer-pool trip for reads that remain necessary but
// keep landing on the same few pages — the query-signature slices of a
// skewed workload.  Per-slice-page access counters (the same monotonic
// counter discipline as the metrics registry; ExportMetrics syncs the
// aggregates into it) drive admission: a page whose counter reaches the
// admission threshold is pinned as a private copy; when the tier is full,
// the coldest pinned page is evicted iff the newcomer is strictly hotter.
//
// Accounting: a hit is charged to IoStats::pages_hot by the caller, never
// to page_reads — so with the tier on,
//     page_reads(on) + pages_hot(on) == page_reads(off)
// for any query stream (every slice access still happens exactly once; only
// where it was served changes), and candidate sets are bit-identical (the
// pinned copy is kept coherent by the write paths, which always hold the
// page image they just produced — the same no-extra-I/O maintenance rule as
// the skip summaries).
//
// Thread safety: access counters are relaxed atomics (lock-free on the scan
// path); the pinned map takes a shared lock for hits and an exclusive lock
// for admission/eviction/coherence.  Admission order under concurrent scans
// is nondeterministic, but the hit+read sum above holds regardless — each
// access is served from exactly one place.

#ifndef SIGSET_SIG_HOT_TIER_H_
#define SIGSET_SIG_HOT_TIER_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <shared_mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "storage/page.h"

namespace sigsetdb {

class MetricsRegistry;

// Pinned copies of the hottest pages of one slice file.
class HotSliceTier {
 public:
  // A page is pinned once it has been accessed this many times.
  static constexpr uint64_t kDefaultAdmitThreshold = 2;
  // Default pin budget: 64 pages = 256 KiB, comfortably cache-resident.
  static constexpr size_t kDefaultCapacityPages = 64;

  // `num_pages` is the slice file's fixed page count (F · pages_per_slice);
  // accesses to pages beyond it are never tracked or pinned.
  explicit HotSliceTier(uint64_t num_pages,
                        size_t capacity_pages = kDefaultCapacityPages,
                        uint64_t admit_threshold = kDefaultAdmitThreshold);

  // Records an access to `page_no` and, when the page is pinned, copies it
  // into `*out` and returns true (the caller charges pages_hot instead of
  // issuing the read).  Thread-safe.
  bool Lookup(PageId page_no, Page* out);

  // Zero-copy hit path: records the access and, when pinned, runs
  // `fn(const Page&)` under the shared lock and returns true.  The scan
  // combines straight out of the pinned copy — a hit must beat the
  // buffer-pool read it replaces, and a 4 KiB copy per hit would eat most
  // of that margin.  `fn` must not re-enter the tier.
  template <typename Fn>
  bool VisitPage(PageId page_no, Fn&& fn) {
    if (page_no >= access_counts_.size()) return false;
    access_counts_[page_no].fetch_add(1, std::memory_order_relaxed);
    // Warmup fast path: before the first admission every access is a miss,
    // so don't pay the lock to discover that.  (Relaxed is fine — a stale
    // zero only turns one early hit into one extra read, and the access
    // identity counts both the same.)
    if (pinned_count_.load(std::memory_order_relaxed) == 0) return false;
    std::shared_lock<std::shared_mutex> lock(mu_);
    auto it = pinned_.find(page_no);
    if (it == pinned_.end()) return false;
    fn(static_cast<const Page&>(*it->second));
    hits_.fetch_add(1, std::memory_order_relaxed);
    return true;
  }

  // Offers the page image a missed Lookup just read from the file.  Pins a
  // copy when the access counter has reached the admission threshold,
  // evicting the coldest pinned page if the tier is full and strictly
  // colder.  Thread-safe.
  void Admit(PageId page_no, const Page& page);

  // Write-path coherence: refreshes the pinned copy of `page_no` from the
  // image the writer just produced (no-op when not pinned).  Exact and
  // I/O-free, like SliceSkipIndex::Update.
  void Update(PageId page_no, const Page& page);

  // Unpins everything and zeroes the access counters (facility rebuild).
  void Clear();

  // Shrinking below the pinned count evicts the coldest pages.
  void set_capacity(size_t capacity_pages);
  size_t capacity() const { return capacity_; }

  size_t pinned_pages() const;
  uint64_t hits() const { return hits_.load(std::memory_order_relaxed); }
  uint64_t admissions() const {
    return admissions_.load(std::memory_order_relaxed);
  }
  uint64_t evictions() const {
    return evictions_.load(std::memory_order_relaxed);
  }
  uint64_t accesses(PageId page_no) const;

  // Syncs {prefix}.hits/.admissions/.evictions counters and the
  // {prefix}.pinned gauge into the registry.
  void ExportMetrics(MetricsRegistry* registry,
                     const std::string& prefix) const;

 private:
  // Evicts the coldest pinned page; caller holds mu_ exclusively.
  void EvictColdestLocked();

  const uint64_t admit_threshold_;
  size_t capacity_;
  // One relaxed counter per slice page — fixed size, so the scan path never
  // allocates or locks to count.
  std::vector<std::atomic<uint64_t>> access_counts_;
  mutable std::shared_mutex mu_;
  std::unordered_map<PageId, std::unique_ptr<Page>> pinned_;
  // Mirror of pinned_.size() readable without mu_, and a monotone lower
  // bound on the coldest pinned page's access count (valid because counts
  // only grow and every admission is strictly hotter than the page it
  // displaces).  Together they let Admit reject a hopeless candidate —
  // tier full, newcomer no hotter than the floor — without the exclusive
  // lock or the O(pinned) coldest scan, which would otherwise serialize
  // every cold-page miss of a warmed-up scan.
  std::atomic<size_t> pinned_count_{0};
  std::atomic<uint64_t> full_floor_{0};
  std::atomic<uint64_t> hits_{0};
  std::atomic<uint64_t> admissions_{0};
  std::atomic<uint64_t> evictions_{0};
};

}  // namespace sigsetdb

#endif  // SIGSET_SIG_HOT_TIER_H_
