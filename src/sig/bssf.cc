#include "sig/bssf.h"

#include <algorithm>
#include <map>

#include "sig/kernels.h"
#include "util/failpoint.h"
#include "util/math.h"

namespace sigsetdb {
namespace {

// Writes `page` at index `p`, allocating intermediate pages as needed (the
// compaction target may hold stale pages from a crashed earlier attempt).
Status WriteOrAllocate(PageFile* file, PageId p, const Page& page) {
  while (file->num_pages() <= p) {
    SIGSET_ASSIGN_OR_RETURN(PageId allocated, file->Allocate());
    (void)allocated;
  }
  return file->Write(p, page);
}

}  // namespace

StatusOr<std::unique_ptr<BitSlicedSignatureFile>>
BitSlicedSignatureFile::Create(const SignatureConfig& config,
                               uint64_t capacity, PageFile* slice_file,
                               PageFile* oid_file,
                               BssfInsertMode insert_mode) {
  SIGSET_RETURN_IF_ERROR(config.Validate());
  if (capacity == 0) return Status::InvalidArgument("capacity must be > 0");
  std::unique_ptr<BitSlicedSignatureFile> bssf(new BitSlicedSignatureFile(
      config, capacity, slice_file, oid_file, insert_mode));
  // Pre-allocate the slice store: F slices of pages_per_slice zeroed pages,
  // laid out slice-major (slice j starts at page j * pages_per_slice).
  uint64_t total_pages =
      static_cast<uint64_t>(config.f) * bssf->pages_per_slice_;
  for (uint64_t i = 0; i < total_pages; ++i) {
    SIGSET_ASSIGN_OR_RETURN(PageId id, slice_file->Allocate());
    (void)id;
  }
  // Allocation is setup, not an experiment cost.
  slice_file->stats().Reset();
  return bssf;
}

BitSlicedSignatureFile::BitSlicedSignatureFile(const SignatureConfig& config,
                                               uint64_t capacity,
                                               PageFile* slice_file,
                                               PageFile* oid_file,
                                               BssfInsertMode insert_mode)
    : config_(config),
      capacity_(capacity),
      pages_per_slice_(static_cast<uint32_t>(
          CeilDiv(static_cast<int64_t>(capacity),
                  static_cast<int64_t>(kPageBits)))),
      slice_file_(slice_file),
      oid_file_(oid_file),
      insert_mode_(insert_mode),
      skip_index_(config.f, pages_per_slice_),
      hot_tier_(static_cast<uint64_t>(config.f) * pages_per_slice_) {}

Status BitSlicedSignatureFile::TouchSlice(uint32_t slice, uint64_t slot,
                                          bool set_bit) {
  SIGSET_FAILPOINT("bssf.touch_slice");
  PageId page_no = static_cast<PageId>(
      static_cast<uint64_t>(slice) * pages_per_slice_ + slot / kPageBits);
  uint64_t bit = slot % kPageBits;
  Page page;
  SIGSET_RETURN_IF_ERROR(slice_file_->Read(page_no, &page));
  if (set_bit) {
    page.data()[bit >> 3] |= static_cast<uint8_t>(1u << (bit & 7));
  } else {
    // Clearing matters on the delete and slot-reuse paths; for a fresh slot
    // the bit is already 0 and the page write still happens in
    // kTouchAllSlices mode to model the worst case.
    page.data()[bit >> 3] &= static_cast<uint8_t>(~(1u << (bit & 7)));
  }
  SIGSET_RETURN_IF_ERROR(slice_file_->Write(page_no, page));
  skip_index_.Update(page_no, page);
  hot_tier_.Update(page_no, page);
  return Status::OK();
}

Status BitSlicedSignatureFile::WriteFullColumn(uint64_t slot,
                                               const BitVector& sig) {
  for (uint32_t j = 0; j < config_.f; ++j) {
    SIGSET_RETURN_IF_ERROR(TouchSlice(j, slot, sig.Test(j)));
  }
  return Status::OK();
}

Status BitSlicedSignatureFile::Insert(Oid oid, const ElementSet& set_value) {
  BitVector sig = MakeSetSignature(set_value, config_);
  if (!oid_file_.free_slots().empty()) {
    // Reuse the most recently tombstoned slot.  The full column is written
    // regardless of insert mode: a stale 1 from the previous occupant (or
    // a crash between Remove's tombstone and its clears) in a slice where
    // the new signature is 0 would wrongly exclude this object from subset
    // candidates, so every slice bit must be set-or-cleared explicitly.
    uint64_t slot = oid_file_.free_slots().back();
    SIGSET_RETURN_IF_ERROR(WriteFullColumn(slot, sig));
    return oid_file_.SetAt(slot, oid);
  }
  if (num_signatures_ >= capacity_) {
    return Status::OutOfRange("bssf capacity exhausted");
  }
  uint64_t slot = num_signatures_;
  if (insert_mode_ == BssfInsertMode::kTouchAllSlices) {
    SIGSET_RETURN_IF_ERROR(WriteFullColumn(slot, sig));
  } else {
    Status status = Status::OK();
    sig.ForEachSetBit([&](size_t j) {
      if (status.ok()) {
        status = TouchSlice(static_cast<uint32_t>(j), slot, /*set_bit=*/true);
      }
    });
    SIGSET_RETURN_IF_ERROR(status);
  }
  SIGSET_ASSIGN_OR_RETURN(uint64_t oid_slot, oid_file_.Append(oid));
  if (oid_slot != slot) return Status::Internal("slice/OID slot mismatch");
  ++num_signatures_;
  return Status::OK();
}

StatusOr<std::unique_ptr<BitSlicedSignatureFile>>
BitSlicedSignatureFile::CreateFromExisting(const SignatureConfig& config,
                                           uint64_t capacity,
                                           PageFile* slice_file,
                                           PageFile* oid_file,
                                           BssfInsertMode insert_mode,
                                           uint64_t num_signatures) {
  SIGSET_RETURN_IF_ERROR(config.Validate());
  if (num_signatures > capacity) {
    return Status::InvalidArgument("recovered count exceeds capacity");
  }
  std::unique_ptr<BitSlicedSignatureFile> bssf(new BitSlicedSignatureFile(
      config, capacity, slice_file, oid_file, insert_mode));
  uint64_t expected_pages =
      static_cast<uint64_t>(config.f) * bssf->pages_per_slice_;
  if (slice_file->num_pages() != expected_pages) {
    return Status::Corruption(
        "slice store page count does not match configuration");
  }
  SIGSET_RETURN_IF_ERROR(bssf->oid_file_.Recover(num_signatures));
  bssf->num_signatures_ = num_signatures;
  // Rebuild the slice-page summaries from the recovered store.  Like the
  // rest of recovery, this scan is setup, not an experiment cost — stats
  // are reset below.
  Page page;
  for (uint64_t p = 0; p < expected_pages; ++p) {
    SIGSET_RETURN_IF_ERROR(slice_file->Read(static_cast<PageId>(p), &page));
    bssf->skip_index_.Update(static_cast<PageId>(p), page);
    bssf->hot_tier_.Update(static_cast<PageId>(p), page);
  }
  slice_file->stats().Reset();
  oid_file->stats().Reset();
  return bssf;
}

StatusOr<std::unique_ptr<BitSlicedSignatureFile>>
BitSlicedSignatureFile::CreateReadView(const SignatureConfig& config,
                                       uint64_t capacity,
                                       PageFile* slice_file,
                                       PageFile* oid_file,
                                       uint64_t num_signatures,
                                       uint64_t num_live) {
  SIGSET_RETURN_IF_ERROR(config.Validate());
  if (num_signatures > capacity) {
    return Status::InvalidArgument("snapshot count exceeds capacity");
  }
  std::unique_ptr<BitSlicedSignatureFile> bssf(new BitSlicedSignatureFile(
      config, capacity, slice_file, oid_file, BssfInsertMode::kSparse));
  const uint64_t expected_pages =
      static_cast<uint64_t>(config.f) * bssf->pages_per_slice_;
  if (slice_file->num_pages() < expected_pages) {
    return Status::Corruption(
        "snapshot slice store has fewer pages than its configuration needs");
  }
  bssf->num_signatures_ = num_signatures;
  bssf->oid_file_.AttachReadOnly(num_signatures, num_live);
  return bssf;
}

Status BitSlicedSignatureFile::BulkLoad(const std::vector<Oid>& oids,
                                        const std::vector<ElementSet>& sets) {
  if (num_signatures_ != 0) {
    return Status::FailedPrecondition("BulkLoad requires an empty facility");
  }
  if (oids.size() != sets.size()) {
    return Status::InvalidArgument("oids/sets size mismatch");
  }
  if (oids.size() > capacity_) {
    return Status::OutOfRange("bulk load exceeds capacity");
  }
  // Assemble every slice page in memory, then write each exactly once.
  const uint64_t total_pages =
      static_cast<uint64_t>(config_.f) * pages_per_slice_;
  std::vector<Page> pages(total_pages);
  for (uint64_t slot = 0; slot < sets.size(); ++slot) {
    BitVector sig = MakeSetSignature(sets[slot], config_);
    uint64_t page_in_slice = slot / kPageBits;
    uint64_t bit = slot % kPageBits;
    sig.ForEachSetBit([&](size_t j) {
      Page& page = pages[j * pages_per_slice_ + page_in_slice];
      page.data()[bit >> 3] |= static_cast<uint8_t>(1u << (bit & 7));
    });
  }
  for (uint64_t p = 0; p < total_pages; ++p) {
    SIGSET_RETURN_IF_ERROR(slice_file_->Write(static_cast<PageId>(p),
                                              pages[p]));
    skip_index_.Update(static_cast<PageId>(p), pages[p]);
    hot_tier_.Update(static_cast<PageId>(p), pages[p]);
  }
  for (uint64_t slot = 0; slot < oids.size(); ++slot) {
    SIGSET_ASSIGN_OR_RETURN(uint64_t oid_slot, oid_file_.Append(oids[slot]));
    if (oid_slot != slot) return Status::Internal("bulk OID slot mismatch");
  }
  num_signatures_ = oids.size();
  // Bulk-build I/O is setup, not an experiment cost.
  slice_file_->stats().Reset();
  return Status::OK();
}

Status BitSlicedSignatureFile::Remove(Oid oid, const ElementSet& set_value) {
  // Tombstone first — that is the commit point making the slot invisible —
  // then clear the signature's set bits so the freed column returns to
  // all-zero (sparse reuse and subset scans rely on clean zero columns; a
  // crash mid-clear is repaired by the reuse path's full-column write).
  SIGSET_ASSIGN_OR_RETURN(uint64_t slot, oid_file_.MarkDeleted(oid));
  BitVector sig = MakeSetSignature(set_value, config_);
  Status status = Status::OK();
  sig.ForEachSetBit([&](size_t j) {
    if (status.ok()) {
      status = TouchSlice(static_cast<uint32_t>(j), slot, /*set_bit=*/false);
    }
  });
  return status;
}

Status BitSlicedSignatureFile::ApplyBatch(const std::vector<BatchOp>& ops) {
  // Phase 1 — tombstone the removes with one OID-file scan and collect the
  // batch's bit changes: clears for removed columns, full columns for
  // reused slots, set bits (or full columns in kTouchAllSlices mode) for
  // fresh appends.
  std::vector<Oid> remove_oids;
  std::vector<const ElementSet*> remove_sets;
  std::vector<const BatchOp*> inserts;
  for (const BatchOp& op : ops) {
    if (op.kind == BatchOp::Kind::kRemove) {
      remove_oids.push_back(op.oid);
      remove_sets.push_back(&op.set_value);
    } else {
      inserts.push_back(&op);
    }
  }
  // page -> (bit offset in page, set?) changes, applied with one RMW per
  // dirty page for the entire batch.
  std::map<PageId, std::vector<std::pair<uint64_t, bool>>> changes;
  auto add_change = [&](uint32_t slice, uint64_t slot, bool set_bit) {
    PageId page_no = static_cast<PageId>(
        static_cast<uint64_t>(slice) * pages_per_slice_ + slot / kPageBits);
    changes[page_no].emplace_back(slot % kPageBits, set_bit);
  };
  if (!remove_oids.empty()) {
    SIGSET_ASSIGN_OR_RETURN(std::vector<uint64_t> slots,
                            oid_file_.MarkDeletedMany(remove_oids));
    for (size_t i = 0; i < slots.size(); ++i) {
      BitVector sig = MakeSetSignature(*remove_sets[i], config_);
      sig.ForEachSetBit([&](size_t j) {
        add_change(static_cast<uint32_t>(j), slots[i], false);
      });
    }
  }
  // Phase 2 — assign slots: freed slots first (full columns), then fresh
  // appends off the high-water mark.
  const std::vector<uint64_t>& free_slots = oid_file_.free_slots();
  size_t reuse = std::min(inserts.size(), free_slots.size());
  uint64_t fresh = inserts.size() - reuse;
  if (num_signatures_ + fresh > capacity_) {
    return Status::OutOfRange("bssf capacity exhausted");
  }
  std::vector<std::pair<uint64_t, Oid>> reused_entries;
  reused_entries.reserve(reuse);
  for (size_t i = 0; i < inserts.size(); ++i) {
    BitVector sig = MakeSetSignature(inserts[i]->set_value, config_);
    uint64_t slot;
    bool full_column;
    if (i < reuse) {
      slot = free_slots[free_slots.size() - 1 - i];
      reused_entries.emplace_back(slot, inserts[i]->oid);
      full_column = true;  // stale-bit defence, as in Insert
    } else {
      slot = num_signatures_ + (i - reuse);
      full_column = insert_mode_ == BssfInsertMode::kTouchAllSlices;
    }
    if (full_column) {
      for (uint32_t j = 0; j < config_.f; ++j) {
        add_change(j, slot, sig.Test(j));
      }
    } else {
      sig.ForEachSetBit([&](size_t j) {
        add_change(static_cast<uint32_t>(j), slot, true);
      });
    }
  }
  // Phase 3 — one read-modify-write per dirty slice page.
  Page page;
  for (const auto& [page_no, bits] : changes) {
    SIGSET_FAILPOINT("bssf.touch_slice");
    SIGSET_RETURN_IF_ERROR(slice_file_->Read(page_no, &page));
    for (const auto& [bit, set_bit] : bits) {
      if (set_bit) {
        page.data()[bit >> 3] |= static_cast<uint8_t>(1u << (bit & 7));
      } else {
        page.data()[bit >> 3] &= static_cast<uint8_t>(~(1u << (bit & 7)));
      }
    }
    SIGSET_RETURN_IF_ERROR(slice_file_->Write(page_no, page));
    skip_index_.Update(page_no, page);
    hot_tier_.Update(page_no, page);
  }
  // Phase 4 — publish the OID entries (reused slots become live again,
  // fresh slots append page-at-a-time).
  if (!reused_entries.empty()) {
    std::sort(reused_entries.begin(), reused_entries.end(),
              [](const auto& a, const auto& b) { return a.first < b.first; });
    SIGSET_RETURN_IF_ERROR(oid_file_.SetMany(reused_entries));
  }
  if (fresh > 0) {
    std::vector<Oid> appended;
    appended.reserve(fresh);
    for (size_t i = reuse; i < inserts.size(); ++i) {
      appended.push_back(inserts[i]->oid);
    }
    SIGSET_ASSIGN_OR_RETURN(uint64_t first_slot,
                            oid_file_.AppendMany(appended));
    if (first_slot != num_signatures_) {
      return Status::Internal("slice/OID slot mismatch in batch append");
    }
    num_signatures_ += fresh;
  }
  return Status::OK();
}

StatusOr<uint64_t> BitSlicedSignatureFile::CompactTo(
    PageFile* new_slice_file, PageFile* new_oid_file) const {
  SIGSET_ASSIGN_OR_RETURN(auto live, oid_file_.LiveEntries());
  // Dense target store assembled in memory (same footprint as BulkLoad);
  // live slot d of the new store gets the column of live[d].
  const uint64_t total_pages =
      static_cast<uint64_t>(config_.f) * pages_per_slice_;
  std::vector<Page> pages(total_pages);
  // live is slot-sorted: precompute, per source page-in-slice, the range of
  // live entries whose slot falls on that page.
  std::vector<std::pair<size_t, size_t>> ranges(pages_per_slice_, {0, 0});
  {
    size_t begin = 0;
    for (uint32_t p = 0; p < pages_per_slice_; ++p) {
      size_t end = begin;
      while (end < live.size() &&
             live[end].first / kPageBits == p) {
        ++end;
      }
      ranges[p] = {begin, end};
      begin = end;
    }
  }
  Page in_page;
  for (uint32_t j = 0; j < config_.f; ++j) {
    for (uint32_t p = 0; p < pages_per_slice_; ++p) {
      auto [begin, end] = ranges[p];
      if (begin == end) continue;
      SIGSET_RETURN_IF_ERROR(slice_file_->Read(
          static_cast<PageId>(static_cast<uint64_t>(j) * pages_per_slice_ + p),
          &in_page));
      for (size_t d = begin; d < end; ++d) {
        uint64_t bit = live[d].first % kPageBits;
        if (in_page.data()[bit >> 3] & (1u << (bit & 7))) {
          Page& out = pages[static_cast<uint64_t>(j) * pages_per_slice_ +
                            d / kPageBits];
          out.data()[(d % kPageBits) >> 3] |=
              static_cast<uint8_t>(1u << (d & 7));
        }
      }
    }
  }
  // Write EVERY page of the target store (zero ones included):
  // CreateFromExisting demands the exact page count, and overwriting wipes
  // any leftovers from a crashed earlier attempt at this generation.
  for (uint64_t p = 0; p < total_pages; ++p) {
    SIGSET_RETURN_IF_ERROR(
        WriteOrAllocate(new_slice_file, static_cast<PageId>(p), pages[p]));
  }
  // Dense OID file: pack live oids kOidsPerPage per page.
  Page out_oid;
  out_oid.Zero();
  uint64_t dense = 0;
  for (const auto& [slot, oid] : live) {
    (void)slot;
    out_oid.WriteAt<uint64_t>((dense % kOidsPerPage) * kOidBytes,
                              oid.value());
    ++dense;
    if (dense % kOidsPerPage == 0) {
      SIGSET_RETURN_IF_ERROR(WriteOrAllocate(
          new_oid_file, static_cast<PageId>(dense / kOidsPerPage - 1),
          out_oid));
      out_oid.Zero();
    }
  }
  if (dense % kOidsPerPage != 0) {
    SIGSET_RETURN_IF_ERROR(WriteOrAllocate(
        new_oid_file, static_cast<PageId>(dense / kOidsPerPage), out_oid));
  }
  return dense;
}

Status BitSlicedSignatureFile::CombineSlice(
    uint32_t slice, bool and_combine, BitVector* acc, IoStats* io,
    const std::vector<bool>* dead_columns) const {
  if (FailpointRegistry::AnyArmed()) {
    Status fault = FailpointRegistry::Instance().Evaluate("bssf.combine_slice");
    if (!fault.ok()) {
      return Status(fault.code(),
                    fault.message() + " (slice " + std::to_string(slice) + ")");
    }
  }
  const SignatureKernels& kernels = ActiveKernels();
  Page page;
  uint64_t* words = acc->mutable_words();
  size_t words_done = 0;
  const size_t total_words = acc->num_words();
  for (uint32_t p = 0; p < pages_per_slice_ && words_done < total_words; ++p) {
    size_t n = std::min(total_words - words_done, kPageSize / 8);
    // AND scans skip whole dead page columns (the caller zeroes the
    // accumulator range via ApplyDeadColumns); OR scans skip pages the
    // summary proves empty (OR with zero is the identity).  Either way the
    // avoided read is charged to pages_skipped, never to page_reads.
    if (dead_columns != nullptr && p < dead_columns->size() &&
        (*dead_columns)[p]) {
      io->AddSkip();
      words_done += n;
      continue;
    }
    if (!and_combine && skip_enabled_ &&
        skip_index_.summary(slice, p).empty()) {
      io->AddSkip();
      words_done += n;
      continue;
    }
    PageId page_no = static_cast<PageId>(
        static_cast<uint64_t>(slice) * pages_per_slice_ + p);
    // The hot tier sits after the skip checks (a skipped page is never an
    // access, so it must not warm the counters) and before the page file: a
    // pinned page is combined in place under the tier's shared lock — no
    // page copy — and charged to pages_hot; a miss reads normally and
    // offers the image for admission.
    auto combine = [&](const uint64_t* src) {
      if (and_combine) {
        kernels.and_accumulate(words + words_done, src, n);
      } else {
        kernels.or_accumulate(words + words_done, src, n);
      }
    };
    if (hot_enabled_ && hot_tier_.VisitPage(page_no, [&](const Page& pinned) {
          combine(reinterpret_cast<const uint64_t*>(pinned.data()));
        })) {
      io->AddHot();
    } else {
      SIGSET_RETURN_IF_ERROR(slice_file_->Read(page_no, &page, io));
      if (hot_enabled_) hot_tier_.Admit(page_no, page);
      combine(reinterpret_cast<const uint64_t*>(page.data()));
    }
    words_done += n;
  }
  return Status::OK();
}

Status BitSlicedSignatureFile::CombineSliceRange(
    const std::vector<uint32_t>& slices, size_t begin, size_t end,
    bool and_combine, BitVector* acc, IoStats* io,
    const std::vector<bool>* dead_columns) const {
  for (size_t i = begin; i < end; ++i) {
    SIGSET_RETURN_IF_ERROR(
        CombineSlice(slices[i], and_combine, acc, io, dead_columns));
  }
  return Status::OK();
}

std::vector<bool> BitSlicedSignatureFile::PlanDeadColumns(
    const std::vector<uint32_t>& slices, const BitVector& acc) const {
  if (!skip_enabled_) return {};
  uint32_t columns = static_cast<uint32_t>(
      CeilDiv(static_cast<int64_t>(acc.size()),
              static_cast<int64_t>(kPageBits)));
  return skip_index_.DeadColumns(slices, columns);
}

void BitSlicedSignatureFile::ApplyDeadColumns(
    const std::vector<bool>& dead_columns, BitVector* acc) {
  uint64_t* words = acc->mutable_words();
  const size_t total_words = acc->num_words();
  for (size_t p = 0; p < dead_columns.size(); ++p) {
    if (!dead_columns[p]) continue;
    size_t begin = p * (kPageSize / 8);
    if (begin >= total_words) break;
    size_t end = std::min(begin + kPageSize / 8, total_words);
    std::fill(words + begin, words + end, uint64_t{0});
  }
}

Status BitSlicedSignatureFile::CombineSlicesParallel(
    const std::vector<uint32_t>& slices, bool and_combine, BitVector* acc,
    const ParallelExecutionContext* ctx) const {
  // Skip planning happens once, up front: AND scans precompute the dead
  // page columns from the slice-page summaries (shared read-only by every
  // worker), and the accumulator ranges they cover are zeroed after the
  // combine — the value the skipped reads would have produced.
  std::vector<bool> dead_columns;
  const std::vector<bool>* dead = nullptr;
  if (and_combine && skip_enabled_) {
    dead_columns = PlanDeadColumns(slices, *acc);
    dead = &dead_columns;
  }
  const size_t workers =
      ctx == nullptr ? 1 : ctx->WorkersFor(slices.size());
  if (workers <= 1) {
    SIGSET_RETURN_IF_ERROR(CombineSliceRange(slices, 0, slices.size(),
                                             and_combine, acc,
                                             &slice_file_->stats(), dead));
    if (dead != nullptr) ApplyDeadColumns(dead_columns, acc);
    return Status::OK();
  }
  // Per-worker accumulator bitmaps (initialized to the combine identity) and
  // per-worker IoStats; both merged deterministically after the join.  Every
  // slice is combined by exactly one worker, so each slice page is still
  // read exactly once — logical page accesses equal the serial scan's.
  std::vector<BitVector> accs(workers);
  std::vector<IoStats> ios(workers);
  std::vector<Status> statuses(workers, Status::OK());
  for (BitVector& a : accs) {
    a = BitVector(acc->size());
    if (and_combine) a.SetAll();
  }
  ctx->pool->ParallelFor(
      slices.size(), workers, [&](size_t w, size_t begin, size_t end) {
        statuses[w] = CombineSliceRange(slices, begin, end, and_combine,
                                        &accs[w], &ios[w], dead);
      });
  for (const IoStats& io : ios) slice_file_->stats() += io;
  SIGSET_RETURN_IF_ERROR(MergeWorkerStatuses(statuses));
  for (const BitVector& a : accs) {
    if (and_combine) {
      KernelAndWith(acc, a);
    } else {
      KernelOrWith(acc, a);
    }
  }
  if (dead != nullptr) ApplyDeadColumns(dead_columns, acc);
  return Status::OK();
}

StatusOr<std::vector<uint64_t>> BitSlicedSignatureFile::SupersetCandidateSlots(
    const BitVector& query_sig, const ParallelExecutionContext* ctx) const {
  std::vector<uint32_t> slices;
  query_sig.ForEachSetBit(
      [&](size_t j) { slices.push_back(static_cast<uint32_t>(j)); });
  BitVector acc(num_signatures_);
  acc.SetAll();
  SIGSET_RETURN_IF_ERROR(
      CombineSlicesParallel(slices, /*and_combine=*/true, &acc, ctx));
  std::vector<uint64_t> slots;
  acc.ForEachSetBit([&](size_t slot) { slots.push_back(slot); });
  return slots;
}

StatusOr<std::vector<uint64_t>> BitSlicedSignatureFile::SubsetCandidateSlots(
    const BitVector& query_sig, size_t max_slices,
    const ParallelExecutionContext* ctx) const {
  // The zero slices to scan (the paper's partial slice scan caps them).
  std::vector<uint32_t> slices;
  for (uint32_t j = 0; j < config_.f && slices.size() < max_slices; ++j) {
    if (!query_sig.Test(j)) slices.push_back(j);
  }
  BitVector acc(num_signatures_);  // starts all-zero; OR in the zero slices
  SIGSET_RETURN_IF_ERROR(
      CombineSlicesParallel(slices, /*and_combine=*/false, &acc, ctx));
  // Candidates are slots whose accumulated bit stayed 0.
  std::vector<uint64_t> slots;
  for (uint64_t slot = 0; slot < num_signatures_; ++slot) {
    if (!acc.Test(slot)) slots.push_back(slot);
  }
  return slots;
}

StatusOr<std::vector<uint64_t>> BitSlicedSignatureFile::EqualsCandidateSlots(
    const BitVector& query_sig, const ParallelExecutionContext* ctx) const {
  // ones: slots whose signature covers the query (AND of 1-slices);
  // zeros: slots with a 1 in some 0-slice of the query (OR of 0-slices).
  // Equality candidates are ones ∧ ¬zeros.
  std::vector<uint32_t> one_slices;
  std::vector<uint32_t> zero_slices;
  for (uint32_t j = 0; j < config_.f; ++j) {
    (query_sig.Test(j) ? one_slices : zero_slices).push_back(j);
  }
  BitVector ones(num_signatures_);
  ones.SetAll();
  BitVector zeros(num_signatures_);
  SIGSET_RETURN_IF_ERROR(
      CombineSlicesParallel(one_slices, /*and_combine=*/true, &ones, ctx));
  SIGSET_RETURN_IF_ERROR(
      CombineSlicesParallel(zero_slices, /*and_combine=*/false, &zeros, ctx));
  ones.AndNotWith(zeros);
  std::vector<uint64_t> slots;
  ones.ForEachSetBit([&](size_t slot) { slots.push_back(slot); });
  return slots;
}

StatusOr<CandidateResult> BitSlicedSignatureFile::Candidates(
    QueryKind kind, const ElementSet& query) {
  return Candidates(kind, query, nullptr);
}

StatusOr<CandidateResult> BitSlicedSignatureFile::Candidates(
    QueryKind kind, const ElementSet& query,
    const ParallelExecutionContext* ctx) {
  std::vector<uint64_t> slots;
  switch (kind) {
    case QueryKind::kSuperset:
    case QueryKind::kProperSuperset: {  // strictness checked at resolution
      BitVector query_sig = MakeSetSignature(query, config_);
      SIGSET_ASSIGN_OR_RETURN(slots, SupersetCandidateSlots(query_sig, ctx));
      break;
    }
    case QueryKind::kSubset:
    case QueryKind::kProperSubset: {  // strictness checked at resolution
      BitVector query_sig = MakeSetSignature(query, config_);
      SIGSET_ASSIGN_OR_RETURN(
          slots, SubsetCandidateSlots(query_sig,
                                      std::numeric_limits<size_t>::max(),
                                      ctx));
      break;
    }
    case QueryKind::kEquals: {
      BitVector query_sig = MakeSetSignature(query, config_);
      SIGSET_ASSIGN_OR_RETURN(slots, EqualsCandidateSlots(query_sig, ctx));
      break;
    }
    case QueryKind::kOverlaps: {
      // Union of per-element superset filters (extension, paper §6).  Slices
      // shared between element signatures are still read once per element;
      // a production system would memoize, which the micro-bench explores.
      // Parallelism fans out over the query elements (each worker scans its
      // elements' slices through a private accumulator and IoStats).
      SIGSET_ASSIGN_OR_RETURN(slots, OverlapCandidateSlots(query, ctx));
      break;
    }
  }
  CandidateResult result;
  result.exact = false;
  SIGSET_ASSIGN_OR_RETURN(result.oids, oid_file_.GetMany(slots));
  return result;
}

StatusOr<std::vector<uint64_t>> BitSlicedSignatureFile::OverlapCandidateSlots(
    const ElementSet& query, const ParallelExecutionContext* ctx) const {
  const size_t workers = ctx == nullptr ? 1 : ctx->WorkersFor(query.size());
  std::vector<std::vector<uint64_t>> merged(std::max<size_t>(workers, 1));
  std::vector<IoStats> ios(merged.size());
  std::vector<Status> statuses(merged.size(), Status::OK());
  auto scan_elements = [&](size_t w, size_t begin, size_t end) {
    for (size_t i = begin; i < end && statuses[w].ok(); ++i) {
      BitVector es = MakeElementSignature(query[i], config_);
      std::vector<uint32_t> slices;
      es.ForEachSetBit(
          [&](size_t j) { slices.push_back(static_cast<uint32_t>(j)); });
      BitVector acc(num_signatures_);
      acc.SetAll();
      // Per-element skip plan: each element scans its own slice set, so its
      // dead columns differ.  skip_index_ reads are const and safe to share
      // across workers.
      std::vector<bool> dead = PlanDeadColumns(slices, acc);
      statuses[w] = CombineSliceRange(slices, 0, slices.size(),
                                      /*and_combine=*/true, &acc, &ios[w],
                                      dead.empty() ? nullptr : &dead);
      if (!statuses[w].ok()) return;
      if (!dead.empty()) ApplyDeadColumns(dead, &acc);
      acc.ForEachSetBit([&](size_t slot) { merged[w].push_back(slot); });
    }
  };
  if (workers <= 1) {
    scan_elements(0, 0, query.size());
  } else {
    ctx->pool->ParallelFor(query.size(), workers, scan_elements);
  }
  for (const IoStats& io : ios) slice_file_->stats() += io;
  SIGSET_RETURN_IF_ERROR(MergeWorkerStatuses(statuses));
  std::vector<uint64_t> slots;
  for (const std::vector<uint64_t>& part : merged) {
    slots.insert(slots.end(), part.begin(), part.end());
  }
  std::sort(slots.begin(), slots.end());
  slots.erase(std::unique(slots.begin(), slots.end()), slots.end());
  return slots;
}

uint64_t BitSlicedSignatureFile::StoragePages() const {
  return static_cast<uint64_t>(slice_file_->num_pages()) +
         oid_file_.num_pages();
}

}  // namespace sigsetdb
