#include "sig/bssf.h"

#include <algorithm>

#include "util/math.h"

namespace sigsetdb {

StatusOr<std::unique_ptr<BitSlicedSignatureFile>>
BitSlicedSignatureFile::Create(const SignatureConfig& config,
                               uint64_t capacity, PageFile* slice_file,
                               PageFile* oid_file,
                               BssfInsertMode insert_mode) {
  SIGSET_RETURN_IF_ERROR(config.Validate());
  if (capacity == 0) return Status::InvalidArgument("capacity must be > 0");
  std::unique_ptr<BitSlicedSignatureFile> bssf(new BitSlicedSignatureFile(
      config, capacity, slice_file, oid_file, insert_mode));
  // Pre-allocate the slice store: F slices of pages_per_slice zeroed pages,
  // laid out slice-major (slice j starts at page j * pages_per_slice).
  uint64_t total_pages =
      static_cast<uint64_t>(config.f) * bssf->pages_per_slice_;
  for (uint64_t i = 0; i < total_pages; ++i) {
    SIGSET_ASSIGN_OR_RETURN(PageId id, slice_file->Allocate());
    (void)id;
  }
  // Allocation is setup, not an experiment cost.
  slice_file->stats().Reset();
  return bssf;
}

BitSlicedSignatureFile::BitSlicedSignatureFile(const SignatureConfig& config,
                                               uint64_t capacity,
                                               PageFile* slice_file,
                                               PageFile* oid_file,
                                               BssfInsertMode insert_mode)
    : config_(config),
      capacity_(capacity),
      pages_per_slice_(static_cast<uint32_t>(
          CeilDiv(static_cast<int64_t>(capacity),
                  static_cast<int64_t>(kPageBits)))),
      slice_file_(slice_file),
      oid_file_(oid_file),
      insert_mode_(insert_mode) {}

Status BitSlicedSignatureFile::TouchSlice(uint32_t slice, uint64_t slot,
                                          bool set_bit) {
  PageId page_no = static_cast<PageId>(
      static_cast<uint64_t>(slice) * pages_per_slice_ + slot / kPageBits);
  uint64_t bit = slot % kPageBits;
  Page page;
  SIGSET_RETURN_IF_ERROR(slice_file_->Read(page_no, &page));
  if (set_bit) {
    page.data()[bit >> 3] |= static_cast<uint8_t>(1u << (bit & 7));
  }
  // For a fresh slot the bit is already 0, so clearing is a no-op; the page
  // write still happens in kTouchAllSlices mode to model the worst case.
  SIGSET_RETURN_IF_ERROR(slice_file_->Write(page_no, page));
  return Status::OK();
}

Status BitSlicedSignatureFile::Insert(Oid oid, const ElementSet& set_value) {
  if (num_signatures_ >= capacity_) {
    return Status::OutOfRange("bssf capacity exhausted");
  }
  BitVector sig = MakeSetSignature(set_value, config_);
  uint64_t slot = num_signatures_;
  if (insert_mode_ == BssfInsertMode::kTouchAllSlices) {
    for (uint32_t j = 0; j < config_.f; ++j) {
      SIGSET_RETURN_IF_ERROR(TouchSlice(j, slot, sig.Test(j)));
    }
  } else {
    Status status = Status::OK();
    sig.ForEachSetBit([&](size_t j) {
      if (status.ok()) {
        status = TouchSlice(static_cast<uint32_t>(j), slot, /*set_bit=*/true);
      }
    });
    SIGSET_RETURN_IF_ERROR(status);
  }
  SIGSET_ASSIGN_OR_RETURN(uint64_t oid_slot, oid_file_.Append(oid));
  if (oid_slot != slot) return Status::Internal("slice/OID slot mismatch");
  ++num_signatures_;
  return Status::OK();
}

StatusOr<std::unique_ptr<BitSlicedSignatureFile>>
BitSlicedSignatureFile::CreateFromExisting(const SignatureConfig& config,
                                           uint64_t capacity,
                                           PageFile* slice_file,
                                           PageFile* oid_file,
                                           BssfInsertMode insert_mode,
                                           uint64_t num_signatures) {
  SIGSET_RETURN_IF_ERROR(config.Validate());
  if (num_signatures > capacity) {
    return Status::InvalidArgument("recovered count exceeds capacity");
  }
  std::unique_ptr<BitSlicedSignatureFile> bssf(new BitSlicedSignatureFile(
      config, capacity, slice_file, oid_file, insert_mode));
  uint64_t expected_pages =
      static_cast<uint64_t>(config.f) * bssf->pages_per_slice_;
  if (slice_file->num_pages() != expected_pages) {
    return Status::Corruption(
        "slice store page count does not match configuration");
  }
  SIGSET_RETURN_IF_ERROR(bssf->oid_file_.Recover(num_signatures));
  bssf->num_signatures_ = num_signatures;
  slice_file->stats().Reset();
  oid_file->stats().Reset();
  return bssf;
}

Status BitSlicedSignatureFile::BulkLoad(const std::vector<Oid>& oids,
                                        const std::vector<ElementSet>& sets) {
  if (num_signatures_ != 0) {
    return Status::FailedPrecondition("BulkLoad requires an empty facility");
  }
  if (oids.size() != sets.size()) {
    return Status::InvalidArgument("oids/sets size mismatch");
  }
  if (oids.size() > capacity_) {
    return Status::OutOfRange("bulk load exceeds capacity");
  }
  // Assemble every slice page in memory, then write each exactly once.
  const uint64_t total_pages =
      static_cast<uint64_t>(config_.f) * pages_per_slice_;
  std::vector<Page> pages(total_pages);
  for (uint64_t slot = 0; slot < sets.size(); ++slot) {
    BitVector sig = MakeSetSignature(sets[slot], config_);
    uint64_t page_in_slice = slot / kPageBits;
    uint64_t bit = slot % kPageBits;
    sig.ForEachSetBit([&](size_t j) {
      Page& page = pages[j * pages_per_slice_ + page_in_slice];
      page.data()[bit >> 3] |= static_cast<uint8_t>(1u << (bit & 7));
    });
  }
  for (uint64_t p = 0; p < total_pages; ++p) {
    SIGSET_RETURN_IF_ERROR(slice_file_->Write(static_cast<PageId>(p),
                                              pages[p]));
  }
  for (uint64_t slot = 0; slot < oids.size(); ++slot) {
    SIGSET_ASSIGN_OR_RETURN(uint64_t oid_slot, oid_file_.Append(oids[slot]));
    if (oid_slot != slot) return Status::Internal("bulk OID slot mismatch");
  }
  num_signatures_ = oids.size();
  // Bulk-build I/O is setup, not an experiment cost.
  slice_file_->stats().Reset();
  return Status::OK();
}

Status BitSlicedSignatureFile::Remove(Oid oid,
                                      const ElementSet& /*set_value*/) {
  return oid_file_.MarkDeleted(oid);
}

Status BitSlicedSignatureFile::CombineSlice(uint32_t slice, bool and_combine,
                                            BitVector* acc) const {
  Page page;
  uint64_t* words = acc->mutable_words();
  size_t words_done = 0;
  const size_t total_words = acc->num_words();
  for (uint32_t p = 0; p < pages_per_slice_ && words_done < total_words; ++p) {
    PageId page_no = static_cast<PageId>(
        static_cast<uint64_t>(slice) * pages_per_slice_ + p);
    SIGSET_RETURN_IF_ERROR(slice_file_->Read(page_no, &page));
    const uint64_t* src = reinterpret_cast<const uint64_t*>(page.data());
    size_t n = std::min(total_words - words_done, kPageSize / 8);
    if (and_combine) {
      for (size_t i = 0; i < n; ++i) words[words_done + i] &= src[i];
    } else {
      for (size_t i = 0; i < n; ++i) words[words_done + i] |= src[i];
    }
    words_done += n;
  }
  return Status::OK();
}

StatusOr<std::vector<uint64_t>> BitSlicedSignatureFile::SupersetCandidateSlots(
    const BitVector& query_sig) const {
  BitVector acc(num_signatures_);
  acc.SetAll();
  Status status = Status::OK();
  query_sig.ForEachSetBit([&](size_t j) {
    if (status.ok()) {
      status = CombineSlice(static_cast<uint32_t>(j), /*and_combine=*/true,
                            &acc);
    }
  });
  SIGSET_RETURN_IF_ERROR(status);
  std::vector<uint64_t> slots;
  acc.ForEachSetBit([&](size_t slot) { slots.push_back(slot); });
  return slots;
}

StatusOr<std::vector<uint64_t>> BitSlicedSignatureFile::SubsetCandidateSlots(
    const BitVector& query_sig, size_t max_slices) const {
  BitVector acc(num_signatures_);  // starts all-zero; OR in the zero slices
  size_t scanned = 0;
  for (uint32_t j = 0; j < config_.f && scanned < max_slices; ++j) {
    if (query_sig.Test(j)) continue;
    SIGSET_RETURN_IF_ERROR(CombineSlice(j, /*and_combine=*/false, &acc));
    ++scanned;
  }
  // Candidates are slots whose accumulated bit stayed 0.
  std::vector<uint64_t> slots;
  for (uint64_t slot = 0; slot < num_signatures_; ++slot) {
    if (!acc.Test(slot)) slots.push_back(slot);
  }
  return slots;
}

StatusOr<std::vector<uint64_t>> BitSlicedSignatureFile::EqualsCandidateSlots(
    const BitVector& query_sig) const {
  // ones: slots whose signature covers the query (AND of 1-slices);
  // zeros: slots with a 1 in some 0-slice of the query (OR of 0-slices).
  // Equality candidates are ones ∧ ¬zeros.
  BitVector ones(num_signatures_);
  ones.SetAll();
  BitVector zeros(num_signatures_);
  for (uint32_t j = 0; j < config_.f; ++j) {
    if (query_sig.Test(j)) {
      SIGSET_RETURN_IF_ERROR(CombineSlice(j, /*and_combine=*/true, &ones));
    } else {
      SIGSET_RETURN_IF_ERROR(CombineSlice(j, /*and_combine=*/false, &zeros));
    }
  }
  ones.AndNotWith(zeros);
  std::vector<uint64_t> slots;
  ones.ForEachSetBit([&](size_t slot) { slots.push_back(slot); });
  return slots;
}

StatusOr<CandidateResult> BitSlicedSignatureFile::Candidates(
    QueryKind kind, const ElementSet& query) {
  std::vector<uint64_t> slots;
  switch (kind) {
    case QueryKind::kSuperset:
    case QueryKind::kProperSuperset: {  // strictness checked at resolution
      BitVector query_sig = MakeSetSignature(query, config_);
      SIGSET_ASSIGN_OR_RETURN(slots, SupersetCandidateSlots(query_sig));
      break;
    }
    case QueryKind::kSubset:
    case QueryKind::kProperSubset: {  // strictness checked at resolution
      BitVector query_sig = MakeSetSignature(query, config_);
      SIGSET_ASSIGN_OR_RETURN(slots, SubsetCandidateSlots(query_sig));
      break;
    }
    case QueryKind::kEquals: {
      BitVector query_sig = MakeSetSignature(query, config_);
      SIGSET_ASSIGN_OR_RETURN(slots, EqualsCandidateSlots(query_sig));
      break;
    }
    case QueryKind::kOverlaps: {
      // Union of per-element superset filters (extension, paper §6).  Slices
      // shared between element signatures are still read once per element;
      // a production system would memoize, which the micro-bench explores.
      std::vector<uint64_t> merged;
      for (uint64_t e : query) {
        BitVector es = MakeElementSignature(e, config_);
        SIGSET_ASSIGN_OR_RETURN(std::vector<uint64_t> s,
                                SupersetCandidateSlots(es));
        merged.insert(merged.end(), s.begin(), s.end());
      }
      std::sort(merged.begin(), merged.end());
      merged.erase(std::unique(merged.begin(), merged.end()), merged.end());
      slots = std::move(merged);
      break;
    }
  }
  CandidateResult result;
  result.exact = false;
  SIGSET_ASSIGN_OR_RETURN(result.oids, oid_file_.GetMany(slots));
  return result;
}

uint64_t BitSlicedSignatureFile::StoragePages() const {
  return static_cast<uint64_t>(slice_file_->num_pages()) +
         oid_file_.num_pages();
}

}  // namespace sigsetdb
