#include "sig/bssf.h"

#include <algorithm>

#include "util/failpoint.h"
#include "util/math.h"

namespace sigsetdb {

StatusOr<std::unique_ptr<BitSlicedSignatureFile>>
BitSlicedSignatureFile::Create(const SignatureConfig& config,
                               uint64_t capacity, PageFile* slice_file,
                               PageFile* oid_file,
                               BssfInsertMode insert_mode) {
  SIGSET_RETURN_IF_ERROR(config.Validate());
  if (capacity == 0) return Status::InvalidArgument("capacity must be > 0");
  std::unique_ptr<BitSlicedSignatureFile> bssf(new BitSlicedSignatureFile(
      config, capacity, slice_file, oid_file, insert_mode));
  // Pre-allocate the slice store: F slices of pages_per_slice zeroed pages,
  // laid out slice-major (slice j starts at page j * pages_per_slice).
  uint64_t total_pages =
      static_cast<uint64_t>(config.f) * bssf->pages_per_slice_;
  for (uint64_t i = 0; i < total_pages; ++i) {
    SIGSET_ASSIGN_OR_RETURN(PageId id, slice_file->Allocate());
    (void)id;
  }
  // Allocation is setup, not an experiment cost.
  slice_file->stats().Reset();
  return bssf;
}

BitSlicedSignatureFile::BitSlicedSignatureFile(const SignatureConfig& config,
                                               uint64_t capacity,
                                               PageFile* slice_file,
                                               PageFile* oid_file,
                                               BssfInsertMode insert_mode)
    : config_(config),
      capacity_(capacity),
      pages_per_slice_(static_cast<uint32_t>(
          CeilDiv(static_cast<int64_t>(capacity),
                  static_cast<int64_t>(kPageBits)))),
      slice_file_(slice_file),
      oid_file_(oid_file),
      insert_mode_(insert_mode) {}

Status BitSlicedSignatureFile::TouchSlice(uint32_t slice, uint64_t slot,
                                          bool set_bit) {
  SIGSET_FAILPOINT("bssf.touch_slice");
  PageId page_no = static_cast<PageId>(
      static_cast<uint64_t>(slice) * pages_per_slice_ + slot / kPageBits);
  uint64_t bit = slot % kPageBits;
  Page page;
  SIGSET_RETURN_IF_ERROR(slice_file_->Read(page_no, &page));
  if (set_bit) {
    page.data()[bit >> 3] |= static_cast<uint8_t>(1u << (bit & 7));
  }
  // For a fresh slot the bit is already 0, so clearing is a no-op; the page
  // write still happens in kTouchAllSlices mode to model the worst case.
  SIGSET_RETURN_IF_ERROR(slice_file_->Write(page_no, page));
  return Status::OK();
}

Status BitSlicedSignatureFile::Insert(Oid oid, const ElementSet& set_value) {
  if (num_signatures_ >= capacity_) {
    return Status::OutOfRange("bssf capacity exhausted");
  }
  BitVector sig = MakeSetSignature(set_value, config_);
  uint64_t slot = num_signatures_;
  if (insert_mode_ == BssfInsertMode::kTouchAllSlices) {
    for (uint32_t j = 0; j < config_.f; ++j) {
      SIGSET_RETURN_IF_ERROR(TouchSlice(j, slot, sig.Test(j)));
    }
  } else {
    Status status = Status::OK();
    sig.ForEachSetBit([&](size_t j) {
      if (status.ok()) {
        status = TouchSlice(static_cast<uint32_t>(j), slot, /*set_bit=*/true);
      }
    });
    SIGSET_RETURN_IF_ERROR(status);
  }
  SIGSET_ASSIGN_OR_RETURN(uint64_t oid_slot, oid_file_.Append(oid));
  if (oid_slot != slot) return Status::Internal("slice/OID slot mismatch");
  ++num_signatures_;
  return Status::OK();
}

StatusOr<std::unique_ptr<BitSlicedSignatureFile>>
BitSlicedSignatureFile::CreateFromExisting(const SignatureConfig& config,
                                           uint64_t capacity,
                                           PageFile* slice_file,
                                           PageFile* oid_file,
                                           BssfInsertMode insert_mode,
                                           uint64_t num_signatures) {
  SIGSET_RETURN_IF_ERROR(config.Validate());
  if (num_signatures > capacity) {
    return Status::InvalidArgument("recovered count exceeds capacity");
  }
  std::unique_ptr<BitSlicedSignatureFile> bssf(new BitSlicedSignatureFile(
      config, capacity, slice_file, oid_file, insert_mode));
  uint64_t expected_pages =
      static_cast<uint64_t>(config.f) * bssf->pages_per_slice_;
  if (slice_file->num_pages() != expected_pages) {
    return Status::Corruption(
        "slice store page count does not match configuration");
  }
  SIGSET_RETURN_IF_ERROR(bssf->oid_file_.Recover(num_signatures));
  bssf->num_signatures_ = num_signatures;
  slice_file->stats().Reset();
  oid_file->stats().Reset();
  return bssf;
}

Status BitSlicedSignatureFile::BulkLoad(const std::vector<Oid>& oids,
                                        const std::vector<ElementSet>& sets) {
  if (num_signatures_ != 0) {
    return Status::FailedPrecondition("BulkLoad requires an empty facility");
  }
  if (oids.size() != sets.size()) {
    return Status::InvalidArgument("oids/sets size mismatch");
  }
  if (oids.size() > capacity_) {
    return Status::OutOfRange("bulk load exceeds capacity");
  }
  // Assemble every slice page in memory, then write each exactly once.
  const uint64_t total_pages =
      static_cast<uint64_t>(config_.f) * pages_per_slice_;
  std::vector<Page> pages(total_pages);
  for (uint64_t slot = 0; slot < sets.size(); ++slot) {
    BitVector sig = MakeSetSignature(sets[slot], config_);
    uint64_t page_in_slice = slot / kPageBits;
    uint64_t bit = slot % kPageBits;
    sig.ForEachSetBit([&](size_t j) {
      Page& page = pages[j * pages_per_slice_ + page_in_slice];
      page.data()[bit >> 3] |= static_cast<uint8_t>(1u << (bit & 7));
    });
  }
  for (uint64_t p = 0; p < total_pages; ++p) {
    SIGSET_RETURN_IF_ERROR(slice_file_->Write(static_cast<PageId>(p),
                                              pages[p]));
  }
  for (uint64_t slot = 0; slot < oids.size(); ++slot) {
    SIGSET_ASSIGN_OR_RETURN(uint64_t oid_slot, oid_file_.Append(oids[slot]));
    if (oid_slot != slot) return Status::Internal("bulk OID slot mismatch");
  }
  num_signatures_ = oids.size();
  // Bulk-build I/O is setup, not an experiment cost.
  slice_file_->stats().Reset();
  return Status::OK();
}

Status BitSlicedSignatureFile::Remove(Oid oid,
                                      const ElementSet& /*set_value*/) {
  return oid_file_.MarkDeleted(oid);
}

Status BitSlicedSignatureFile::CombineSlice(uint32_t slice, bool and_combine,
                                            BitVector* acc,
                                            IoStats* io) const {
  if (FailpointRegistry::AnyArmed()) {
    Status fault = FailpointRegistry::Instance().Evaluate("bssf.combine_slice");
    if (!fault.ok()) {
      return Status(fault.code(),
                    fault.message() + " (slice " + std::to_string(slice) + ")");
    }
  }
  Page page;
  uint64_t* words = acc->mutable_words();
  size_t words_done = 0;
  const size_t total_words = acc->num_words();
  for (uint32_t p = 0; p < pages_per_slice_ && words_done < total_words; ++p) {
    PageId page_no = static_cast<PageId>(
        static_cast<uint64_t>(slice) * pages_per_slice_ + p);
    SIGSET_RETURN_IF_ERROR(slice_file_->Read(page_no, &page, io));
    const uint64_t* src = reinterpret_cast<const uint64_t*>(page.data());
    size_t n = std::min(total_words - words_done, kPageSize / 8);
    if (and_combine) {
      for (size_t i = 0; i < n; ++i) words[words_done + i] &= src[i];
    } else {
      for (size_t i = 0; i < n; ++i) words[words_done + i] |= src[i];
    }
    words_done += n;
  }
  return Status::OK();
}

Status BitSlicedSignatureFile::CombineSliceRange(
    const std::vector<uint32_t>& slices, size_t begin, size_t end,
    bool and_combine, BitVector* acc, IoStats* io) const {
  for (size_t i = begin; i < end; ++i) {
    SIGSET_RETURN_IF_ERROR(CombineSlice(slices[i], and_combine, acc, io));
  }
  return Status::OK();
}

Status BitSlicedSignatureFile::CombineSlicesParallel(
    const std::vector<uint32_t>& slices, bool and_combine, BitVector* acc,
    const ParallelExecutionContext* ctx) const {
  const size_t workers =
      ctx == nullptr ? 1 : ctx->WorkersFor(slices.size());
  if (workers <= 1) {
    return CombineSliceRange(slices, 0, slices.size(), and_combine, acc,
                             &slice_file_->stats());
  }
  // Per-worker accumulator bitmaps (initialized to the combine identity) and
  // per-worker IoStats; both merged deterministically after the join.  Every
  // slice is combined by exactly one worker, so each slice page is still
  // read exactly once — logical page accesses equal the serial scan's.
  std::vector<BitVector> accs(workers);
  std::vector<IoStats> ios(workers);
  std::vector<Status> statuses(workers, Status::OK());
  for (BitVector& a : accs) {
    a = BitVector(acc->size());
    if (and_combine) a.SetAll();
  }
  ctx->pool->ParallelFor(
      slices.size(), workers, [&](size_t w, size_t begin, size_t end) {
        statuses[w] = CombineSliceRange(slices, begin, end, and_combine,
                                        &accs[w], &ios[w]);
      });
  for (const IoStats& io : ios) slice_file_->stats() += io;
  SIGSET_RETURN_IF_ERROR(MergeWorkerStatuses(statuses));
  for (const BitVector& a : accs) {
    if (and_combine) {
      acc->AndWith(a);
    } else {
      acc->OrWith(a);
    }
  }
  return Status::OK();
}

StatusOr<std::vector<uint64_t>> BitSlicedSignatureFile::SupersetCandidateSlots(
    const BitVector& query_sig, const ParallelExecutionContext* ctx) const {
  std::vector<uint32_t> slices;
  query_sig.ForEachSetBit(
      [&](size_t j) { slices.push_back(static_cast<uint32_t>(j)); });
  BitVector acc(num_signatures_);
  acc.SetAll();
  SIGSET_RETURN_IF_ERROR(
      CombineSlicesParallel(slices, /*and_combine=*/true, &acc, ctx));
  std::vector<uint64_t> slots;
  acc.ForEachSetBit([&](size_t slot) { slots.push_back(slot); });
  return slots;
}

StatusOr<std::vector<uint64_t>> BitSlicedSignatureFile::SubsetCandidateSlots(
    const BitVector& query_sig, size_t max_slices,
    const ParallelExecutionContext* ctx) const {
  // The zero slices to scan (the paper's partial slice scan caps them).
  std::vector<uint32_t> slices;
  for (uint32_t j = 0; j < config_.f && slices.size() < max_slices; ++j) {
    if (!query_sig.Test(j)) slices.push_back(j);
  }
  BitVector acc(num_signatures_);  // starts all-zero; OR in the zero slices
  SIGSET_RETURN_IF_ERROR(
      CombineSlicesParallel(slices, /*and_combine=*/false, &acc, ctx));
  // Candidates are slots whose accumulated bit stayed 0.
  std::vector<uint64_t> slots;
  for (uint64_t slot = 0; slot < num_signatures_; ++slot) {
    if (!acc.Test(slot)) slots.push_back(slot);
  }
  return slots;
}

StatusOr<std::vector<uint64_t>> BitSlicedSignatureFile::EqualsCandidateSlots(
    const BitVector& query_sig, const ParallelExecutionContext* ctx) const {
  // ones: slots whose signature covers the query (AND of 1-slices);
  // zeros: slots with a 1 in some 0-slice of the query (OR of 0-slices).
  // Equality candidates are ones ∧ ¬zeros.
  std::vector<uint32_t> one_slices;
  std::vector<uint32_t> zero_slices;
  for (uint32_t j = 0; j < config_.f; ++j) {
    (query_sig.Test(j) ? one_slices : zero_slices).push_back(j);
  }
  BitVector ones(num_signatures_);
  ones.SetAll();
  BitVector zeros(num_signatures_);
  SIGSET_RETURN_IF_ERROR(
      CombineSlicesParallel(one_slices, /*and_combine=*/true, &ones, ctx));
  SIGSET_RETURN_IF_ERROR(
      CombineSlicesParallel(zero_slices, /*and_combine=*/false, &zeros, ctx));
  ones.AndNotWith(zeros);
  std::vector<uint64_t> slots;
  ones.ForEachSetBit([&](size_t slot) { slots.push_back(slot); });
  return slots;
}

StatusOr<CandidateResult> BitSlicedSignatureFile::Candidates(
    QueryKind kind, const ElementSet& query) {
  return Candidates(kind, query, nullptr);
}

StatusOr<CandidateResult> BitSlicedSignatureFile::Candidates(
    QueryKind kind, const ElementSet& query,
    const ParallelExecutionContext* ctx) {
  std::vector<uint64_t> slots;
  switch (kind) {
    case QueryKind::kSuperset:
    case QueryKind::kProperSuperset: {  // strictness checked at resolution
      BitVector query_sig = MakeSetSignature(query, config_);
      SIGSET_ASSIGN_OR_RETURN(slots, SupersetCandidateSlots(query_sig, ctx));
      break;
    }
    case QueryKind::kSubset:
    case QueryKind::kProperSubset: {  // strictness checked at resolution
      BitVector query_sig = MakeSetSignature(query, config_);
      SIGSET_ASSIGN_OR_RETURN(
          slots, SubsetCandidateSlots(query_sig,
                                      std::numeric_limits<size_t>::max(),
                                      ctx));
      break;
    }
    case QueryKind::kEquals: {
      BitVector query_sig = MakeSetSignature(query, config_);
      SIGSET_ASSIGN_OR_RETURN(slots, EqualsCandidateSlots(query_sig, ctx));
      break;
    }
    case QueryKind::kOverlaps: {
      // Union of per-element superset filters (extension, paper §6).  Slices
      // shared between element signatures are still read once per element;
      // a production system would memoize, which the micro-bench explores.
      // Parallelism fans out over the query elements (each worker scans its
      // elements' slices through a private accumulator and IoStats).
      SIGSET_ASSIGN_OR_RETURN(slots, OverlapCandidateSlots(query, ctx));
      break;
    }
  }
  CandidateResult result;
  result.exact = false;
  SIGSET_ASSIGN_OR_RETURN(result.oids, oid_file_.GetMany(slots));
  return result;
}

StatusOr<std::vector<uint64_t>> BitSlicedSignatureFile::OverlapCandidateSlots(
    const ElementSet& query, const ParallelExecutionContext* ctx) const {
  const size_t workers = ctx == nullptr ? 1 : ctx->WorkersFor(query.size());
  std::vector<std::vector<uint64_t>> merged(std::max<size_t>(workers, 1));
  std::vector<IoStats> ios(merged.size());
  std::vector<Status> statuses(merged.size(), Status::OK());
  auto scan_elements = [&](size_t w, size_t begin, size_t end) {
    for (size_t i = begin; i < end && statuses[w].ok(); ++i) {
      BitVector es = MakeElementSignature(query[i], config_);
      std::vector<uint32_t> slices;
      es.ForEachSetBit(
          [&](size_t j) { slices.push_back(static_cast<uint32_t>(j)); });
      BitVector acc(num_signatures_);
      acc.SetAll();
      statuses[w] = CombineSliceRange(slices, 0, slices.size(),
                                      /*and_combine=*/true, &acc, &ios[w]);
      if (!statuses[w].ok()) return;
      acc.ForEachSetBit([&](size_t slot) { merged[w].push_back(slot); });
    }
  };
  if (workers <= 1) {
    scan_elements(0, 0, query.size());
  } else {
    ctx->pool->ParallelFor(query.size(), workers, scan_elements);
  }
  for (const IoStats& io : ios) slice_file_->stats() += io;
  SIGSET_RETURN_IF_ERROR(MergeWorkerStatuses(statuses));
  std::vector<uint64_t> slots;
  for (const std::vector<uint64_t>& part : merged) {
    slots.insert(slots.end(), part.begin(), part.end());
  }
  std::sort(slots.begin(), slots.end());
  slots.erase(std::unique(slots.begin(), slots.end()), slots.end());
  return slots;
}

uint64_t BitSlicedSignatureFile::StoragePages() const {
  return static_cast<uint64_t>(slice_file_->num_pages()) +
         oid_file_.num_pages();
}

}  // namespace sigsetdb
