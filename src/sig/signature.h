// Superimposed-coding signatures for set values (paper §3.1).
//
// Each set element yields an *element signature*: an F-bit pattern with
// exactly m one bits at pseudo-random positions determined by the element
// value.  A *set signature* is the bitwise OR of the element signatures of
// the set's members.  The two search conditions of the paper are:
//
//   T ⊇ Q:  every 1 bit of the query signature is set in the target
//           signature (query_sig ⊆ target_sig as bit sets);
//   T ⊆ Q:  every 1 bit of the target signature is set in the query
//           signature (target_sig ⊆ query_sig).
//
// Both conditions are *complete* (no false negatives) and *unsound* (false
// drops), which is what makes signatures a filter: candidate objects must be
// verified against the stored set in the false-drop-resolution step.

#ifndef SIGSET_SIG_SIGNATURE_H_
#define SIGSET_SIG_SIGNATURE_H_

#include <cstdint>
#include <vector>

#include "obj/object.h"
#include "sig/kernels.h"
#include "util/bitvector.h"
#include "util/status.h"

namespace sigsetdb {

// Signature design parameters (paper Table 1: F and m).
struct SignatureConfig {
  uint32_t f;  // signature size in bits
  uint32_t m;  // one bits per element signature

  Status Validate() const {
    if (f == 0) return Status::InvalidArgument("F must be positive");
    if (m == 0 || m > f) {
      return Status::InvalidArgument("m must be in [1, F]");
    }
    return Status::OK();
  }
};

// Returns the m distinct bit positions (sorted) of `element`'s signature.
// A pure function of (element, config): targets and queries always agree.
std::vector<uint32_t> ElementSignaturePositions(uint64_t element,
                                                const SignatureConfig& config);

// Builds the F-bit element signature of `element`.
BitVector MakeElementSignature(uint64_t element,
                               const SignatureConfig& config);

// Builds the set signature of `set` (OR of element signatures).
BitVector MakeSetSignature(const ElementSet& set,
                           const SignatureConfig& config);

// Builds a query signature from only the first `use_elements` elements of
// `query` — the paper's smart object-retrieval strategy for T ⊇ Q (§5.1.3)
// deliberately under-specifies the query signature to reduce the number of
// bit slices that must be scanned.  `use_elements` is clamped to
// query.size().
BitVector MakePartialQuerySignature(const ElementSet& query,
                                    size_t use_elements,
                                    const SignatureConfig& config);

// Search conditions (see file comment).  Inclusion runs through the
// dispatched kernels: SSF full scans evaluate these once per stored
// signature, so the early-exit ContainsAll kernel is the scan's inner loop.
inline bool MatchesSuperset(const BitVector& target_sig,
                            const BitVector& query_sig) {
  return KernelIsSubsetOf(query_sig, target_sig);
}
inline bool MatchesSubset(const BitVector& target_sig,
                          const BitVector& query_sig) {
  return KernelIsSubsetOf(target_sig, query_sig);
}
// Equality prefilter: equal sets have equal signatures.
inline bool MatchesEquals(const BitVector& target_sig,
                          const BitVector& query_sig) {
  return target_sig == query_sig;
}

}  // namespace sigsetdb

#endif  // SIGSET_SIG_SIGNATURE_H_
