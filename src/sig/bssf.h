// Bit-Sliced Signature File (paper §4.2).
//
// Signatures are stored column-wise: slice j holds bit j of every stored
// signature, so a query touches only the slices its search condition needs —
//   T ⊇ Q: the m_q slices where the query signature is 1 (AND-combined;
//          candidates are slots whose accumulated bit stays 1);
//   T ⊆ Q: the F − m_q slices where the query signature is 0 (OR-combined;
//          candidates are slots whose accumulated bit stays 0).
//
// Smart retrieval (paper §5.1.3 and §5.2.2) is exposed through two knobs:
// building the query signature from only k query elements (superset
// queries), and scanning only s of the zero slices (subset queries).  Both
// keep completeness — they can only increase the number of candidates.
//
// Insertion supports the paper's worst-case mode (touch all F slices, giving
// UC_I = F + 1) and a sparse mode that writes only the m_t one-bit slices,
// realizing the improvement the paper anticipates in §6.
//
// Slice scans optionally parallelize over a ParallelExecutionContext: the
// needed slices are partitioned into contiguous chunks, each worker AND/OR-
// combines its chunk into a private accumulator bitmap through a private
// IoStats, and the accumulators (and stats) are merged on join.  Every slice
// page is still read exactly once, so the logical page-access totals — the
// paper's metric — are identical to the serial scan.

#ifndef SIGSET_SIG_BSSF_H_
#define SIGSET_SIG_BSSF_H_

#include <limits>
#include <memory>

#include "obj/oid_file.h"
#include "sig/facility.h"
#include "sig/hot_tier.h"
#include "sig/signature.h"
#include "sig/skip_index.h"
#include "storage/page_file.h"

namespace sigsetdb {

// How Insert touches the slice store.
enum class BssfInsertMode {
  // Read-modify-write every one of the F slices (paper's worst case).
  kTouchAllSlices,
  // Touch only the slices where the new signature has a 1 bit (appends land
  // on zero-initialized bits, so skipping zero slices is lossless).
  kSparse,
};

// Bit-sliced signature file over one indexed set attribute.
class BitSlicedSignatureFile : public SetAccessFacility {
 public:
  // `capacity` is the maximum number of signatures the slice store can hold;
  // slices are pre-allocated (F · ⌈capacity/(P·b)⌉ pages, all zero).
  // Neither file is owned.
  static StatusOr<std::unique_ptr<BitSlicedSignatureFile>> Create(
      const SignatureConfig& config, uint64_t capacity, PageFile* slice_file,
      PageFile* oid_file,
      BssfInsertMode insert_mode = BssfInsertMode::kTouchAllSlices);

  // Reopens a facility over previously populated files; `num_signatures`
  // comes from the manifest written by SetIndex::Checkpoint().
  static StatusOr<std::unique_ptr<BitSlicedSignatureFile>>
  CreateFromExisting(const SignatureConfig& config, uint64_t capacity,
                     PageFile* slice_file, PageFile* oid_file,
                     BssfInsertMode insert_mode, uint64_t num_signatures);

  // Lightweight read-only view over fixed-epoch snapshot files: no recovery
  // scan, no skip-summary rebuild, no stats reset (counters come from the
  // SnapshotState published with the epoch).  Only the query surface may be
  // used; the skip index stays disabled because its summaries are empty.
  static StatusOr<std::unique_ptr<BitSlicedSignatureFile>> CreateReadView(
      const SignatureConfig& config, uint64_t capacity, PageFile* slice_file,
      PageFile* oid_file, uint64_t num_signatures, uint64_t num_live);

  const std::string& name() const override { return name_; }

  // Appends (or, when a tombstoned slot is free, reuses) a signature
  // column.  A reused slot is written as a full column — every slice bit is
  // set-or-cleared — so stale bits from the previous occupant (or from a
  // crash mid-clear) can never surface as candidates or mask subset
  // candidates.
  Status Insert(Oid oid, const ElementSet& set_value) override;

  // Tombstones the OID entry (commit point), then clears the signature's
  // set bits from the slot's column so the freed column returns to
  // all-zero and sparse-mode reuse stays sound.  A crash between the two
  // steps leaves a tombstoned slot with stale bits — harmless, because
  // reuse rewrites the full column.
  Status Remove(Oid oid, const ElementSet& set_value) override;

  // Grouped write path: each dirty slice page is read-modified-written once
  // for the whole batch (the tentpole's F-pages-once-per-batch property),
  // combining the batch's clears (removes), full-column reuse writes, and
  // fresh appends.  In kTouchAllSlices mode every slice page covering a
  // touched slot range is written, preserving the paper's worst-case
  // accounting per batch instead of per insert.
  Status ApplyBatch(const std::vector<BatchOp>& ops) override;

  // Re-slots the live columns densely into the target files (slot order
  // preserved) and returns the live count.  Writes every slice page of the
  // target store — CreateFromExisting demands the exact page count — so a
  // crashed earlier attempt's leftovers are overwritten, making compaction
  // retryable against the same generation files.
  StatusOr<uint64_t> CompactTo(PageFile* new_slice_file,
                               PageFile* new_oid_file) const;

  StatusOr<CandidateResult> Candidates(QueryKind kind,
                                       const ElementSet& query) override;
  // Parallel candidate selection: slice scans fan out over `ctx` (serial
  // when null).  Same candidates and logical page-access totals.
  StatusOr<CandidateResult> Candidates(
      QueryKind kind, const ElementSet& query,
      const ParallelExecutionContext* ctx) override;
  uint64_t StoragePages() const override;

  // Tracing: {"slice scan", slice-file stats}, {"oid lookup", oid stats}.
  std::vector<std::pair<std::string, IoStats>> StageStats() const override {
    return {{"slice scan", slice_file_->stats()},
            {"oid lookup", oid_file_.stats()}};
  }

  // Bulk-builds the slice store from the full database (one pass over the
  // sets, one write per slice page) — the experiment-setup path used by the
  // paper-scale benchmarks.  Requires an empty facility; `sets[i]` is the
  // set value of `oids[i]`.  Setup I/O is excluded from the access counters.
  Status BulkLoad(const std::vector<Oid>& oids,
                  const std::vector<ElementSet>& sets);

  // --- smart-retrieval and measurement API ---

  // Slots whose signature covers `query_sig` (T ⊇ Q condition).  Reads one
  // slice per set bit of `query_sig`.  Callers implement the smart k-element
  // strategy by passing MakePartialQuerySignature(...).  A non-null `ctx`
  // partitions the slices across its pool.
  StatusOr<std::vector<uint64_t>> SupersetCandidateSlots(
      const BitVector& query_sig,
      const ParallelExecutionContext* ctx = nullptr) const;

  // Slots whose signature is covered by `query_sig` (T ⊆ Q condition),
  // scanning at most `max_slices` of the zero slices (the paper's partial
  // slice scan; default scans them all).  A non-null `ctx` partitions the
  // scanned slices across its pool.
  StatusOr<std::vector<uint64_t>> SubsetCandidateSlots(
      const BitVector& query_sig,
      size_t max_slices = std::numeric_limits<size_t>::max(),
      const ParallelExecutionContext* ctx = nullptr) const;

  // Slots whose signature equals `query_sig` (set-equality prefilter,
  // extension).  Reads all F slices; a non-null `ctx` partitions them.
  StatusOr<std::vector<uint64_t>> EqualsCandidateSlots(
      const BitVector& query_sig,
      const ParallelExecutionContext* ctx = nullptr) const;

  StatusOr<std::vector<Oid>> ResolveSlots(
      const std::vector<uint64_t>& slots) const {
    return oid_file_.GetMany(slots);
  }

  uint64_t num_signatures() const { return num_signatures_; }
  // Signatures not tombstoned (the model's live population after deletes).
  uint64_t num_live() const { return oid_file_.num_live(); }
  uint64_t capacity() const { return capacity_; }
  const SignatureConfig& config() const { return config_; }

  // Pages per bit slice — the paper's ⌈N/(P·b)⌉ term (1 for N = 32,000).
  uint32_t pages_per_slice() const { return pages_per_slice_; }

  // Pages of the slice store alone (= F · pages_per_slice()).
  uint64_t SlicePages() const { return slice_file_->num_pages(); }

  // Whether scans consult the slice-page skip index (summaries are always
  // maintained; only consultation is switched).  Off by default so page-
  // access totals are bit-identical to the pre-skip-index behaviour.  When
  // on, AND-combines skip provably dead page columns and OR-combines skip
  // empty pages; each avoided read is charged to the slice file's
  // pages_skipped counter instead of page_reads.
  void set_skip_index_enabled(bool on) { skip_enabled_ = on; }
  bool skip_index_enabled() const { return skip_enabled_; }
  const SliceSkipIndex& skip_index() const { return skip_index_; }

  // Whether scans consult the pinned hot-slice tier (copies are kept
  // coherent by the write paths either way; only consultation and admission
  // are switched).  Off by default so every slice access still reaches the
  // page file and access totals stay bit-identical to the pre-tier
  // behaviour.  When on, a scan read of a pinned page is served from the
  // in-memory copy and charged to pages_hot instead of page_reads — so
  // reads(on) + hots(on) == reads(off) for any query stream.
  void set_hot_tier_enabled(bool on) { hot_enabled_ = on; }
  bool hot_tier_enabled() const { return hot_enabled_; }
  void set_hot_tier_capacity(size_t pages) { hot_tier_.set_capacity(pages); }
  const HotSliceTier& hot_tier() const { return hot_tier_; }

 private:
  BitSlicedSignatureFile(const SignatureConfig& config, uint64_t capacity,
                         PageFile* slice_file, PageFile* oid_file,
                         BssfInsertMode insert_mode);

  Status TouchSlice(uint32_t slice, uint64_t slot, bool set_bit);
  // Writes the full column for `slot` (every slice set-or-cleared per
  // `sig`) — the reuse path's defence against stale bits.
  Status WriteFullColumn(uint64_t slot, const BitVector& sig);

  // Reads slice `slice` and combines it into `acc` (num bits =
  // num_signatures): AND when `and_combine`, OR otherwise.  Page reads are
  // charged to `*io` (a worker-local IoStats on the parallel path).  With
  // the skip index enabled, AND-combines skip pages in `*dead_columns`
  // (callers zero the accumulator ranges afterwards via ApplyDeadColumns)
  // and OR-combines skip pages whose summary is empty; skipped pages are
  // charged to io->pages_skipped.
  Status CombineSlice(uint32_t slice, bool and_combine, BitVector* acc,
                      IoStats* io,
                      const std::vector<bool>* dead_columns = nullptr) const;

  // Combines `slices[begin..end)` serially into `acc` through `io`.
  Status CombineSliceRange(const std::vector<uint32_t>& slices,
                           size_t begin, size_t end, bool and_combine,
                           BitVector* acc, IoStats* io,
                           const std::vector<bool>* dead_columns =
                               nullptr) const;

  // Skip planning for an AND-combine over `slices`: the dead-column set
  // sized to `acc`'s page span, or an empty vector when the skip index is
  // off (callers treat empty as "no skipping").
  std::vector<bool> PlanDeadColumns(const std::vector<uint32_t>& slices,
                                    const BitVector& acc) const;

  // Zeroes acc's words for every dead column — the AND result the skipped
  // reads would have produced (each dead group is zeroed by some scanned
  // slice, so the column's AND is provably zero).
  static void ApplyDeadColumns(const std::vector<bool>& dead_columns,
                               BitVector* acc);

  // AND/OR-combines all of `slices` into `*acc`, fanning out over `ctx`
  // when it is parallel: each worker combines a contiguous chunk into a
  // private accumulator, then accumulators are AND/OR-merged in worker
  // order and worker-local stats are added to the slice file's counters.
  Status CombineSlicesParallel(const std::vector<uint32_t>& slices,
                               bool and_combine, BitVector* acc,
                               const ParallelExecutionContext* ctx) const;

  // Union of per-element superset filters for T ∩ Q ≠ ∅, fanned out over
  // the query elements.
  StatusOr<std::vector<uint64_t>> OverlapCandidateSlots(
      const ElementSet& query, const ParallelExecutionContext* ctx) const;

  std::string name_ = "bssf";
  SignatureConfig config_;
  uint64_t capacity_;
  uint32_t pages_per_slice_;
  PageFile* slice_file_;
  OidFile oid_file_;
  BssfInsertMode insert_mode_;
  uint64_t num_signatures_ = 0;
  // Per-slice-page summaries; maintained by every write path (the writer
  // always holds the page image, so updates are exact and I/O-free) and
  // rebuilt by CreateFromExisting's recovery scan.
  SliceSkipIndex skip_index_;
  bool skip_enabled_ = false;
  // Pinned copies of the hottest slice pages; mutable because the scan path
  // (const) both counts accesses and admits — see sig/hot_tier.h for the
  // concurrency discipline.
  mutable HotSliceTier hot_tier_;
  bool hot_enabled_ = false;
};

}  // namespace sigsetdb

#endif  // SIGSET_SIG_BSSF_H_
