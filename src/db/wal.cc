#include "db/wal.h"

#include <algorithm>
#include <chrono>
#include <cstring>

#include "util/crc32c.h"

namespace sigsetdb {

namespace {

// "SWAL" little-endian.
constexpr uint32_t kHeaderMagic = 0x4C415753u;
constexpr uint32_t kVersion = 1;
// Arbitrary non-text marker opening every record frame.
constexpr uint32_t kRecMagic = 0xD1CEB10Cu;

// magic | type | payload_len | lsn | crc | head_stamp.
constexpr size_t kFrameHeaderBytes = 4 + 4 + 4 + 8 + 4 + 4;
constexpr size_t kFrameTailBytes = 4;  // tail_stamp
// Far above any real record (a full WriteBatch of page-sized sets is a few
// hundred KiB); mainly a sanity bound so a corrupt length field cannot make
// the scanner chase gigabytes.
constexpr size_t kMaxPayload = 64u << 20;

void EncodeU32(uint8_t* p, uint32_t v) {
  for (int i = 0; i < 4; ++i) p[i] = (v >> (8 * i)) & 0xFF;
}
void EncodeU64(uint8_t* p, uint64_t v) {
  for (int i = 0; i < 8; ++i) p[i] = (v >> (8 * i)) & 0xFF;
}
uint32_t DecodeU32(const uint8_t* p) {
  uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= static_cast<uint32_t>(p[i]) << (8 * i);
  return v;
}
uint64_t DecodeU64(const uint8_t* p) {
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<uint64_t>(p[i]) << (8 * i);
  return v;
}

// CRC over the type field then the payload, so a bit flip in either is
// caught (lsn integrity comes from the stamps and strict sequencing).
uint32_t FrameCrc(uint32_t type, const uint8_t* payload, size_t n) {
  uint8_t type_le[4];
  EncodeU32(type_le, type);
  return Crc32cExtend(Crc32c(type_le, 4), payload, n);
}

}  // namespace

WriteAheadLog::WriteAheadLog(PageFile* file, MetricsRegistry* metrics)
    : file_(file) {
  if (metrics != nullptr) {
    fsyncs_ = metrics->counter("wal.fsyncs");
    group_size_ = metrics->histogram("wal.group_size");
    fsync_us_ = metrics->histogram("wal.fsync_us");
  }
}

uint32_t WriteAheadLog::StampFor(uint64_t lsn) {
  // Fibonacci-hash mix of the lsn; any fixed, well-spread injection works —
  // the point is that a given byte position only validates for exactly one
  // lsn, never for stale or torn content.
  return static_cast<uint32_t>((lsn * 0x9E3779B97F4A7C15ull) >> 32) ^
         0xA5C3E1F0u;
}

Status WriteAheadLog::WriteHeader(PageFile* file, uint64_t start_lsn) {
  if (file->num_pages() == 0) {
    SIGSET_RETURN_IF_ERROR(file->Allocate().status());
  }
  Page page;
  page.Zero();
  EncodeU32(page.data(), kHeaderMagic);
  EncodeU32(page.data() + 4, kVersion);
  EncodeU64(page.data() + 8, start_lsn);
  EncodeU32(page.data() + 16, Crc32c(page.data(), 16));
  SIGSET_RETURN_IF_ERROR(file->Write(0, page));
  return file->Sync();
}

StatusOr<std::unique_ptr<WriteAheadLog>> WriteAheadLog::Create(
    PageFile* file, uint64_t start_lsn, MetricsRegistry* metrics) {
  SIGSET_RETURN_IF_ERROR(WriteHeader(file, start_lsn));
  std::unique_ptr<WriteAheadLog> log(new WriteAheadLog(file, metrics));
  log->start_lsn_ = start_lsn;
  log->last_lsn_ = start_lsn;
  log->durable_lsn_ = start_lsn;
  return log;
}

StatusOr<WriteAheadLog::OpenResult> WriteAheadLog::Open(
    PageFile* file, uint64_t fallback_start_lsn, MetricsRegistry* metrics) {
  OpenResult result;

  uint64_t start_lsn = fallback_start_lsn;
  bool valid_header = false;
  if (file->num_pages() > 0) {
    Page header;
    Status s = file->Read(0, &header);
    if (!s.ok()) return s;
    if (DecodeU32(header.data()) == kHeaderMagic &&
        DecodeU32(header.data() + 4) == kVersion &&
        DecodeU32(header.data() + 16) == Crc32c(header.data(), 16)) {
      valid_header = true;
      start_lsn = DecodeU64(header.data() + 8);
    }
  }
  if (!valid_header) {
    // A missing or torn header.  The header is written at Create and
    // rewritten only by Truncate — and Truncate runs strictly after a
    // checkpoint made every record redundant — so reinitializing at the
    // manifest's checkpoint lsn cannot drop an unreplayed record.
    result.tail_truncated = file->num_pages() > 0;
    SIGSET_RETURN_IF_ERROR(WriteHeader(file, fallback_start_lsn));
    std::unique_ptr<WriteAheadLog> log(new WriteAheadLog(file, metrics));
    log->start_lsn_ = fallback_start_lsn;
    log->last_lsn_ = fallback_start_lsn;
    log->durable_lsn_ = fallback_start_lsn;
    result.log = std::move(log);
    return result;
  }

  // Logs live between checkpoints, so the body is small; reading it whole
  // keeps the scanner a plain byte loop.
  const PageId num_pages = file->num_pages();
  std::vector<uint8_t> body;
  body.resize(static_cast<size_t>(num_pages > 0 ? num_pages - 1 : 0) *
              kPageSize);
  for (PageId p = 1; p < num_pages; ++p) {
    Page page;
    SIGSET_RETURN_IF_ERROR(file->Read(p, &page));
    std::memcpy(&body[(p - 1) * kPageSize], page.data(), kPageSize);
  }

  size_t pos = 0;
  uint64_t expected_lsn = start_lsn + 1;
  for (;;) {
    if (body.size() - pos < kFrameHeaderBytes + kFrameTailBytes) break;
    const uint8_t* h = &body[pos];
    if (DecodeU32(h) != kRecMagic) break;
    const uint32_t type = DecodeU32(h + 4);
    const uint32_t len = DecodeU32(h + 8);
    const uint64_t lsn = DecodeU64(h + 12);
    const uint32_t crc = DecodeU32(h + 20);
    const uint32_t head_stamp = DecodeU32(h + 24);
    if (len > kMaxPayload) break;
    if (body.size() - pos - kFrameHeaderBytes - kFrameTailBytes < len) break;
    if (lsn != expected_lsn) break;
    if (head_stamp != StampFor(lsn)) break;
    const uint8_t* payload = h + kFrameHeaderBytes;
    const uint32_t tail_stamp = DecodeU32(payload + len);
    if (tail_stamp != ~head_stamp) break;
    if (crc != FrameCrc(type, payload, len)) break;
    StatusOr<LogRecord> parsed = LogRecord::ParsePayload(type, payload, len);
    if (!parsed.ok()) break;
    LogRecord rec = std::move(parsed).value();
    rec.lsn = lsn;
    result.records.push_back(std::move(rec));
    pos += kFrameHeaderBytes + len + kFrameTailBytes;
    ++expected_lsn;
  }
  // Anything after the committed sequence is a torn tail (or stale bytes
  // from before a truncation); either way it is not replayed.
  for (size_t i = pos; i < body.size() && !result.tail_truncated; ++i) {
    if (body[i] != 0) result.tail_truncated = true;
  }

  std::unique_ptr<WriteAheadLog> log(new WriteAheadLog(file, metrics));
  log->start_lsn_ = start_lsn;
  log->last_lsn_ = expected_lsn - 1;
  log->durable_lsn_ = log->last_lsn_;
  log->tail_pos_ = pos;
  log->flushed_pos_ = pos;
  log->buf_base_ = (pos / kPageSize) * kPageSize;
  // Retain the durable partial tail page so the next flush rewrites it
  // whole (appends land mid-page).
  log->pending_.assign(body.begin() + log->buf_base_, body.begin() + pos);
  result.log = std::move(log);
  return result;
}

StatusOr<uint64_t> WriteAheadLog::Append(const LogRecord& rec) {
  std::vector<uint8_t> payload = rec.SerializePayload();
  if (payload.size() > kMaxPayload) {
    return Status::InvalidArgument("log record payload too large");
  }
  std::lock_guard<std::mutex> lock(mu_);
  if (!io_status_.ok()) return io_status_;
  const uint64_t lsn = ++last_lsn_;
  const uint32_t type = static_cast<uint32_t>(rec.type);
  const uint32_t head_stamp = StampFor(lsn);
  uint8_t header[kFrameHeaderBytes];
  EncodeU32(header, kRecMagic);
  EncodeU32(header + 4, type);
  EncodeU32(header + 8, static_cast<uint32_t>(payload.size()));
  EncodeU64(header + 12, lsn);
  EncodeU32(header + 20, FrameCrc(type, payload.data(), payload.size()));
  EncodeU32(header + 24, head_stamp);
  uint8_t tail[kFrameTailBytes];
  EncodeU32(tail, ~head_stamp);
  pending_.insert(pending_.end(), header, header + kFrameHeaderBytes);
  pending_.insert(pending_.end(), payload.begin(), payload.end());
  pending_.insert(pending_.end(), tail, tail + kFrameTailBytes);
  tail_pos_ += kFrameHeaderBytes + payload.size() + kFrameTailBytes;
  append_cv_.notify_one();
  return lsn;
}

Status WriteAheadLog::FlushLocked(std::unique_lock<std::mutex>* lock) {
  // Leader path; called with *lock held and flushing_ == true.
  if (group_window_us_ > 0) {
    // Hold the fsync open for the window so concurrent writers can join
    // this group.  Appends signal append_cv_; we re-sleep until the window
    // elapses (more arrivals only grow the snapshot below).
    const auto deadline = std::chrono::steady_clock::now() +
                          std::chrono::microseconds(group_window_us_);
    while (std::chrono::steady_clock::now() < deadline) {
      append_cv_.wait_until(*lock, deadline);
    }
  }
  const uint64_t snap_lsn = last_lsn_;
  const uint64_t snap_tail = tail_pos_;
  const uint64_t snap_base = buf_base_;
  const uint64_t prev_durable = durable_lsn_;
  std::vector<uint8_t> image(pending_.begin(),
                             pending_.begin() + (snap_tail - snap_base));
  lock->unlock();

  Status io = Status::OK();
  // Pages covering [snap_base, snap_tail), record region starting at page 1.
  const PageId first_page = 1 + static_cast<PageId>(snap_base / kPageSize);
  const PageId last_page =
      1 + static_cast<PageId>(snap_tail > 0 ? (snap_tail - 1) / kPageSize : 0);
  for (PageId p = first_page; p <= last_page && io.ok(); ++p) {
    while (file_->num_pages() <= p) {
      StatusOr<PageId> alloc = file_->Allocate();
      if (!alloc.ok()) {
        io = alloc.status();
        break;
      }
    }
    if (!io.ok()) break;
    Page page;
    page.Zero();
    const uint64_t page_start = static_cast<uint64_t>(p - 1) * kPageSize;
    const size_t off = page_start - snap_base;
    const size_t n = std::min<size_t>(kPageSize, image.size() - off);
    std::memcpy(page.data(), image.data() + off, n);
    io = file_->Write(p, page);
  }
  if (io.ok()) {
    if (fsync_us_ != nullptr) {
      const auto sync_start = std::chrono::steady_clock::now();
      io = file_->Sync();
      fsync_us_->Record(static_cast<uint64_t>(
          std::chrono::duration_cast<std::chrono::microseconds>(
              std::chrono::steady_clock::now() - sync_start)
              .count()));
    } else {
      io = file_->Sync();
    }
  }

  lock->lock();
  if (!io.ok()) {
    // Fsync failed: the durable subset of this group is unknown, which is
    // indistinguishable from a crash.  Poison the log.
    io_status_ = io;
    return io;
  }
  durable_lsn_ = snap_lsn;
  flushed_pos_ = snap_tail;
  // Drop fully durable pages from the front of the buffer; keep the
  // partial tail page (and anything appended during the flush).
  const uint64_t new_base = (flushed_pos_ / kPageSize) * kPageSize;
  pending_.erase(pending_.begin(),
                 pending_.begin() + (new_base - buf_base_));
  buf_base_ = new_base;
  if (fsyncs_ != nullptr) fsyncs_->Increment();
  if (group_size_ != nullptr) group_size_->Record(snap_lsn - prev_durable);
  return Status::OK();
}

Status WriteAheadLog::Commit(uint64_t lsn) {
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    if (!io_status_.ok()) return io_status_;
    if (durable_lsn_ >= lsn) return Status::OK();
    if (!flushing_) break;
    cv_.wait(lock);
  }
  flushing_ = true;
  Status io = FlushLocked(&lock);
  flushing_ = false;
  cv_.notify_all();
  if (!io.ok()) return io;
  // One flush retires every record appended before its snapshot — ours
  // among them, since we appended before arriving here.
  return durable_lsn_ >= lsn ? Status::OK() : io_status_;
}

StatusOr<uint64_t> WriteAheadLog::AppendAndCommit(const LogRecord& rec) {
  SIGSET_ASSIGN_OR_RETURN(uint64_t lsn, Append(rec));
  SIGSET_RETURN_IF_ERROR(Commit(lsn));
  return lsn;
}

Status WriteAheadLog::Truncate(uint64_t upto_lsn) {
  std::unique_lock<std::mutex> lock(mu_);
  while (flushing_) cv_.wait(lock);
  if (!io_status_.ok()) return io_status_;
  if (upto_lsn != last_lsn_ || durable_lsn_ != last_lsn_) {
    return Status::FailedPrecondition(
        "wal truncate requires every record checkpointed and durable");
  }
  flushing_ = true;  // exclude concurrent commits during the header rewrite
  lock.unlock();
  Status io = WriteHeader(file_, upto_lsn);
  lock.lock();
  flushing_ = false;
  if (!io.ok()) {
    io_status_ = io;
    cv_.notify_all();
    return io;
  }
  start_lsn_ = upto_lsn;
  tail_pos_ = 0;
  flushed_pos_ = 0;
  buf_base_ = 0;
  pending_.clear();
  cv_.notify_all();
  return Status::OK();
}

uint64_t WriteAheadLog::last_lsn() const {
  std::lock_guard<std::mutex> lock(mu_);
  return last_lsn_;
}

uint64_t WriteAheadLog::durable_lsn() const {
  std::lock_guard<std::mutex> lock(mu_);
  return durable_lsn_;
}

uint64_t WriteAheadLog::start_lsn() const {
  std::lock_guard<std::mutex> lock(mu_);
  return start_lsn_;
}

}  // namespace sigsetdb
