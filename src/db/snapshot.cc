#include "db/snapshot.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "obj/object.h"
#include "sig/facility.h"
#include "sig/signature.h"

namespace sigsetdb {

namespace {

// Predicate check on an in-memory set value (same helper Database keeps
// file-locally; snapshots resolve candidates the same way).
bool SatisfiesValue(const ElementSet& value, QueryKind kind,
                    const ElementSet& query) {
  StoredObject probe;
  probe.set_value = value;
  switch (kind) {
    case QueryKind::kSuperset:
      return SatisfiesSuperset(probe, query);
    case QueryKind::kSubset:
      return SatisfiesSubset(probe, query);
    case QueryKind::kProperSuperset:
      return SatisfiesProperSuperset(probe, query);
    case QueryKind::kProperSubset:
      return SatisfiesProperSubset(probe, query);
    case QueryKind::kEquals:
      return SatisfiesEquals(probe, query);
    case QueryKind::kOverlaps:
      return SatisfiesOverlap(probe, query);
  }
  return false;
}

// Frozen model inputs for one attribute (mirrors SetIndex::LiveDbParams /
// Database::ModelFor, computed from the published scalars instead of live
// member state).
struct FrozenModel {
  DatabaseParams db;
  SignatureParams sig;
  NixParams nix;
  int64_t dt;
};

FrozenModel ModelFromState(const SnapshotState& state,
                           const SnapshotAttributeState& attr) {
  FrozenModel mv{DatabaseParams{}, SignatureParams{attr.sig.f, attr.sig.m},
                 NixParams{}, 1};
  mv.db.n = std::max<int64_t>(1, static_cast<int64_t>(state.num_objects));
  mv.db.v = attr.domain_estimate;
  mv.nix.fanout = attr.nix_fanout;
  mv.dt = state.num_objects == 0
              ? 1
              : std::max<int64_t>(
                    1, static_cast<int64_t>(std::llround(
                           static_cast<double>(attr.total_elements) /
                           static_cast<double>(state.num_objects))));
  if (mv.db.v < mv.dt + 1) mv.db.v = mv.dt + 1;  // combinatorics need V >= Dt
  return mv;
}

// Builds the read-only facility views for one attribute over fixed-epoch
// adapters.  Each out-param is filled only when the facility is maintained.
Status BuildAttrViews(const SnapshotAttributeState& attr, uint64_t epoch,
                      std::unique_ptr<EpochReadView>* ssf_sig_view,
                      std::unique_ptr<EpochReadView>* ssf_oid_view,
                      std::unique_ptr<EpochReadView>* bssf_slices_view,
                      std::unique_ptr<EpochReadView>* bssf_oid_view,
                      std::unique_ptr<EpochReadView>* nix_view,
                      std::unique_ptr<SequentialSignatureFile>* ssf,
                      std::unique_ptr<BitSlicedSignatureFile>* bssf,
                      std::unique_ptr<NestedIndex>* nix) {
  if (attr.maintain_ssf) {
    if (attr.ssf_sig == nullptr || attr.ssf_oid == nullptr) {
      return Status::Internal("snapshot state missing ssf files");
    }
    *ssf_sig_view = std::make_unique<EpochReadView>(attr.ssf_sig, epoch);
    *ssf_oid_view = std::make_unique<EpochReadView>(attr.ssf_oid, epoch);
    SIGSET_ASSIGN_OR_RETURN(
        *ssf, SequentialSignatureFile::CreateReadView(
                  attr.sig, ssf_sig_view->get(), ssf_oid_view->get(),
                  attr.num_signatures, attr.num_live));
  }
  if (attr.maintain_bssf) {
    if (attr.bssf_slices == nullptr || attr.bssf_oid == nullptr) {
      return Status::Internal("snapshot state missing bssf files");
    }
    *bssf_slices_view =
        std::make_unique<EpochReadView>(attr.bssf_slices, epoch);
    *bssf_oid_view = std::make_unique<EpochReadView>(attr.bssf_oid, epoch);
    SIGSET_ASSIGN_OR_RETURN(
        *bssf, BitSlicedSignatureFile::CreateReadView(
                   attr.sig, attr.capacity, bssf_slices_view->get(),
                   bssf_oid_view->get(), attr.num_signatures, attr.num_live));
  }
  if (attr.maintain_nix) {
    if (attr.nix == nullptr) {
      return Status::Internal("snapshot state missing nix file");
    }
    *nix_view = std::make_unique<EpochReadView>(attr.nix, epoch);
    SIGSET_ASSIGN_OR_RETURN(
        *nix, NestedIndex::CreateFromExisting(
                  nix_view->get(), attr.nix_fanout, attr.nix_root,
                  attr.nix_height, attr.nix_leaves, attr.nix_internal,
                  attr.nix_overflow));
  }
  return Status::OK();
}

}  // namespace

// ---------------------------------------------------------------------------
// Snapshot (single-attribute SetIndex view)
// ---------------------------------------------------------------------------

Snapshot::Snapshot(EpochPin pin, MetricsRegistry* metrics,
                   FlightRecorder* recorder)
    : pin_(std::move(pin)),
      state_(pin_.state()),
      metrics_(metrics),
      recorder_(recorder) {}

StatusOr<std::unique_ptr<Snapshot>> Snapshot::Create(
    EpochPin pin, MetricsRegistry* metrics, FlightRecorder* recorder) {
  if (!pin.pinned() || pin.state() == nullptr) {
    return Status::FailedPrecondition("no published snapshot state to pin");
  }
  std::unique_ptr<Snapshot> snap(
      new Snapshot(std::move(pin), metrics, recorder));
  SIGSET_RETURN_IF_ERROR(snap->Init());
  return snap;
}

Status Snapshot::Init() {
  if (state_->attrs.size() != 1 || state_->objects == nullptr) {
    return Status::Internal("snapshot state is not a SetIndex state");
  }
  attr_ = &state_->attrs[0];
  const uint64_t at = pin_.epoch();
  objects_view_ = std::make_unique<EpochReadView>(state_->objects, at);
  store_ = std::make_unique<ObjectStore>(objects_view_.get());
  store_->RecoverCount(state_->num_objects);
  return BuildAttrViews(*attr_, at, &ssf_sig_view_, &ssf_oid_view_,
                        &bssf_slices_view_, &bssf_oid_view_, &nix_view_,
                        &ssf_, &bssf_, &nix_);
}

StatusOr<StoredObject> Snapshot::Get(Oid oid) const {
  return store_->Get(oid);
}

IoStats Snapshot::TotalStats() const {
  IoStats total = objects_view_->stats();
  for (const EpochReadView* v :
       {ssf_sig_view_.get(), ssf_oid_view_.get(), bssf_slices_view_.get(),
        bssf_oid_view_.get(), nix_view_.get()}) {
    if (v != nullptr) total += v->stats();
  }
  return total;
}

StatusOr<AccessPathChoice> Snapshot::Plan(QueryKind kind, int64_t dq) const {
  // Snapshot planning uses the pure model (no live advisor feedback): the
  // plan must depend only on published state so identical epochs plan
  // identically regardless of what other readers have observed since.
  const FrozenModel mv = ModelFromState(*state_, *attr_);
  SIGSET_ASSIGN_OR_RETURN(
      std::vector<AccessPathChoice> choices,
      AdviseAccessPaths(mv.db, mv.sig, mv.nix, mv.dt, dq, kind,
                        /*allow_smart=*/true));
  for (const AccessPathChoice& choice : choices) {
    if (choice.facility == "ssf" && ssf_ == nullptr) continue;
    if (choice.facility == "bssf" && bssf_ == nullptr) continue;
    if (choice.facility == "nix" && nix_ == nullptr) continue;
    return choice;
  }
  return Status::Internal("no maintained facility matched the plan");
}

StatusOr<QueryResult> Snapshot::RunPlan(const AccessPathChoice& plan,
                                        QueryKind kind,
                                        const ElementSet& query) {
  // Serial execution (ctx = nullptr): one snapshot, one reader thread.
  if (plan.facility == "ssf") {
    return ExecuteSetQuery(ssf_.get(), *store_, kind, query);
  }
  QueryKind ck = CandidateKind(kind);
  if (plan.facility == "nix") {
    if (plan.param > 0 && ck == QueryKind::kSuperset) {
      return ExecuteSmartSupersetNix(nix_.get(), *store_, query,
                                     static_cast<size_t>(plan.param), kind);
    }
    return ExecuteSetQuery(nix_.get(), *store_, kind, query);
  }
  if (plan.param > 0 && ck == QueryKind::kSuperset) {
    return ExecuteSmartSupersetBssf(bssf_.get(), *store_, query,
                                    static_cast<size_t>(plan.param), kind);
  }
  if (plan.param > 0 && ck == QueryKind::kSubset) {
    return ExecuteSmartSubsetBssf(bssf_.get(), *store_, query,
                                  static_cast<size_t>(plan.param), kind);
  }
  return ExecuteSetQuery(bssf_.get(), *store_, kind, query);
}

StatusOr<SetIndexResult> Snapshot::Query(QueryKind kind,
                                         const ElementSet& query,
                                         PlanMode mode) {
  ElementSet normalized = query;
  NormalizeSet(&normalized);
  if (normalized.empty()) {
    return Status::InvalidArgument("query set must not be empty");
  }

  AccessPathChoice plan;
  switch (mode) {
    case PlanMode::kForceSsf:
      if (ssf_ == nullptr) return Status::FailedPrecondition("no ssf");
      plan = {"ssf", "plain", 0.0, 0};
      break;
    case PlanMode::kForceBssf:
      if (bssf_ == nullptr) return Status::FailedPrecondition("no bssf");
      plan = {"bssf", "plain", 0.0, 0};
      break;
    case PlanMode::kForceNix:
      if (nix_ == nullptr) return Status::FailedPrecondition("no nix");
      plan = {"nix", "plain", 0.0, 0};
      break;
    case PlanMode::kAuto: {
      SIGSET_ASSIGN_OR_RETURN(
          plan, Plan(CandidateKind(kind),
                     static_cast<int64_t>(normalized.size())));
      break;
    }
  }

  // The timer is armed only when a flight recorder rides along (plain
  // snapshot reads stay clock-free).
  TraceTimer timer(recorder_ != nullptr);
  IoStats before = TotalStats();
  SIGSET_ASSIGN_OR_RETURN(QueryResult result,
                          RunPlan(plan, kind, normalized));
  IoStats delta = TotalStats() - before;

  if (metrics_ != nullptr) {
    // The registry is thread-safe; concurrent snapshot readers may share
    // one.  Distinct names keep lock-free reader traffic separable from
    // the writer-side query.* series.
    metrics_->counter("query.snapshot.count")->Increment();
    metrics_->histogram("query.snapshot.pages")->Record(delta.total());
  }

  SetIndexResult out;
  out.result = std::move(result);
  out.plan = plan.facility + " " + plan.strategy;
  out.page_accesses = delta.total();

  if (recorder_ != nullptr) {
    if (metrics_ != nullptr) {
      metrics_->histogram("query.snapshot.latency_us")
          ->Record(static_cast<uint64_t>(timer.ElapsedMs() * 1000.0));
    }
    FlightEvent event;
    event.op = FlightOp::kSnapshotQuery;
    event.fingerprint =
        FlightRecorder::Fingerprint(static_cast<int>(kind), normalized);
    event.epoch = pin_.epoch();
    event.SetDelta(delta);
    event.SetDetail(out.plan);
    recorder_->Record(event);
  }
  return out;
}

StatusOr<SetIndexJoinResult> Snapshot::ExecuteSetJoin(Snapshot* s_side,
                                                      const JoinSpec& spec) {
  if (s_side == nullptr) {
    return Status::InvalidArgument("join S side must not be null");
  }

  // Frozen-model planning (no live feedback): identical epochs join
  // identically, same rule as Plan().
  const FrozenModel mv_r = ModelFromState(*state_, *attr_);
  const FrozenModel mv_s = ModelFromState(*s_side->state_, *s_side->attr_);

  JoinSpec resolved = spec;
  if (resolved.strategy == JoinStrategy::kAuto) {
    SIGSET_ASSIGN_OR_RETURN(JoinStrategyChoice best,
                            BestJoinStrategy(mv_r.db, mv_r.dt, mv_s.db,
                                             mv_s.dt, mv_r.sig, mv_s.nix));
    resolved.strategy = best.strategy;
  }

  double probe_cost_pages = 0.0;
  {
    StatusOr<AccessPathChoice> probe =
        BestAccessPath(mv_s.db, mv_s.sig, mv_s.nix, mv_s.dt, mv_r.dt,
                       QueryKind::kSuperset, /*allow_smart=*/true);
    if (probe.ok()) probe_cost_pages = probe->cost_pages;
  }

  JoinSideAccess r_acc;
  r_acc.num_live = num_objects();
  r_acc.scan =
      [this](const std::function<Status(Oid, const ElementSet&)>& fn) {
        return store_->ForEachLive(fn);
      };

  JoinSideAccess s_acc;
  s_acc.num_live = s_side->num_objects();
  s_acc.scan =
      [s_side](const std::function<Status(Oid, const ElementSet&)>& fn) {
        return s_side->store_->ForEachLive(fn);
      };
  s_acc.probe_cost_pages = probe_cost_pages;
  s_acc.probe_superset =
      [s_side](const ElementSet& query) -> StatusOr<QueryResult> {
    SIGSET_ASSIGN_OR_RETURN(
        AccessPathChoice plan,
        s_side->Plan(QueryKind::kSuperset,
                     static_cast<int64_t>(query.size())));
    return s_side->RunPlan(plan, QueryKind::kSuperset, query);
  };

  Snapshot* self = this;
  const std::function<IoStats()> total_stats = [self, s_side]() {
    IoStats total = self->TotalStats();
    if (s_side != self) total += s_side->TotalStats();
    return total;
  };

  TraceTimer timer(recorder_ != nullptr);
  IoStats before = total_stats();
  SIGSET_ASSIGN_OR_RETURN(
      JoinResult result,
      sigsetdb::ExecuteSetJoin(r_acc, s_acc, attr_->sig, resolved,
                               /*ctx=*/nullptr, /*trace=*/nullptr,
                               total_stats));
  IoStats delta = total_stats() - before;

  if (metrics_ != nullptr) {
    metrics_->counter("join.snapshot.count")->Increment();
    metrics_->histogram("join.snapshot.pages")->Record(delta.total());
  }

  SetIndexJoinResult out;
  out.plan = JoinStrategyName(resolved.strategy);
  out.page_accesses = delta.total();
  out.join = std::move(result);

  if (recorder_ != nullptr) {
    if (metrics_ != nullptr) {
      metrics_->histogram("join.snapshot.latency_us")
          ->Record(static_cast<uint64_t>(timer.ElapsedMs() * 1000.0));
    }
    FlightEvent event;
    event.op = FlightOp::kJoin;
    event.epoch = pin_.epoch();
    event.SetDelta(delta);
    event.SetDetail(out.plan);
    recorder_->Record(event);
  }
  return out;
}

// ---------------------------------------------------------------------------
// DatabaseSnapshot (multi-attribute conjunction view)
// ---------------------------------------------------------------------------

DatabaseSnapshot::DatabaseSnapshot(EpochPin pin, MetricsRegistry* metrics,
                                   FlightRecorder* recorder)
    : pin_(std::move(pin)),
      state_(pin_.state()),
      metrics_(metrics),
      recorder_(recorder) {}

StatusOr<std::unique_ptr<DatabaseSnapshot>> DatabaseSnapshot::Create(
    EpochPin pin, MetricsRegistry* metrics, FlightRecorder* recorder) {
  if (!pin.pinned() || pin.state() == nullptr) {
    return Status::FailedPrecondition("no published snapshot state to pin");
  }
  std::unique_ptr<DatabaseSnapshot> snap(
      new DatabaseSnapshot(std::move(pin), metrics, recorder));
  SIGSET_RETURN_IF_ERROR(snap->Init());
  return snap;
}

Status DatabaseSnapshot::Init() {
  if (state_->objects == nullptr || state_->attrs.empty()) {
    return Status::Internal("snapshot state is not a Database state");
  }
  const uint64_t at = pin_.epoch();
  objects_view_ = std::make_unique<EpochReadView>(state_->objects, at);
  store_ = std::make_unique<MultiObjectStore>(objects_view_.get(),
                                              state_->num_attributes);
  store_->RecoverCount(state_->num_objects);
  attrs_.resize(state_->attrs.size());
  for (size_t i = 0; i < state_->attrs.size(); ++i) {
    AttrViews& v = attrs_[i];
    SIGSET_RETURN_IF_ERROR(BuildAttrViews(
        state_->attrs[i], at, &v.ssf_sig_view, &v.ssf_oid_view,
        &v.bssf_slices_view, &v.bssf_oid_view, &v.nix_view, &v.ssf, &v.bssf,
        &v.nix));
  }
  return Status::OK();
}

StatusOr<MultiSetObject> DatabaseSnapshot::Get(Oid oid) const {
  return store_->Get(oid);
}

IoStats DatabaseSnapshot::TotalStats() const {
  IoStats total = objects_view_->stats();
  for (const AttrViews& v : attrs_) {
    for (const EpochReadView* f :
         {v.ssf_sig_view.get(), v.ssf_oid_view.get(),
          v.bssf_slices_view.get(), v.bssf_oid_view.get(),
          v.nix_view.get()}) {
      if (f != nullptr) total += f->stats();
    }
  }
  return total;
}

StatusOr<size_t> DatabaseSnapshot::AttributeIndex(
    const std::string& name) const {
  for (size_t i = 0; i < state_->attrs.size(); ++i) {
    if (state_->attrs[i].name == name) return i;
  }
  return Status::InvalidArgument("unknown attribute: " + name);
}

StatusOr<AccessPathChoice> DatabaseSnapshot::PlanPredicate(
    size_t attr, const SetPredicate& pred) const {
  const AttrViews& views = attrs_[attr];
  const FrozenModel mv = ModelFromState(*state_, state_->attrs[attr]);
  QueryKind ck = CandidateKind(pred.kind);
  SIGSET_ASSIGN_OR_RETURN(
      std::vector<AccessPathChoice> choices,
      AdviseAccessPaths(mv.db, mv.sig, mv.nix, mv.dt,
                        static_cast<int64_t>(pred.query.size()), ck,
                        /*allow_smart=*/true));
  for (const AccessPathChoice& choice : choices) {
    if (choice.facility == "ssf" && views.ssf == nullptr) continue;
    if (choice.facility == "bssf" && views.bssf == nullptr) continue;
    if (choice.facility == "nix" && views.nix == nullptr) continue;
    return choice;
  }
  return Status::Internal("no maintained facility for attribute");
}

StatusOr<std::vector<Oid>> DatabaseSnapshot::DriverCandidates(
    size_t attr, const AccessPathChoice& plan, const SetPredicate& pred) {
  AttrViews& views = attrs_[attr];
  QueryKind ck = CandidateKind(pred.kind);
  const ElementSet& query = pred.query;
  if (plan.facility == "ssf") {
    SIGSET_ASSIGN_OR_RETURN(CandidateResult result,
                            views.ssf->Candidates(ck, query));
    return result.oids;
  }
  if (plan.facility == "nix") {
    if (plan.param > 0 && ck == QueryKind::kSuperset) {
      SIGSET_ASSIGN_OR_RETURN(
          CandidateResult result,
          views.nix->CandidatesSmartSuperset(query,
                                             static_cast<size_t>(plan.param)));
      return result.oids;
    }
    SIGSET_ASSIGN_OR_RETURN(CandidateResult result,
                            views.nix->Candidates(ck, query));
    return result.oids;
  }
  // bssf (serial: one snapshot, one reader thread).
  if (plan.param > 0 && ck == QueryKind::kSuperset) {
    BitVector sig = MakePartialQuerySignature(
        query, static_cast<size_t>(plan.param), views.bssf->config());
    SIGSET_ASSIGN_OR_RETURN(std::vector<uint64_t> slots,
                            views.bssf->SupersetCandidateSlots(sig));
    return views.bssf->ResolveSlots(slots);
  }
  if (plan.param > 0 && ck == QueryKind::kSubset) {
    BitVector sig = MakeSetSignature(query, views.bssf->config());
    SIGSET_ASSIGN_OR_RETURN(
        std::vector<uint64_t> slots,
        views.bssf->SubsetCandidateSlots(sig,
                                         static_cast<size_t>(plan.param)));
    return views.bssf->ResolveSlots(slots);
  }
  SIGSET_ASSIGN_OR_RETURN(CandidateResult result,
                          views.bssf->Candidates(ck, query));
  return result.oids;
}

StatusOr<DatabaseQueryResult> DatabaseSnapshot::Query(
    const std::vector<SetPredicate>& predicates) {
  if (predicates.empty()) {
    return Status::InvalidArgument("at least one predicate required");
  }
  std::vector<SetPredicate> preds = predicates;
  std::vector<size_t> attr_index(preds.size());
  for (size_t i = 0; i < preds.size(); ++i) {
    NormalizeSet(&preds[i].query);
    if (preds[i].query.empty()) {
      return Status::InvalidArgument("query set must not be empty");
    }
    SIGSET_ASSIGN_OR_RETURN(attr_index[i],
                            AttributeIndex(preds[i].attribute));
  }

  // Cheapest predicate drives candidate selection (same rule as the live
  // Database, priced from the frozen model).
  size_t driver = 0;
  double best_cost = 0;
  AccessPathChoice driver_plan;
  for (size_t i = 0; i < preds.size(); ++i) {
    SIGSET_ASSIGN_OR_RETURN(AccessPathChoice plan,
                            PlanPredicate(attr_index[i], preds[i]));
    if (i == 0 || plan.cost_pages < best_cost) {
      best_cost = plan.cost_pages;
      driver = i;
      driver_plan = plan;
    }
  }

  IoStats before = TotalStats();
  TraceTimer timer(recorder_ != nullptr);
  SIGSET_ASSIGN_OR_RETURN(
      std::vector<Oid> candidates,
      DriverCandidates(attr_index[driver], driver_plan, preds[driver]));

  DatabaseQueryResult out;
  out.num_candidates = candidates.size();
  for (Oid oid : candidates) {
    StatusOr<MultiSetObject> obj = store_->Get(oid);
    if (!obj.ok()) {
      // Same tolerance as the live resolver: a store-missing candidate is
      // a false drop, not an error.
      if (obj.status().code() == StatusCode::kNotFound) {
        ++out.num_false_drops;
        continue;
      }
      return obj.status();
    }
    bool keep = true;
    for (size_t i = 0; i < preds.size(); ++i) {
      if (!SatisfiesValue(obj->attrs[attr_index[i]], preds[i].kind,
                          preds[i].query)) {
        keep = false;
        break;
      }
    }
    if (keep) {
      out.oids.push_back(oid);
    } else {
      ++out.num_false_drops;
    }
  }
  out.driver = preds[driver].attribute + " via " + driver_plan.facility +
               " " + driver_plan.strategy;
  out.page_accesses = (TotalStats() - before).total();

  if (metrics_ != nullptr) {
    metrics_->counter("query.snapshot.count")->Increment();
    metrics_->histogram("query.snapshot.pages")->Record(out.page_accesses);
  }
  if (recorder_ != nullptr) {
    if (metrics_ != nullptr) {
      metrics_->histogram("query.snapshot.latency_us")
          ->Record(static_cast<uint64_t>(timer.ElapsedMs() * 1000.0));
    }
    FlightEvent event;
    event.op = FlightOp::kSnapshotQuery;
    event.fingerprint = FlightRecorder::Fingerprint(
        static_cast<int>(preds[driver].kind), preds[driver].query);
    event.epoch = pin_.epoch();
    event.SetDelta(TotalStats() - before);
    event.SetDetail(out.driver);
    recorder_->Record(event);
  }
  return out;
}

StatusOr<DatabaseJoinResult> DatabaseSnapshot::ExecuteSetJoin(
    const std::string& r_attribute, const std::string& s_attribute,
    const JoinSpec& spec) {
  SIGSET_ASSIGN_OR_RETURN(size_t r_attr, AttributeIndex(r_attribute));
  SIGSET_ASSIGN_OR_RETURN(size_t s_attr, AttributeIndex(s_attribute));

  const FrozenModel mv_r = ModelFromState(*state_, state_->attrs[r_attr]);
  const FrozenModel mv_s = ModelFromState(*state_, state_->attrs[s_attr]);

  JoinSpec resolved = spec;
  if (resolved.strategy == JoinStrategy::kAuto) {
    SIGSET_ASSIGN_OR_RETURN(JoinStrategyChoice best,
                            BestJoinStrategy(mv_r.db, mv_r.dt, mv_s.db,
                                             mv_s.dt, mv_r.sig, mv_s.nix));
    resolved.strategy = best.strategy;
  }

  double probe_cost_pages = 0.0;
  {
    StatusOr<AccessPathChoice> probe =
        BestAccessPath(mv_s.db, mv_s.sig, mv_s.nix, mv_s.dt, mv_r.dt,
                       QueryKind::kSuperset, /*allow_smart=*/true);
    if (probe.ok()) probe_cost_pages = probe->cost_pages;
  }

  JoinSideAccess r_acc;
  r_acc.num_live = num_objects();
  r_acc.scan =
      [this, r_attr](const std::function<Status(Oid, const ElementSet&)>& fn) {
        return store_->ForEachLive(
            [&fn, r_attr](Oid oid, const std::vector<ElementSet>& attrs) {
              return fn(oid, attrs[r_attr]);
            });
      };

  JoinSideAccess s_acc;
  s_acc.num_live = num_objects();
  s_acc.scan =
      [this, s_attr](const std::function<Status(Oid, const ElementSet&)>& fn) {
        return store_->ForEachLive(
            [&fn, s_attr](Oid oid, const std::vector<ElementSet>& attrs) {
              return fn(oid, attrs[s_attr]);
            });
      };
  s_acc.probe_cost_pages = probe_cost_pages;
  s_acc.probe_superset =
      [this, s_attr](const ElementSet& query) -> StatusOr<QueryResult> {
    SetPredicate pred{state_->attrs[s_attr].name, QueryKind::kSuperset,
                      query};
    SIGSET_ASSIGN_OR_RETURN(AccessPathChoice plan,
                            PlanPredicate(s_attr, pred));
    SIGSET_ASSIGN_OR_RETURN(std::vector<Oid> candidates,
                            DriverCandidates(s_attr, plan, pred));
    QueryResult qr;
    qr.num_candidates = candidates.size();
    for (Oid oid : candidates) {
      StatusOr<MultiSetObject> obj = store_->Get(oid);
      if (!obj.ok()) {
        if (obj.status().code() == StatusCode::kNotFound) {
          ++qr.num_false_drops;
          continue;
        }
        return obj.status();
      }
      if (SatisfiesValue(obj->attrs[s_attr], QueryKind::kSuperset, query)) {
        qr.oids.push_back(oid);
      } else {
        ++qr.num_false_drops;
      }
    }
    return qr;
  };

  DatabaseSnapshot* self = this;
  const std::function<IoStats()> total_stats = [self]() {
    return self->TotalStats();
  };

  TraceTimer timer(recorder_ != nullptr);
  IoStats before = TotalStats();
  SIGSET_ASSIGN_OR_RETURN(
      JoinResult result,
      sigsetdb::ExecuteSetJoin(r_acc, s_acc, state_->attrs[r_attr].sig,
                               resolved, /*ctx=*/nullptr, /*trace=*/nullptr,
                               total_stats));
  IoStats delta = TotalStats() - before;

  if (metrics_ != nullptr) {
    metrics_->counter("join.snapshot.count")->Increment();
    metrics_->histogram("join.snapshot.pages")->Record(delta.total());
  }

  DatabaseJoinResult out;
  out.plan = state_->attrs[r_attr].name + " in-subset " +
             state_->attrs[s_attr].name + " via " +
             JoinStrategyName(resolved.strategy);
  out.page_accesses = delta.total();
  out.join = std::move(result);

  if (recorder_ != nullptr) {
    if (metrics_ != nullptr) {
      metrics_->histogram("join.snapshot.latency_us")
          ->Record(static_cast<uint64_t>(timer.ElapsedMs() * 1000.0));
    }
    FlightEvent event;
    event.op = FlightOp::kJoin;
    event.epoch = pin_.epoch();
    event.SetDelta(delta);
    event.SetDetail(out.plan);
    recorder_->Record(event);
  }
  return out;
}

}  // namespace sigsetdb
