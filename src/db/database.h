// Database: one OODB class with several indexed set attributes.
//
// The paper's motivating schema is exactly this shape — Student objects
// with `courses` (set of OIDs) and `hobbies` (set of strings), each wanting
// its own set access facility.  A Database owns one multi-attribute object
// store plus, per attribute, any combination of SSF/BSSF/NIX, and evaluates
// *conjunctions* of set predicates:
//
//   select Student
//   where courses has-subset (c1, c3) and hobbies in-subset ("a","b","c")
//
// Execution is cost-based: the advisor prices every (predicate, facility,
// strategy) combination, the cheapest predicate drives candidate selection,
// and the surviving candidates are fetched once and checked against the
// whole conjunction.

#ifndef SIGSET_DB_DATABASE_H_
#define SIGSET_DB_DATABASE_H_

#include <memory>
#include <string>
#include <vector>

#include "db/manifest.h"
#include "db/wal.h"
#include "db/write_batch.h"
#include "model/params.h"
#include "nix/nested_index.h"
#include "obj/multi_object_store.h"
#include "obj/schema.h"
#include "obs/drift_watchdog.h"
#include "obs/flight_recorder.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "query/advisor.h"
#include "query/join.h"
#include "sig/bssf.h"
#include "sig/ssf.h"
#include "storage/storage_manager.h"
#include "util/hyperloglog.h"

namespace sigsetdb {

class DatabaseSnapshot;
class EpochManager;
class VersionedPageFile;

// One conjunct: <attribute> <operator> <query set>.
struct SetPredicate {
  std::string attribute;
  QueryKind kind;
  ElementSet query;  // normalized by the evaluator
};

// Result of a (possibly multi-predicate) query.
struct DatabaseQueryResult {
  std::vector<Oid> oids;        // objects satisfying every predicate
  uint64_t num_candidates = 0;  // candidates fetched from the driver
  uint64_t num_false_drops = 0;  // candidates failing the conjunction
  std::string driver;           // "courses via bssf smart(k=2)"
  uint64_t page_accesses = 0;   // measured for this query
};

// A conjunction answer plus its per-stage trace (driver candidate selection
// with per-file children, conjunction resolution), with the cost model's
// per-stage predictions for the driver predicate attached.
struct DatabaseExplainResult {
  DatabaseQueryResult result;
  QueryTrace trace;
  std::string text;  // plan-style tree (table_printer)
  std::string json;  // trace.ToJson()
};

// A set-containment join answer over two indexed attributes of one class.
struct DatabaseJoinResult {
  JoinResult join;
  std::string plan;            // "courses in-subset prereqs via sig-hash"
  uint64_t page_accesses = 0;  // measured for this join
};

// Join answer plus its per-stage trace with model predictions attached.
struct DatabaseJoinExplainResult {
  DatabaseJoinResult result;
  QueryTrace trace;
  std::string text;
  std::string json;
};

// One OODB class with indexed set attributes.
class Database {
 public:
  // Per-attribute index configuration.
  struct AttributeOptions {
    std::string name;
    bool maintain_ssf = false;
    bool maintain_bssf = true;
    bool maintain_nix = true;
    SignatureConfig sig{250, 2};
    BssfInsertMode bssf_mode = BssfInsertMode::kSparse;
    uint32_t nix_fanout = kPaperFanout;
    // Domain-cardinality estimate for the cost model (the paper's V).
    // <= 0 (default): estimated live via a per-attribute HyperLogLog.
    int64_t domain_estimate = 0;
  };

  struct Options {
    std::vector<AttributeOptions> attributes;  // at least one
    uint64_t capacity = 1 << 20;  // max objects (bit-slice store size)
    // Worker threads for query execution (BSSF slice scans and conjunction
    // resolution).  1 (the default) is fully serial.  Results and logical
    // page-access counts are identical at any setting.
    size_t num_threads = 1;
    // Registry receiving per-query counters and latency histograms (not
    // owned).  nullptr = the database owns one, reachable via metrics().
    MetricsRegistry* metrics = nullptr;
    // Write-ahead logging (see SetIndex::Options::enable_wal): mutations are
    // acknowledged only after their logical record is durable in
    // "<name>.wal", and Open() replays records past the last checkpoint.
    // Off by default to keep the paper-pinned page-access counts.
    bool enable_wal = false;
    // Group-commit window in microseconds (0 = sync immediately; concurrent
    // commits still coalesce opportunistically).
    uint32_t group_commit_window_us = 0;
    // Epoch-based snapshot reads (see SetIndex::Options::enable_snapshots):
    // GetSnapshot() returns a pinned read-only view evaluating conjunctions
    // concurrently with churn.  Off by default for paper-pinned counts.
    bool enable_snapshots = false;
    // Production telemetry (see SetIndex::Options::enable_telemetry):
    // latency histograms per entry point, a flight recorder with crash
    // postmortems, and a cost-model drift watchdog.  Off by default.
    bool enable_telemetry = false;
    size_t flight_recorder_capacity = 512;
    DriftOptions drift;
    std::string postmortem_dir;
  };

  // Creates the class storage under the file prefix `class_name`.
  static StatusOr<std::unique_ptr<Database>> Create(StorageManager* storage,
                                                    const std::string& name,
                                                    const Options& options);

  // Reopens a checkpointed database (same storage/directory and options).
  static StatusOr<std::unique_ptr<Database>> Open(StorageManager* storage,
                                                  const std::string& name,
                                                  const Options& options);

  // Persists facility metadata; see SetIndex::Checkpoint for semantics.
  Status Checkpoint();

  // Stores an object; `attr_values[i]` is the value of attribute i (the
  // order of Options::attributes).  Values are normalized in place.
  StatusOr<Oid> Insert(std::vector<ElementSet> attr_values);

  // De-indexes all attributes, then deletes the object from the store (the
  // store delete is LAST so a crash cannot leave dangling index entries).
  Status Delete(Oid oid);

  // Applies a group of inserts and deletes with per-facility write
  // coalescing (see SetIndex::ApplyBatch).  Returns the OIDs of the batch's
  // inserts, in order.  Deleting an OID inserted by the same batch is not
  // supported.
  StatusOr<std::vector<Oid>> ApplyBatch(const MultiWriteBatch& batch);

  // Densely rewrites every attribute's SSF/BSSF signature + OID files into
  // the next compaction generation and checkpoints (the manifest's
  // generation key is the atomic commit point — see SetIndex::Compact).
  Status Compact();

  // Compaction generation of the signature/OID files (0 until the first
  // Compact() checkpoint).
  uint64_t generation() const { return generation_; }

  StatusOr<MultiSetObject> Get(Oid oid) const { return store_->Get(oid); }

  // Evaluates the conjunction of `predicates` (at least one, attributes may
  // repeat).  Unknown attribute names fail with kNotFound.
  StatusOr<DatabaseQueryResult> Query(
      const std::vector<SetPredicate>& predicates);

  // EXPLAIN ANALYZE for a conjunction: runs exactly as Query() would (same
  // driver choice, same page accesses) and returns the per-stage trace with
  // the model's predictions for the driver predicate attached.
  StatusOr<DatabaseExplainResult> Explain(
      const std::vector<SetPredicate>& predicates);

  // Set-containment join R ⋈⊆ S between two indexed attributes of this
  // class (they may be the same attribute): every object pair (r, s) with
  // r.<r_attribute> ⊆ s.<s_attribute>.  JoinSpec::strategy kAuto lets the
  // join cost model pick the strategy.
  StatusOr<DatabaseJoinResult> ExecuteSetJoin(const std::string& r_attribute,
                                              const std::string& s_attribute,
                                              const JoinSpec& spec = {});

  // EXPLAIN ANALYZE for the join (same execution + per-stage trace).
  StatusOr<DatabaseJoinExplainResult> ExplainSetJoin(
      const std::string& r_attribute, const std::string& s_attribute,
      const JoinSpec& spec = {});

  // The registry this database reports into (configured or owned).
  MetricsRegistry* metrics() const { return metrics_; }

  // Telemetry components (nullptr unless Options::enable_telemetry).
  FlightRecorder* flight_recorder() { return recorder_.get(); }
  DriftWatchdog* drift_watchdog() { return watchdog_.get(); }
  // JSON postmortem captured when the first fatal status surfaced (empty
  // until then; also written to Options::postmortem_dir when set).
  const std::string& last_postmortem_json() const {
    return last_postmortem_json_;
  }

  // The V the advisor uses for attribute `attr`: configured or sketched.
  int64_t DomainEstimate(size_t attr) const;

  // Index of `attribute` in the schema, or kNotFound.
  StatusOr<size_t> AttributeIndex(const std::string& attribute) const;

  // Per-attribute string-element dictionary (in-memory; used by the query
  // language to map string literals to element ids).
  ElementDictionary& dictionary(size_t attr) { return dictionaries_[attr]; }

  // The write-ahead log (nullptr unless options.enable_wal).
  WriteAheadLog* wal() { return wal_.get(); }

  uint64_t num_objects() const { return store_->num_objects(); }
  size_t num_attributes() const { return attrs_.size(); }
  const std::string& attribute_name(size_t i) const {
    return options_.attributes[i].name;
  }

  // --- snapshot reads (Options::enable_snapshots) ------------------------

  // Pins the published epoch and materializes a read-only conjunction view
  // (one reader thread per snapshot; must not outlive this database).
  StatusOr<std::unique_ptr<DatabaseSnapshot>> GetSnapshot();

  // The last published epoch (0 when snapshots are disabled).
  uint64_t current_epoch() const;

  // The epoch manager (nullptr unless enable_snapshots); for tests.
  EpochManager* epochs() { return epochs_.get(); }

  ~Database();

 private:
  // Everything maintained for one attribute.
  struct AttributeState {
    std::unique_ptr<SequentialSignatureFile> ssf;
    std::unique_ptr<BitSlicedSignatureFile> bssf;
    std::unique_ptr<NestedIndex> nix;
    uint64_t total_elements = 0;  // for the live Dt estimate
    HyperLogLog domain_sketch{12};  // for the live V estimate
    // CoW wrappers over this attribute's files (null unless
    // enable_snapshots; owned by versioned_all_).
    VersionedPageFile* v_ssf_sig = nullptr;
    VersionedPageFile* v_ssf_oid = nullptr;
    VersionedPageFile* v_bssf_slices = nullptr;
    VersionedPageFile* v_bssf_oid = nullptr;
    VersionedPageFile* v_nix = nullptr;
  };

  Database(StorageManager* storage, Options options);

  // Untimed bodies of the public entry points (see SetIndex: the public
  // methods are telemetry shims that forward directly when telemetry is
  // off).
  Status CheckpointImpl();
  StatusOr<Oid> InsertImpl(std::vector<ElementSet> attr_values);
  Status DeleteImpl(Oid oid);
  StatusOr<std::vector<Oid>> ApplyBatchImpl(const MultiWriteBatch& batch);
  Status CompactImpl();

  // Entry-point telemetry: latency histogram sample + flight event; fatal
  // statuses trigger NoteFatal (one-shot postmortem capture).
  void RecordOpTelemetry(FlightOp op, const char* metric,
                         const TraceTimer& timer, const IoStats& before,
                         const Status& status, uint64_t fingerprint = 0,
                         const char* detail = nullptr);
  void NoteFatal(const Status& cause);

  // Attaches the model's per-stage predictions for the driver predicate to
  // a finished trace (shared by Explain and telemetry-internal traces).
  void AttachPredictions(QueryTrace* trace, const AccessPathChoice& chosen,
                         size_t attr, const SetPredicate& pred) const;

  // nullptr when num_threads <= 1.
  const ParallelExecutionContext* execution_context() const {
    return pool_ != nullptr ? &ctx_ : nullptr;
  }

  static Status ValidateOptions(const Options& options);

  // Builds the per-attribute facilities; `recovered_sigs` non-null on Open.
  Status InitFacilities(const std::string& name,
                        const Manifest::Values* recovered);

  // The cost-model view of one attribute's current state.
  struct ModelView {
    DatabaseParams db;
    SignatureParams sig;
    NixParams nix;
    int64_t dt;
  };
  ModelView ModelFor(size_t attr) const;

  // Prices the best access path for one predicate.
  StatusOr<AccessPathChoice> PlanPredicate(size_t attr,
                                           const SetPredicate& predicate,
                                           double* cost) const;

  // Shared body of Query/Explain; `trace`/`chosen_*` are optional outputs
  // describing the executed driver plan.
  StatusOr<DatabaseQueryResult> QueryInternal(
      const std::vector<SetPredicate>& predicates, QueryTrace* trace,
      AccessPathChoice* chosen_plan, size_t* chosen_attr,
      SetPredicate* chosen_pred);

  // Runs the chosen plan, returning candidate OIDs (no resolution).
  StatusOr<std::vector<Oid>> DriverCandidates(size_t attr,
                                              const AccessPathChoice& plan,
                                              QueryKind candidate_kind,
                                              const ElementSet& query);

  // Shared body of ExecuteSetJoin/ExplainSetJoin (attribute indexes already
  // resolved).
  StatusOr<DatabaseJoinResult> JoinInternal(size_t r_attr, size_t s_attr,
                                            const JoinSpec& spec,
                                            QueryTrace* trace);

  // WAL plumbing — same contract as SetIndex: Apply* run the mutation after
  // its record is durable; a failure there calls AbortAndPoison, which logs
  // an Abort record and fails every later mutation/query until reopened.
  Status ApplyInsert(const std::vector<ElementSet>& normalized,
                     Oid expected_oid);
  Status ApplyDelete(Oid oid, const MultiSetObject& victim);
  Status ApplyBatchBody(const MultiWriteBatch& batch,
                        const std::vector<MultiSetObject>& victims,
                        const std::vector<std::vector<ElementSet>>& normalized,
                        const std::vector<Oid>& predicted,
                        std::vector<Oid>* out_oids);
  Status AbortAndPoison(uint64_t lsn, const Status& cause);
  // Recovery: redo `records` against the object store, then rebuild every
  // attribute's facilities and counters from the recovered store.
  Status ReplayLog(const std::vector<LogRecord>& records);
  Status RebuildFacilitiesFromStore();

  // Snapshot plumbing (mirrors SetIndex): open-and-maybe-wrap, flush the
  // current wrappers at Checkpoint, publish after successful mutations.
  StatusOr<PageFile*> OpenVersioned(const std::string& file_name,
                                    VersionedPageFile** slot);
  Status FlushCurrentVersions();
  void PublishSnapshot();

  StorageManager* storage_;
  Options options_;
  std::string name_;
  uint64_t generation_ = 0;
  std::unique_ptr<ThreadPool> pool_;
  ParallelExecutionContext ctx_;
  PageFile* manifest_file_ = nullptr;
  PageFile* sketch_file_ = nullptr;
  // Snapshot machinery (null/empty unless enable_snapshots); the wrapper
  // pool owns all CoW wrappers and must outlive the facilities below.
  std::unique_ptr<EpochManager> epochs_;
  std::vector<std::unique_ptr<VersionedPageFile>> versioned_all_;
  VersionedPageFile* v_objects_ = nullptr;
  std::unique_ptr<MultiObjectStore> store_;
  std::unique_ptr<WriteAheadLog> wal_;
  // Set by AbortAndPoison; every mutation and query returns it once set.
  Status poison_ = Status::OK();
  std::vector<AttributeState> attrs_;
  std::vector<ElementDictionary> dictionaries_;
  std::unique_ptr<MetricsRegistry> owned_metrics_;
  MetricsRegistry* metrics_ = nullptr;
  // Telemetry (all null/empty unless enable_telemetry).
  std::unique_ptr<FlightRecorder> recorder_;
  std::unique_ptr<DriftWatchdog> watchdog_;
  bool postmortem_written_ = false;
  std::string last_postmortem_json_;
};

}  // namespace sigsetdb

#endif  // SIGSET_DB_DATABASE_H_
