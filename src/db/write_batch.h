// WriteBatch: a group of inserts and deletes applied together so each
// facility can coalesce its page writes across the group (the batched
// Table 7 regime: BSSF touches each dirty slice page once per batch, SSF
// appends page-at-a-time, NIX descends once per distinct element).
//
// A batch is a plain value — build it up, hand it to
// SetIndex::ApplyBatch / Database::ApplyBatch, reuse or discard it.
// Deleting an OID inserted by the same batch is not supported (delete
// victims are resolved against the pre-batch store); split such sequences
// across two batches.

#ifndef SIGSET_DB_WRITE_BATCH_H_
#define SIGSET_DB_WRITE_BATCH_H_

#include <vector>

#include "obj/object.h"
#include "obj/oid.h"

namespace sigsetdb {

// Batch over one indexed set attribute (SetIndex).
class WriteBatch {
 public:
  void Insert(const ElementSet& set_value) { inserts_.push_back(set_value); }
  void Delete(Oid oid) { deletes_.push_back(oid); }

  const std::vector<ElementSet>& inserts() const { return inserts_; }
  const std::vector<Oid>& deletes() const { return deletes_; }
  size_t size() const { return inserts_.size() + deletes_.size(); }
  bool empty() const { return inserts_.empty() && deletes_.empty(); }
  void Clear() {
    inserts_.clear();
    deletes_.clear();
  }

 private:
  std::vector<ElementSet> inserts_;
  std::vector<Oid> deletes_;
};

// Batch over multi-attribute objects (Database).  Each insert carries one
// ElementSet per indexed attribute, in attribute order.
class MultiWriteBatch {
 public:
  void Insert(const std::vector<ElementSet>& attr_values) {
    inserts_.push_back(attr_values);
  }
  void Delete(Oid oid) { deletes_.push_back(oid); }

  const std::vector<std::vector<ElementSet>>& inserts() const {
    return inserts_;
  }
  const std::vector<Oid>& deletes() const { return deletes_; }
  size_t size() const { return inserts_.size() + deletes_.size(); }
  bool empty() const { return inserts_.empty() && deletes_.empty(); }
  void Clear() {
    inserts_.clear();
    deletes_.clear();
  }

 private:
  std::vector<std::vector<ElementSet>> inserts_;
  std::vector<Oid> deletes_;
};

}  // namespace sigsetdb

#endif  // SIGSET_DB_WRITE_BATCH_H_
