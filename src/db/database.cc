#include "db/database.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <utility>

#include "db/epoch.h"
#include "db/snapshot.h"
#include "obs/explain.h"
#include "storage/versioned_page_file.h"

namespace sigsetdb {

namespace {

constexpr char kKeyObjects[] = "num_objects";
constexpr char kKeyAttrs[] = "num_attributes";
constexpr char kKeyGeneration[] = "compact_generation";
constexpr char kKeyWal[] = "config_wal";
// Every log record with lsn <= this value is reflected in the checkpoint;
// replay applies only records beyond it.  Missing (pre-WAL manifest) = 0.
constexpr char kKeyWalLsn[] = "wal_lsn";

std::string AttrKey(size_t i, const char* suffix) {
  return "attr" + std::to_string(i) + "." + suffix;
}

// Compaction writes into generation-suffixed files ("<base>.g<N>"); the
// original name is generation 0.  All attributes share one generation.
std::string GenName(const std::string& base, uint64_t generation) {
  if (generation == 0) return base;
  return base + ".g" + std::to_string(generation);
}

bool Satisfies(const ElementSet& value, QueryKind kind,
               const ElementSet& query) {
  StoredObject probe;
  probe.set_value = value;
  switch (kind) {
    case QueryKind::kSuperset:
      return SatisfiesSuperset(probe, query);
    case QueryKind::kSubset:
      return SatisfiesSubset(probe, query);
    case QueryKind::kProperSuperset:
      return SatisfiesProperSuperset(probe, query);
    case QueryKind::kProperSubset:
      return SatisfiesProperSubset(probe, query);
    case QueryKind::kEquals:
      return SatisfiesEquals(probe, query);
    case QueryKind::kOverlaps:
      return SatisfiesOverlap(probe, query);
  }
  return false;
}

}  // namespace

Database::Database(StorageManager* storage, Options options)
    : storage_(storage), options_(std::move(options)) {
  if (options_.num_threads > 1) {
    pool_ = std::make_unique<ThreadPool>(options_.num_threads);
    ctx_.pool = pool_.get();
  }
  if (options_.metrics != nullptr) {
    metrics_ = options_.metrics;
  } else {
    owned_metrics_ = std::make_unique<MetricsRegistry>();
    metrics_ = owned_metrics_.get();
  }
  if (options_.enable_snapshots) {
    epochs_ = std::make_unique<EpochManager>();
  }
  if (options_.enable_telemetry) {
    recorder_ =
        std::make_unique<FlightRecorder>(options_.flight_recorder_capacity);
    watchdog_ = std::make_unique<DriftWatchdog>(metrics_, recorder_.get(),
                                                options_.drift);
    if (epochs_ != nullptr) epochs_->SetMetrics(metrics_);
  }
}

namespace {
// Statuses after which the instance's state can no longer be trusted (see
// SetIndex's IsFatalStatus; kept local to each TU on purpose).
bool FatalStatus(const Status& status) {
  switch (status.code()) {
    case StatusCode::kIoError:
    case StatusCode::kCorruption:
    case StatusCode::kInternal:
      return true;
    default:
      return false;
  }
}
}  // namespace

void Database::RecordOpTelemetry(FlightOp op, const char* metric,
                                 const TraceTimer& timer,
                                 const IoStats& before, const Status& status,
                                 uint64_t fingerprint, const char* detail) {
  metrics_->histogram(metric)->Record(
      static_cast<uint64_t>(timer.ElapsedMs() * 1000.0));
  FlightEvent event;
  event.op = op;
  event.status_code = static_cast<int32_t>(status.code());
  event.fingerprint = fingerprint;
  event.epoch = current_epoch();
  event.wal_lsn = wal_ != nullptr ? wal_->last_lsn() : 0;
  event.SetDelta(storage_->TotalStats() - before);
  if (detail != nullptr) {
    event.SetDetail(detail);
  } else if (!status.ok()) {
    event.SetDetail(status.message());
  }
  recorder_->Record(event);
  if (!status.ok() && FatalStatus(status)) NoteFatal(status);
}

void Database::NoteFatal(const Status& cause) {
  if (postmortem_written_) return;
  postmortem_written_ = true;
  FlightEvent event;
  event.op = FlightOp::kFatal;
  event.status_code = static_cast<int32_t>(cause.code());
  event.epoch = current_epoch();
  event.wal_lsn = wal_ != nullptr ? wal_->last_lsn() : 0;
  event.SetDetail(cause.message());
  recorder_->Record(event);
  const std::string reason = "fatal status: " + cause.ToString();
  last_postmortem_json_ = recorder_->PostmortemJson(reason);
  if (!options_.postmortem_dir.empty()) {
    (void)recorder_->WritePostmortem(
        options_.postmortem_dir + "/" + name_ + ".postmortem", reason);
  }
}

Status Database::Checkpoint() {
  if (recorder_ == nullptr) return CheckpointImpl();
  TraceTimer timer;
  const IoStats before = storage_->TotalStats();
  Status status = CheckpointImpl();
  RecordOpTelemetry(FlightOp::kCheckpoint, "op.checkpoint.latency_us", timer,
                    before, status);
  return status;
}

StatusOr<Oid> Database::Insert(std::vector<ElementSet> attr_values) {
  if (recorder_ == nullptr) return InsertImpl(std::move(attr_values));
  TraceTimer timer;
  const IoStats before = storage_->TotalStats();
  StatusOr<Oid> out = InsertImpl(std::move(attr_values));
  RecordOpTelemetry(FlightOp::kInsert, "op.insert.latency_us", timer, before,
                    out.status());
  return out;
}

Status Database::Delete(Oid oid) {
  if (recorder_ == nullptr) return DeleteImpl(oid);
  TraceTimer timer;
  const IoStats before = storage_->TotalStats();
  Status status = DeleteImpl(oid);
  RecordOpTelemetry(FlightOp::kDelete, "op.delete.latency_us", timer, before,
                    status);
  return status;
}

StatusOr<std::vector<Oid>> Database::ApplyBatch(const MultiWriteBatch& batch) {
  if (recorder_ == nullptr) return ApplyBatchImpl(batch);
  TraceTimer timer;
  const IoStats before = storage_->TotalStats();
  StatusOr<std::vector<Oid>> out = ApplyBatchImpl(batch);
  RecordOpTelemetry(FlightOp::kBatch, "op.batch.latency_us", timer, before,
                    out.status());
  return out;
}

Status Database::Compact() {
  if (recorder_ == nullptr) return CompactImpl();
  TraceTimer timer;
  const IoStats before = storage_->TotalStats();
  Status status = CompactImpl();
  RecordOpTelemetry(FlightOp::kCompact, "op.compact.latency_us", timer,
                    before, status);
  return status;
}

Database::~Database() {
  // Stop the reclaimer before the wrappers it calls into are destroyed.
  // Pinned snapshots must already be gone (documented contract).
  if (epochs_ != nullptr) epochs_->Shutdown();
}

StatusOr<PageFile*> Database::OpenVersioned(const std::string& file_name,
                                            VersionedPageFile** slot) {
  SIGSET_ASSIGN_OR_RETURN(PageFile * base, storage_->OpenOrCreate(file_name));
  if (epochs_ == nullptr) {
    if (slot != nullptr) *slot = nullptr;
    return base;
  }
  SIGSET_ASSIGN_OR_RETURN(
      std::unique_ptr<VersionedPageFile> wrapper,
      VersionedPageFile::Wrap(base, epochs_->published_cell()));
  VersionedPageFile* raw = wrapper.get();
  epochs_->RegisterReclaimer(
      [raw](uint64_t oldest_pinned) { return raw->Reclaim(oldest_pinned); });
  versioned_all_.push_back(std::move(wrapper));
  if (slot != nullptr) *slot = raw;
  return raw;
}

Status Database::FlushCurrentVersions() {
  // Only the CURRENT slots: a superseded wrapper (from an earlier
  // generation) flushing over a shared base file would resurrect stale
  // heads.
  if (v_objects_ != nullptr) SIGSET_RETURN_IF_ERROR(v_objects_->FlushToBase());
  for (AttributeState& state : attrs_) {
    for (VersionedPageFile* v :
         {state.v_ssf_sig, state.v_ssf_oid, state.v_bssf_slices,
          state.v_bssf_oid, state.v_nix}) {
      if (v != nullptr) SIGSET_RETURN_IF_ERROR(v->FlushToBase());
    }
  }
  return Status::OK();
}

void Database::PublishSnapshot() {
  if (epochs_ == nullptr) return;
  auto snap = std::make_shared<SnapshotState>();
  snap->epoch = epochs_->write_epoch();
  snap->generation = generation_;
  snap->num_objects = num_objects();
  snap->num_attributes = static_cast<uint16_t>(attrs_.size());
  snap->objects = v_objects_;
  for (size_t i = 0; i < attrs_.size(); ++i) {
    const AttributeOptions& spec = options_.attributes[i];
    const AttributeState& state = attrs_[i];
    SnapshotAttributeState attr;
    attr.name = spec.name;
    attr.maintain_ssf = state.ssf != nullptr;
    attr.maintain_bssf = state.bssf != nullptr;
    attr.maintain_nix = state.nix != nullptr;
    attr.sig = spec.sig;
    attr.nix_fanout = spec.nix_fanout;
    attr.capacity = options_.capacity;
    attr.domain_estimate = DomainEstimate(i);
    attr.total_elements = state.total_elements;
    if (state.ssf != nullptr) {
      attr.num_signatures = state.ssf->num_signatures();
      attr.num_live = state.ssf->num_live();
    } else if (state.bssf != nullptr) {
      attr.num_signatures = state.bssf->num_signatures();
      attr.num_live = state.bssf->num_live();
    }
    if (state.nix != nullptr) {
      const BTree& tree = state.nix->tree();
      attr.nix_root = tree.root();
      attr.nix_height = tree.height();
      attr.nix_leaves = tree.leaf_pages();
      attr.nix_internal = tree.internal_pages();
      attr.nix_overflow = tree.overflow_pages();
    }
    attr.ssf_sig = state.v_ssf_sig;
    attr.ssf_oid = state.v_ssf_oid;
    attr.bssf_slices = state.v_bssf_slices;
    attr.bssf_oid = state.v_bssf_oid;
    attr.nix = state.v_nix;
    snap->attrs.push_back(std::move(attr));
  }
  epochs_->Publish(std::move(snap));
}

StatusOr<std::unique_ptr<DatabaseSnapshot>> Database::GetSnapshot() {
  if (!poison_.ok()) return poison_;
  if (epochs_ == nullptr) {
    return Status::FailedPrecondition(
        "snapshots disabled (Options::enable_snapshots)");
  }
  return DatabaseSnapshot::Create(epochs_->Pin(), metrics_, recorder_.get());
}

uint64_t Database::current_epoch() const {
  return epochs_ != nullptr ? epochs_->published() : 0;
}

Status Database::ValidateOptions(const Options& options) {
  if (options.attributes.empty()) {
    return Status::InvalidArgument("at least one attribute required");
  }
  for (const AttributeOptions& attr : options.attributes) {
    if (attr.name.empty()) {
      return Status::InvalidArgument("attribute name must not be empty");
    }
    if (!attr.maintain_ssf && !attr.maintain_bssf && !attr.maintain_nix) {
      return Status::InvalidArgument("attribute " + attr.name +
                                     ": enable at least one facility");
    }
  }
  return Status::OK();
}

Status Database::InitFacilities(const std::string& name,
                                const Manifest::Values* recovered) {
  attrs_.resize(options_.attributes.size());
  dictionaries_.resize(options_.attributes.size());
  for (size_t i = 0; i < options_.attributes.size(); ++i) {
    const AttributeOptions& spec = options_.attributes[i];
    AttributeState& state = attrs_[i];
    std::string prefix = name + "." + spec.name;
    uint64_t sigs = 0;
    if (recovered != nullptr) {
      SIGSET_ASSIGN_OR_RETURN(
          sigs, Manifest::Get(*recovered, AttrKey(i, "signatures")));
      SIGSET_ASSIGN_OR_RETURN(
          state.total_elements,
          Manifest::Get(*recovered, AttrKey(i, "elements")));
    }
    if (spec.maintain_ssf) {
      SIGSET_ASSIGN_OR_RETURN(
          PageFile * sig_file,
          OpenVersioned(GenName(prefix + ".sig", generation_),
                        &state.v_ssf_sig));
      SIGSET_ASSIGN_OR_RETURN(
          PageFile * oid_file,
          OpenVersioned(GenName(prefix + ".sig.oid", generation_),
                        &state.v_ssf_oid));
      if (recovered == nullptr) {
        SIGSET_ASSIGN_OR_RETURN(state.ssf, SequentialSignatureFile::Create(
                                               spec.sig, sig_file, oid_file));
      } else {
        SIGSET_ASSIGN_OR_RETURN(state.ssf,
                                SequentialSignatureFile::CreateFromExisting(
                                    spec.sig, sig_file, oid_file, sigs));
      }
    }
    if (spec.maintain_bssf) {
      SIGSET_ASSIGN_OR_RETURN(
          PageFile * slice_file,
          OpenVersioned(GenName(prefix + ".slices", generation_),
                        &state.v_bssf_slices));
      SIGSET_ASSIGN_OR_RETURN(
          PageFile * oid_file,
          OpenVersioned(GenName(prefix + ".slices.oid", generation_),
                        &state.v_bssf_oid));
      if (recovered == nullptr) {
        SIGSET_ASSIGN_OR_RETURN(
            state.bssf,
            BitSlicedSignatureFile::Create(spec.sig, options_.capacity,
                                           slice_file, oid_file,
                                           spec.bssf_mode));
      } else {
        SIGSET_ASSIGN_OR_RETURN(
            state.bssf, BitSlicedSignatureFile::CreateFromExisting(
                            spec.sig, options_.capacity, slice_file, oid_file,
                            spec.bssf_mode, sigs));
      }
    }
    if (spec.maintain_nix) {
      SIGSET_ASSIGN_OR_RETURN(PageFile * nix_file,
                              OpenVersioned(prefix + ".nix", &state.v_nix));
      if (recovered == nullptr) {
        SIGSET_ASSIGN_OR_RETURN(
            state.nix, NestedIndex::Create(nix_file, spec.nix_fanout));
      } else {
        SIGSET_ASSIGN_OR_RETURN(
            uint64_t root, Manifest::Get(*recovered, AttrKey(i, "nix_root")));
        SIGSET_ASSIGN_OR_RETURN(
            uint64_t height,
            Manifest::Get(*recovered, AttrKey(i, "nix_height")));
        SIGSET_ASSIGN_OR_RETURN(
            uint64_t leaves,
            Manifest::Get(*recovered, AttrKey(i, "nix_leaves")));
        SIGSET_ASSIGN_OR_RETURN(
            uint64_t internal,
            Manifest::Get(*recovered, AttrKey(i, "nix_internal")));
        SIGSET_ASSIGN_OR_RETURN(
            uint64_t overflow,
            Manifest::Get(*recovered, AttrKey(i, "nix_overflow")));
        SIGSET_ASSIGN_OR_RETURN(
            state.nix,
            NestedIndex::CreateFromExisting(
                nix_file, spec.nix_fanout, static_cast<PageId>(root),
                static_cast<uint32_t>(height), leaves, internal, overflow));
        auto free_head = Manifest::Get(*recovered, AttrKey(i, "nix_free_head"));
        auto free_pages =
            Manifest::Get(*recovered, AttrKey(i, "nix_free_pages"));
        if (free_head.ok() && free_pages.ok()) {
          state.nix->mutable_tree().RestoreFreeList(
              static_cast<PageId>(*free_head), *free_pages);
        }
      }
    }
  }
  return Status::OK();
}

StatusOr<std::unique_ptr<Database>> Database::Create(StorageManager* storage,
                                                     const std::string& name,
                                                     const Options& options) {
  SIGSET_RETURN_IF_ERROR(ValidateOptions(options));
  std::unique_ptr<Database> db(new Database(storage, options));
  db->name_ = name;
  SIGSET_ASSIGN_OR_RETURN(db->manifest_file_,
                          storage->OpenOrCreate(name + ".manifest"));
  SIGSET_ASSIGN_OR_RETURN(db->sketch_file_,
                          storage->OpenOrCreate(name + ".sketch"));
  SIGSET_ASSIGN_OR_RETURN(
      PageFile * objects,
      db->OpenVersioned(name + ".objects", &db->v_objects_));
  db->store_ = std::make_unique<MultiObjectStore>(
      objects, static_cast<uint16_t>(options.attributes.size()));
  SIGSET_RETURN_IF_ERROR(db->InitFacilities(name, nullptr));
  if (options.enable_wal) {
    SIGSET_ASSIGN_OR_RETURN(PageFile * wal_file,
                            storage->OpenOrCreate(name + ".wal"));
    SIGSET_ASSIGN_OR_RETURN(db->wal_,
                            WriteAheadLog::Create(wal_file, 0, db->metrics_));
    db->wal_->set_group_commit_window(options.group_commit_window_us);
    // Checkpoint immediately so a crash before the first user checkpoint
    // still reopens: the manifest anchors replay at lsn 0.
    SIGSET_RETURN_IF_ERROR(db->Checkpoint());
  }
  db->PublishSnapshot();  // epoch 1: the empty database
  return db;
}

StatusOr<std::unique_ptr<Database>> Database::Open(StorageManager* storage,
                                                   const std::string& name,
                                                   const Options& options) {
  SIGSET_RETURN_IF_ERROR(ValidateOptions(options));
  std::unique_ptr<Database> db(new Database(storage, options));
  db->name_ = name;
  SIGSET_ASSIGN_OR_RETURN(db->manifest_file_,
                          storage->OpenOrCreate(name + ".manifest"));
  SIGSET_ASSIGN_OR_RETURN(db->sketch_file_,
                          storage->OpenOrCreate(name + ".sketch"));
  SIGSET_ASSIGN_OR_RETURN(Manifest::Values values,
                          Manifest::Read(db->manifest_file_));
  // Pre-compaction manifests have no generation key; that means gen 0.
  auto generation = Manifest::Get(values, kKeyGeneration);
  if (generation.ok()) db->generation_ = *generation;
  SIGSET_ASSIGN_OR_RETURN(uint64_t attrs, Manifest::Get(values, kKeyAttrs));
  if (attrs != options.attributes.size()) {
    return Status::FailedPrecondition(
        "attribute count does not match the checkpoint");
  }
  // Pre-WAL manifests have no config_wal key; they are WAL-off databases.
  auto wal_flag = Manifest::Get(values, kKeyWal);
  const uint64_t checkpointed_wal = wal_flag.ok() ? *wal_flag : 0;
  if (checkpointed_wal != (options.enable_wal ? 1u : 0u)) {
    return Status::FailedPrecondition(
        "options do not match the checkpointed configuration");
  }
  SIGSET_ASSIGN_OR_RETURN(uint64_t objects,
                          Manifest::Get(values, kKeyObjects));
  SIGSET_ASSIGN_OR_RETURN(
      PageFile * object_file,
      db->OpenVersioned(name + ".objects", &db->v_objects_));
  db->store_ = std::make_unique<MultiObjectStore>(
      object_file, static_cast<uint16_t>(options.attributes.size()));
  db->store_->RecoverCount(objects);

  if (options.enable_wal) {
    auto ckpt_lsn = Manifest::Get(values, kKeyWalLsn);
    const uint64_t wal_lsn = ckpt_lsn.ok() ? *ckpt_lsn : 0;
    SIGSET_ASSIGN_OR_RETURN(PageFile * wal_file,
                            storage->OpenOrCreate(name + ".wal"));
    SIGSET_ASSIGN_OR_RETURN(
        WriteAheadLog::OpenResult scan,
        WriteAheadLog::Open(wal_file, wal_lsn, db->metrics_));
    db->wal_ = std::move(scan.log);
    db->wal_->set_group_commit_window(options.group_commit_window_us);
    std::vector<LogRecord> to_replay;
    for (LogRecord& rec : scan.records) {
      if (rec.lsn > wal_lsn) to_replay.push_back(std::move(rec));
    }
    if (!to_replay.empty()) {
      // Acknowledged writes past the checkpoint: redo them against the
      // store, then rebuild every attribute's facilities from the store.
      // The facilities' own files may be arbitrarily stale or torn — they
      // are never opened through the normal path here.  The checkpointed
      // sketches load first so the rebuild's re-adds merge into them.
      db->attrs_.resize(options.attributes.size());
      db->dictionaries_.resize(options.attributes.size());
      if (db->sketch_file_->num_pages() >=
          static_cast<PageId>(db->attrs_.size())) {
        Page page;
        for (size_t i = 0; i < db->attrs_.size(); ++i) {
          SIGSET_RETURN_IF_ERROR(
              db->sketch_file_->Read(static_cast<PageId>(i), &page));
          if (!db->attrs_[i].domain_sketch.LoadRegisters(
                  page.data(), db->attrs_[i].domain_sketch.num_registers())) {
            return Status::Corruption("domain sketch size mismatch");
          }
        }
      }
      SIGSET_RETURN_IF_ERROR(db->ReplayLog(to_replay));
      SIGSET_RETURN_IF_ERROR(db->RebuildFacilitiesFromStore());
      if (db->metrics_ != nullptr) {
        db->metrics_->counter("wal.replayed_records")
            ->Increment(to_replay.size());
      }
      // Deliberately NO checkpoint here: recovery is read-only w.r.t. the
      // log, so replaying twice equals replaying once.  The next explicit
      // Checkpoint() or Compact() truncates the log.
      object_file->stats().Reset();
      db->PublishSnapshot();
      return db;
    }
  }
  SIGSET_RETURN_IF_ERROR(db->InitFacilities(name, &values));
  // Restore the per-attribute domain sketches (page i = attribute i).
  if (db->sketch_file_->num_pages() >=
      static_cast<PageId>(db->attrs_.size())) {
    Page page;
    for (size_t i = 0; i < db->attrs_.size(); ++i) {
      SIGSET_RETURN_IF_ERROR(
          db->sketch_file_->Read(static_cast<PageId>(i), &page));
      if (!db->attrs_[i].domain_sketch.LoadRegisters(
              page.data(), db->attrs_[i].domain_sketch.num_registers())) {
        return Status::Corruption("domain sketch size mismatch");
      }
    }
  }
  db->PublishSnapshot();
  return db;
}

Status Database::CheckpointImpl() {
  if (!poison_.ok()) return poison_;
  // Quiescent invariant: every appended record has been committed (each
  // mutation commits before returning), so last_lsn() covers everything the
  // counters below reflect.
  const uint64_t wal_lsn = wal_ != nullptr ? wal_->last_lsn() : 0;
  Manifest::Values values;
  values[kKeyObjects] = num_objects();
  values[kKeyAttrs] = attrs_.size();
  values[kKeyGeneration] = generation_;
  values[kKeyWal] = wal_ != nullptr ? 1 : 0;
  values[kKeyWalLsn] = wal_lsn;
  for (size_t i = 0; i < attrs_.size(); ++i) {
    const AttributeState& state = attrs_[i];
    uint64_t sigs = 0;
    if (state.ssf != nullptr) {
      sigs = state.ssf->num_signatures();
    } else if (state.bssf != nullptr) {
      sigs = state.bssf->num_signatures();
    }
    values[AttrKey(i, "signatures")] = sigs;
    values[AttrKey(i, "elements")] = state.total_elements;
    if (state.nix != nullptr) {
      const BTree& tree = state.nix->tree();
      values[AttrKey(i, "nix_root")] = tree.root();
      values[AttrKey(i, "nix_height")] = tree.height();
      values[AttrKey(i, "nix_leaves")] = tree.leaf_pages();
      values[AttrKey(i, "nix_internal")] = tree.internal_pages();
      values[AttrKey(i, "nix_overflow")] = tree.overflow_pages();
      values[AttrKey(i, "nix_free_head")] = tree.free_list_head();
      values[AttrKey(i, "nix_free_pages")] = tree.free_pages();
    }
  }
  // Persist the per-attribute domain sketches (one page each).
  while (sketch_file_->num_pages() < attrs_.size()) {
    SIGSET_ASSIGN_OR_RETURN(PageId id, sketch_file_->Allocate());
    (void)id;
  }
  Page page;
  for (size_t i = 0; i < attrs_.size(); ++i) {
    page.Zero();
    std::memcpy(page.data(), attrs_[i].domain_sketch.registers().data(),
                attrs_[i].domain_sketch.num_registers());
    SIGSET_RETURN_IF_ERROR(
        sketch_file_->Write(static_cast<PageId>(i), page));
  }
  // With snapshots on, writes land in in-memory version chains; push the
  // newest versions down to the base files before the manifest points at
  // them (the manifest must never be ahead of the data it describes).
  SIGSET_RETURN_IF_ERROR(FlushCurrentVersions());
  SIGSET_RETURN_IF_ERROR(Manifest::Write(manifest_file_, values));
  // Manifest first, then log truncation: a crash between the two leaves
  // records <= wal_lsn in the log, and replay filters them out by lsn.
  if (wal_ != nullptr) {
    SIGSET_RETURN_IF_ERROR(wal_->Truncate(wal_lsn));
  }
  return Status::OK();
}

Status Database::ApplyInsert(const std::vector<ElementSet>& normalized,
                             Oid expected_oid) {
  SIGSET_ASSIGN_OR_RETURN(Oid oid, store_->Insert(normalized));
  if (expected_oid.valid() && oid != expected_oid) {
    return Status::Internal("store assigned " + oid.ToString() +
                            " but the log predicted " +
                            expected_oid.ToString());
  }
  for (size_t i = 0; i < attrs_.size(); ++i) {
    AttributeState& state = attrs_[i];
    if (state.ssf != nullptr) {
      SIGSET_RETURN_IF_ERROR(state.ssf->Insert(oid, normalized[i]));
    }
    if (state.bssf != nullptr) {
      SIGSET_RETURN_IF_ERROR(state.bssf->Insert(oid, normalized[i]));
    }
    if (state.nix != nullptr) {
      SIGSET_RETURN_IF_ERROR(state.nix->Insert(oid, normalized[i]));
    }
    state.total_elements += normalized[i].size();
    for (uint64_t element : normalized[i]) state.domain_sketch.Add(element);
  }
  return Status::OK();
}

StatusOr<Oid> Database::InsertImpl(std::vector<ElementSet> attr_values) {
  if (!poison_.ok()) return poison_;
  if (attr_values.size() != attrs_.size()) {
    return Status::InvalidArgument("attribute count mismatch");
  }
  for (ElementSet& set : attr_values) NormalizeSet(&set);
  if (wal_ == nullptr) {
    SIGSET_ASSIGN_OR_RETURN(Oid oid, store_->Insert(attr_values));
    for (size_t i = 0; i < attrs_.size(); ++i) {
      AttributeState& state = attrs_[i];
      if (state.ssf != nullptr) {
        SIGSET_RETURN_IF_ERROR(state.ssf->Insert(oid, attr_values[i]));
      }
      if (state.bssf != nullptr) {
        SIGSET_RETURN_IF_ERROR(state.bssf->Insert(oid, attr_values[i]));
      }
      if (state.nix != nullptr) {
        SIGSET_RETURN_IF_ERROR(state.nix->Insert(oid, attr_values[i]));
      }
      state.total_elements += attr_values[i].size();
      for (uint64_t element : attr_values[i]) state.domain_sketch.Add(element);
    }
    PublishSnapshot();
    return oid;
  }
  // Log-before-apply: predict the physical OID, commit the record, then
  // mutate.  The insert is acknowledged by the commit; the apply (or, after
  // a crash, replay) realizes it.
  SIGSET_ASSIGN_OR_RETURN(Oid predicted, store_->PeekNextOid(attr_values));
  SIGSET_ASSIGN_OR_RETURN(
      uint64_t lsn,
      wal_->AppendAndCommit(LogRecord::SingleInsert(predicted, attr_values)));
  Status applied = ApplyInsert(attr_values, predicted);
  if (!applied.ok()) return AbortAndPoison(lsn, applied);
  PublishSnapshot();
  return predicted;
}

Status Database::ApplyDelete(Oid oid, const MultiSetObject& obj) {
  // De-index every attribute first, store delete LAST (see
  // SetIndex::Delete for the crash-ordering argument).
  for (size_t i = 0; i < attrs_.size(); ++i) {
    AttributeState& state = attrs_[i];
    if (state.ssf != nullptr) {
      SIGSET_RETURN_IF_ERROR(state.ssf->Remove(oid, obj.attrs[i]));
    }
    if (state.bssf != nullptr) {
      SIGSET_RETURN_IF_ERROR(state.bssf->Remove(oid, obj.attrs[i]));
    }
    if (state.nix != nullptr) {
      SIGSET_RETURN_IF_ERROR(state.nix->Remove(oid, obj.attrs[i]));
    }
  }
  SIGSET_RETURN_IF_ERROR(store_->Delete(oid));
  for (size_t i = 0; i < attrs_.size(); ++i) {
    if (attrs_[i].total_elements >= obj.attrs[i].size()) {
      attrs_[i].total_elements -= obj.attrs[i].size();
    }
  }
  return Status::OK();
}

Status Database::DeleteImpl(Oid oid) {
  if (!poison_.ok()) return poison_;
  SIGSET_ASSIGN_OR_RETURN(MultiSetObject obj, store_->Get(oid));
  if (wal_ == nullptr) {
    SIGSET_RETURN_IF_ERROR(ApplyDelete(oid, obj));
    PublishSnapshot();
    return Status::OK();
  }
  // The record carries the victim's preimage (all attribute sets) so an
  // aborted delete can be resurrected at recovery.
  SIGSET_ASSIGN_OR_RETURN(
      uint64_t lsn,
      wal_->AppendAndCommit(LogRecord::SingleDelete(oid, obj.attrs)));
  Status applied = ApplyDelete(oid, obj);
  if (!applied.ok()) return AbortAndPoison(lsn, applied);
  PublishSnapshot();
  return Status::OK();
}

Status Database::AbortAndPoison(uint64_t lsn, const Status& cause) {
  // Same contract as SetIndex::AbortAndPoison: the record at `lsn` is
  // durable but its apply failed partway.  Log an Abort so recovery rolls
  // the record back (or, if the Abort itself cannot commit, recovery
  // completes the record instead — either end state is consistent), and
  // poison this instance until it is reopened.
  (void)wal_->AppendAndCommit(LogRecord::Abort(lsn));
  poison_ = Status::FailedPrecondition(
      "database poisoned: apply of log record " + std::to_string(lsn) +
      " failed (" + cause.message() + "); reopen to recover");
  return cause;
}

StatusOr<std::vector<Oid>> Database::ApplyBatchImpl(const MultiWriteBatch& batch) {
  if (!poison_.ok()) return poison_;
  for (const std::vector<ElementSet>& attr_values : batch.inserts()) {
    if (attr_values.size() != attrs_.size()) {
      return Status::InvalidArgument("attribute count mismatch");
    }
  }
  // Fetch delete victims up front; this is why deleting a same-batch
  // insert is unsupported (victims resolve against the pre-batch store).
  std::vector<MultiSetObject> victims;
  victims.reserve(batch.deletes().size());
  for (Oid oid : batch.deletes()) {
    SIGSET_ASSIGN_OR_RETURN(MultiSetObject obj, store_->Get(oid));
    victims.push_back(std::move(obj));
  }

  std::vector<std::vector<ElementSet>> normalized;
  normalized.reserve(batch.inserts().size());
  for (const std::vector<ElementSet>& attr_values : batch.inserts()) {
    std::vector<ElementSet> n = attr_values;
    for (ElementSet& set : n) NormalizeSet(&set);
    normalized.push_back(std::move(n));
  }

  // One record covers the whole batch: it commits (and is acknowledged)
  // atomically — recovery applies all of it or, when aborted, none.
  uint64_t batch_lsn = 0;
  std::vector<Oid> predicted;
  if (wal_ != nullptr) {
    SIGSET_ASSIGN_OR_RETURN(predicted, store_->PeekOids(normalized));
    std::vector<LogEntry> del_entries;
    del_entries.reserve(victims.size());
    for (size_t i = 0; i < victims.size(); ++i) {
      del_entries.push_back(LogEntry{batch.deletes()[i], victims[i].attrs});
    }
    std::vector<LogEntry> ins_entries;
    ins_entries.reserve(predicted.size());
    for (size_t i = 0; i < predicted.size(); ++i) {
      ins_entries.push_back(LogEntry{predicted[i], normalized[i]});
    }
    SIGSET_ASSIGN_OR_RETURN(
        batch_lsn,
        wal_->AppendAndCommit(LogRecord::Batch(std::move(del_entries),
                                               std::move(ins_entries))));
  }

  std::vector<Oid> new_oids;
  Status applied =
      ApplyBatchBody(batch, victims, normalized, predicted, &new_oids);
  if (!applied.ok()) {
    if (wal_ != nullptr) return AbortAndPoison(batch_lsn, applied);
    return applied;
  }
  PublishSnapshot();
  return new_oids;
}

Status Database::ApplyBatchBody(
    const MultiWriteBatch& batch, const std::vector<MultiSetObject>& victims,
    const std::vector<std::vector<ElementSet>>& normalized,
    const std::vector<Oid>& predicted, std::vector<Oid>* out_oids) {
  // Store inserts first: they assign the OIDs the facility ops index.
  std::vector<Oid>& new_oids = *out_oids;
  new_oids.reserve(normalized.size());
  for (size_t i = 0; i < normalized.size(); ++i) {
    SIGSET_ASSIGN_OR_RETURN(Oid oid, store_->Insert(normalized[i]));
    if (!predicted.empty() && oid != predicted[i]) {
      return Status::Internal("store assigned " + oid.ToString() +
                              " but the log predicted " +
                              predicted[i].ToString());
    }
    new_oids.push_back(oid);
  }

  // One grouped application per (attribute, facility): removes first so
  // freed slots are reused by this batch's inserts.
  for (size_t i = 0; i < attrs_.size(); ++i) {
    AttributeState& state = attrs_[i];
    std::vector<BatchOp> ops;
    ops.reserve(batch.size());
    for (size_t v = 0; v < victims.size(); ++v) {
      ops.push_back(BatchOp{BatchOp::Kind::kRemove, batch.deletes()[v],
                            victims[v].attrs[i]});
    }
    for (size_t v = 0; v < new_oids.size(); ++v) {
      ops.push_back(
          BatchOp{BatchOp::Kind::kInsert, new_oids[v], normalized[v][i]});
    }
    if (state.ssf != nullptr) SIGSET_RETURN_IF_ERROR(state.ssf->ApplyBatch(ops));
    if (state.bssf != nullptr) {
      SIGSET_RETURN_IF_ERROR(state.bssf->ApplyBatch(ops));
    }
    if (state.nix != nullptr) SIGSET_RETURN_IF_ERROR(state.nix->ApplyBatch(ops));
  }

  // Store deletes LAST — same crash ordering as Delete().
  for (Oid oid : batch.deletes()) {
    SIGSET_RETURN_IF_ERROR(store_->Delete(oid));
  }

  for (size_t i = 0; i < attrs_.size(); ++i) {
    AttributeState& state = attrs_[i];
    for (const MultiSetObject& victim : victims) {
      if (state.total_elements >= victim.attrs[i].size()) {
        state.total_elements -= victim.attrs[i].size();
      }
    }
    for (const std::vector<ElementSet>& n : normalized) {
      state.total_elements += n[i].size();
      for (uint64_t element : n[i]) state.domain_sketch.Add(element);
    }
  }
  return Status::OK();
}

Status Database::CompactImpl() {
  if (!poison_.ok()) return poison_;
  bool any_sig = false;
  for (const AttributeState& state : attrs_) {
    if (state.ssf != nullptr || state.bssf != nullptr) any_sig = true;
  }
  if (!any_sig) return CheckpointImpl();
  const uint64_t next_gen = generation_ + 1;

  // Build every attribute's next-generation files before swapping anything:
  // the manifest's generation key (written by the final Checkpoint) is the
  // single commit point for all attributes.
  struct Replacement {
    std::unique_ptr<SequentialSignatureFile> ssf;
    std::unique_ptr<BitSlicedSignatureFile> bssf;
    // Next-generation wrappers stay in these local slots until the swap
    // succeeds, so a failed CompactTo leaves the current slots intact.
    VersionedPageFile* v_ssf_sig = nullptr;
    VersionedPageFile* v_ssf_oid = nullptr;
    VersionedPageFile* v_bssf_slices = nullptr;
    VersionedPageFile* v_bssf_oid = nullptr;
  };
  std::vector<Replacement> replacements(attrs_.size());
  for (size_t i = 0; i < attrs_.size(); ++i) {
    const AttributeOptions& spec = options_.attributes[i];
    AttributeState& state = attrs_[i];
    const std::string prefix = name_ + "." + spec.name;
    uint64_t ssf_live = 0, bssf_live = 0;
    if (state.ssf != nullptr) {
      SIGSET_ASSIGN_OR_RETURN(
          PageFile * sig,
          OpenVersioned(GenName(prefix + ".sig", next_gen),
                        &replacements[i].v_ssf_sig));
      SIGSET_ASSIGN_OR_RETURN(
          PageFile * oid,
          OpenVersioned(GenName(prefix + ".sig.oid", next_gen),
                        &replacements[i].v_ssf_oid));
      SIGSET_ASSIGN_OR_RETURN(ssf_live, state.ssf->CompactTo(sig, oid));
      SIGSET_ASSIGN_OR_RETURN(replacements[i].ssf,
                              SequentialSignatureFile::CreateFromExisting(
                                  spec.sig, sig, oid, ssf_live));
    }
    if (state.bssf != nullptr) {
      SIGSET_ASSIGN_OR_RETURN(
          PageFile * slices,
          OpenVersioned(GenName(prefix + ".slices", next_gen),
                        &replacements[i].v_bssf_slices));
      SIGSET_ASSIGN_OR_RETURN(
          PageFile * oid,
          OpenVersioned(GenName(prefix + ".slices.oid", next_gen),
                        &replacements[i].v_bssf_oid));
      SIGSET_ASSIGN_OR_RETURN(bssf_live, state.bssf->CompactTo(slices, oid));
      SIGSET_ASSIGN_OR_RETURN(replacements[i].bssf,
                              BitSlicedSignatureFile::CreateFromExisting(
                                  spec.sig, options_.capacity, slices, oid,
                                  spec.bssf_mode, bssf_live));
    }
    if (state.ssf != nullptr && state.bssf != nullptr &&
        ssf_live != bssf_live) {
      return Status::Internal(
          "compaction live-count mismatch between facilities");
    }
  }
  // With a WAL, note the compaction in the log before swapping: replay
  // treats the record as a no-op (recovery rebuilds facilities from the
  // store, which is compaction-order independent), but it keeps the strict
  // lsn sequence aligned with the operations the checkpoint below covers.
  if (wal_ != nullptr) {
    SIGSET_RETURN_IF_ERROR(
        wal_->AppendAndCommit(LogRecord::CompactCommit(next_gen)).status());
  }
  for (size_t i = 0; i < attrs_.size(); ++i) {
    if (replacements[i].ssf != nullptr) {
      attrs_[i].ssf = std::move(replacements[i].ssf);
      attrs_[i].v_ssf_sig = replacements[i].v_ssf_sig;
      attrs_[i].v_ssf_oid = replacements[i].v_ssf_oid;
    }
    if (replacements[i].bssf != nullptr) {
      attrs_[i].bssf = std::move(replacements[i].bssf);
      attrs_[i].v_bssf_slices = replacements[i].v_bssf_slices;
      attrs_[i].v_bssf_oid = replacements[i].v_bssf_oid;
    }
  }
  generation_ = next_gen;
  // Publish the new generation before checkpointing: pinned readers keep
  // the old generation's wrappers (still alive in versioned_all_); new
  // snapshots see the compacted files.
  PublishSnapshot();
  return Checkpoint();
}

Status Database::ReplayLog(const std::vector<LogRecord>& records) {
  // Pass 1: an Abort marks its target record as rolled back.  The engine
  // poisons itself after the first failed apply, so any log tail carries at
  // most one aborted record — but the set keeps this general.
  std::vector<uint64_t> aborted;
  for (const LogRecord& rec : records) {
    if (rec.type == LogRecordType::kAbort) aborted.push_back(rec.ref_lsn);
  }
  auto is_aborted = [&aborted](uint64_t lsn) {
    for (uint64_t a : aborted) {
      if (a == lsn) return true;
    }
    return false;
  };
  // Pass 2: store-level redo in lsn order (see SetIndex::ReplayLog);
  // entries carry one ElementSet per attribute.
  for (const LogRecord& rec : records) {
    const bool rolled_back = is_aborted(rec.lsn);
    switch (rec.type) {
      case LogRecordType::kInsert:
      case LogRecordType::kDelete:
      case LogRecordType::kBatch:
        for (const LogEntry& e : rec.inserts) {
          SIGSET_RETURN_IF_ERROR(
              rolled_back ? store_->ReplayEnsureAbsent(e.oid)
                          : store_->ReplayEnsurePresent(e.oid, e.sets));
        }
        for (const LogEntry& e : rec.deletes) {
          SIGSET_RETURN_IF_ERROR(
              rolled_back ? store_->ReplayEnsurePresent(e.oid, e.sets)
                          : store_->ReplayEnsureAbsent(e.oid));
        }
        break;
      case LogRecordType::kCompactCommit:
        // Facilities are rebuilt from the store below; whether the crashed
        // run compacted first cannot change the rebuilt state.
        break;
      case LogRecordType::kAbort:
        break;
    }
  }
  return Status::OK();
}

Status Database::RebuildFacilitiesFromStore() {
  // The recovered store is the single source of truth: recount everything
  // and rebuild each attribute's facilities from one live scan.
  std::vector<Oid> oids;
  std::vector<std::vector<ElementSet>> per_attr_sets(attrs_.size());
  for (AttributeState& state : attrs_) state.total_elements = 0;
  SIGSET_RETURN_IF_ERROR(store_->ForEachLive(
      [&](Oid oid, const std::vector<ElementSet>& sets) {
        oids.push_back(oid);
        for (size_t i = 0; i < attrs_.size(); ++i) {
          per_attr_sets[i].push_back(sets[i]);
          attrs_[i].total_elements += sets[i].size();
          for (uint64_t element : sets[i]) {
            attrs_[i].domain_sketch.Add(element);
          }
        }
        return Status::OK();
      }));
  store_->RecoverCount(oids.size());
  const uint64_t live = oids.size();

  for (size_t i = 0; i < attrs_.size(); ++i) {
    const AttributeOptions& spec = options_.attributes[i];
    AttributeState& state = attrs_[i];
    const std::string prefix = name_ + "." + spec.name;
    // SSF/BSSF: build pristine copies in memory, then CompactTo the real
    // generation files, wiping whatever stale or torn state the crashed run
    // left there (see SetIndex::RebuildFacilitiesFromStore for why
    // rebuilding in place via Insert would be wrong).
    if (spec.maintain_ssf) {
      InMemoryPageFile tmp_sig("recover." + spec.name + ".sig");
      InMemoryPageFile tmp_oid("recover." + spec.name + ".sig.oid");
      SIGSET_ASSIGN_OR_RETURN(
          std::unique_ptr<SequentialSignatureFile> tmp,
          SequentialSignatureFile::Create(spec.sig, &tmp_sig, &tmp_oid));
      for (size_t v = 0; v < live; ++v) {
        SIGSET_RETURN_IF_ERROR(tmp->Insert(oids[v], per_attr_sets[i][v]));
      }
      SIGSET_ASSIGN_OR_RETURN(
          PageFile * sig,
          OpenVersioned(GenName(prefix + ".sig", generation_),
                        &state.v_ssf_sig));
      SIGSET_ASSIGN_OR_RETURN(
          PageFile * oid,
          OpenVersioned(GenName(prefix + ".sig.oid", generation_),
                        &state.v_ssf_oid));
      SIGSET_ASSIGN_OR_RETURN(uint64_t packed, tmp->CompactTo(sig, oid));
      if (packed != live) {
        return Status::Internal("ssf rebuild count mismatch");
      }
      SIGSET_ASSIGN_OR_RETURN(state.ssf,
                              SequentialSignatureFile::CreateFromExisting(
                                  spec.sig, sig, oid, live));
    }
    if (spec.maintain_bssf) {
      InMemoryPageFile tmp_slices("recover." + spec.name + ".slices");
      InMemoryPageFile tmp_oid("recover." + spec.name + ".slices.oid");
      SIGSET_ASSIGN_OR_RETURN(
          std::unique_ptr<BitSlicedSignatureFile> tmp,
          BitSlicedSignatureFile::Create(spec.sig, options_.capacity,
                                         &tmp_slices, &tmp_oid,
                                         spec.bssf_mode));
      for (size_t v = 0; v < live; ++v) {
        SIGSET_RETURN_IF_ERROR(tmp->Insert(oids[v], per_attr_sets[i][v]));
      }
      SIGSET_ASSIGN_OR_RETURN(
          PageFile * slices,
          OpenVersioned(GenName(prefix + ".slices", generation_),
                        &state.v_bssf_slices));
      SIGSET_ASSIGN_OR_RETURN(
          PageFile * oid,
          OpenVersioned(GenName(prefix + ".slices.oid", generation_),
                        &state.v_bssf_oid));
      SIGSET_ASSIGN_OR_RETURN(uint64_t packed, tmp->CompactTo(slices, oid));
      if (packed != live) {
        return Status::Internal("bssf rebuild count mismatch");
      }
      SIGSET_ASSIGN_OR_RETURN(
          state.bssf, BitSlicedSignatureFile::CreateFromExisting(
                          spec.sig, options_.capacity, slices, oid,
                          spec.bssf_mode, live));
    }
    if (spec.maintain_nix) {
      // Reset to an empty tree (orphaning whatever pages the crashed run
      // left) and bulk-build from the live scan.
      SIGSET_ASSIGN_OR_RETURN(PageFile * nix_file,
                              OpenVersioned(prefix + ".nix", &state.v_nix));
      SIGSET_ASSIGN_OR_RETURN(
          state.nix, NestedIndex::CreateResetting(nix_file, spec.nix_fanout));
      SIGSET_RETURN_IF_ERROR(state.nix->BulkBuild(oids, per_attr_sets[i]));
    }
  }
  return Status::OK();
}

StatusOr<size_t> Database::AttributeIndex(const std::string& attribute) const {
  for (size_t i = 0; i < options_.attributes.size(); ++i) {
    if (options_.attributes[i].name == attribute) return i;
  }
  return Status::NotFound("no such attribute: " + attribute);
}

int64_t Database::DomainEstimate(size_t attr) const {
  if (options_.attributes[attr].domain_estimate > 0) {
    return options_.attributes[attr].domain_estimate;
  }
  int64_t estimate = static_cast<int64_t>(
      std::llround(attrs_[attr].domain_sketch.Estimate()));
  return std::max<int64_t>(estimate, 2);
}

Database::ModelView Database::ModelFor(size_t attr) const {
  const AttributeOptions& spec = options_.attributes[attr];
  const AttributeState& state = attrs_[attr];
  ModelView mv{DatabaseParams{}, SignatureParams{spec.sig.f, spec.sig.m},
               NixParams{}, 1};
  mv.db.n = std::max<int64_t>(1, static_cast<int64_t>(num_objects()));
  mv.db.v = DomainEstimate(attr);
  mv.nix.fanout = spec.nix_fanout;
  mv.dt = num_objects() == 0
              ? 1
              : std::max<int64_t>(
                    1, static_cast<int64_t>(std::llround(
                           static_cast<double>(state.total_elements) /
                           static_cast<double>(num_objects()))));
  if (mv.db.v < mv.dt + 1) mv.db.v = mv.dt + 1;  // combinatorics need V >= Dt
  return mv;
}

StatusOr<AccessPathChoice> Database::PlanPredicate(
    size_t attr, const SetPredicate& predicate, double* cost) const {
  const AttributeState& state = attrs_[attr];
  const ModelView mv = ModelFor(attr);
  QueryKind ck = CandidateKind(predicate.kind);
  SIGSET_ASSIGN_OR_RETURN(
      std::vector<AccessPathChoice> choices,
      AdviseAccessPaths(mv.db, mv.sig, mv.nix, mv.dt,
                        static_cast<int64_t>(predicate.query.size()), ck,
                        /*allow_smart=*/true));
  for (const AccessPathChoice& choice : choices) {
    if (choice.facility == "ssf" && state.ssf == nullptr) continue;
    if (choice.facility == "bssf" && state.bssf == nullptr) continue;
    if (choice.facility == "nix" && state.nix == nullptr) continue;
    *cost = choice.cost_pages;
    return choice;
  }
  return Status::Internal("no maintained facility for attribute");
}

StatusOr<std::vector<Oid>> Database::DriverCandidates(
    size_t attr, const AccessPathChoice& plan, QueryKind candidate_kind,
    const ElementSet& query) {
  AttributeState& state = attrs_[attr];
  const ParallelExecutionContext* ctx = execution_context();
  if (plan.facility == "ssf") {
    SIGSET_ASSIGN_OR_RETURN(CandidateResult result,
                            state.ssf->Candidates(candidate_kind, query));
    return result.oids;
  }
  if (plan.facility == "nix") {
    if (plan.param > 0 && candidate_kind == QueryKind::kSuperset) {
      SIGSET_ASSIGN_OR_RETURN(
          CandidateResult result,
          state.nix->CandidatesSmartSuperset(
              query, static_cast<size_t>(plan.param)));
      return result.oids;
    }
    SIGSET_ASSIGN_OR_RETURN(CandidateResult result,
                            state.nix->Candidates(candidate_kind, query));
    return result.oids;
  }
  // bssf — slice scans fan out over the pool.
  if (plan.param > 0 && candidate_kind == QueryKind::kSuperset) {
    BitVector sig = MakePartialQuerySignature(
        query, static_cast<size_t>(plan.param), state.bssf->config());
    SIGSET_ASSIGN_OR_RETURN(std::vector<uint64_t> slots,
                            state.bssf->SupersetCandidateSlots(sig, ctx));
    return state.bssf->ResolveSlots(slots);
  }
  if (plan.param > 0 && candidate_kind == QueryKind::kSubset) {
    BitVector sig = MakeSetSignature(query, state.bssf->config());
    SIGSET_ASSIGN_OR_RETURN(
        std::vector<uint64_t> slots,
        state.bssf->SubsetCandidateSlots(
            sig, static_cast<size_t>(plan.param), ctx));
    return state.bssf->ResolveSlots(slots);
  }
  SIGSET_ASSIGN_OR_RETURN(CandidateResult result,
                          state.bssf->Candidates(candidate_kind, query, ctx));
  return result.oids;
}

StatusOr<DatabaseQueryResult> Database::Query(
    const std::vector<SetPredicate>& predicates) {
  return QueryInternal(predicates, nullptr, nullptr, nullptr, nullptr);
}

StatusOr<DatabaseQueryResult> Database::QueryInternal(
    const std::vector<SetPredicate>& predicates, QueryTrace* trace,
    AccessPathChoice* chosen_plan, size_t* chosen_attr,
    SetPredicate* chosen_pred) {
  // A poisoned database may hold partially applied facility state; refuse
  // to serve queries from it.
  if (!poison_.ok()) return poison_;
  if (predicates.empty()) {
    return Status::InvalidArgument("at least one predicate required");
  }
  // Normalize queries and resolve attribute indexes.
  std::vector<SetPredicate> preds = predicates;
  std::vector<size_t> attr_index(preds.size());
  for (size_t i = 0; i < preds.size(); ++i) {
    NormalizeSet(&preds[i].query);
    if (preds[i].query.empty()) {
      return Status::InvalidArgument("query set must not be empty");
    }
    SIGSET_ASSIGN_OR_RETURN(attr_index[i],
                            AttributeIndex(preds[i].attribute));
  }

  // With telemetry on, plain queries run with an internal trace feeding the
  // drift watchdog (tracing only snapshots IoStats; page counts are
  // identical either way).
  QueryTrace telemetry_trace;
  if (recorder_ != nullptr && trace == nullptr) trace = &telemetry_trace;

  // Pick the cheapest predicate as the candidate driver.
  size_t driver = 0;
  double best_cost = 0;
  AccessPathChoice driver_plan;
  for (size_t i = 0; i < preds.size(); ++i) {
    double cost = 0;
    SIGSET_ASSIGN_OR_RETURN(AccessPathChoice plan,
                            PlanPredicate(attr_index[i], preds[i], &cost));
    if (i == 0 || cost < best_cost) {
      best_cost = cost;
      driver = i;
      driver_plan = plan;
    }
  }

  if (chosen_plan != nullptr) *chosen_plan = driver_plan;
  if (chosen_attr != nullptr) *chosen_attr = attr_index[driver];
  if (chosen_pred != nullptr) *chosen_pred = preds[driver];
  SetAccessFacility* driver_facility = nullptr;
  if (trace != nullptr) {
    AttributeState& ds = attrs_[attr_index[driver]];
    driver_facility = driver_plan.facility == "ssf"
                          ? static_cast<SetAccessFacility*>(ds.ssf.get())
                          : driver_plan.facility == "bssf"
                                ? static_cast<SetAccessFacility*>(ds.bssf.get())
                                : static_cast<SetAccessFacility*>(ds.nix.get());
    trace->plan = preds[driver].attribute + " via " + driver_plan.facility +
                  " " + driver_plan.strategy;
    trace->kind = QueryKindName(preds[driver].kind);
    trace->dq = static_cast<int64_t>(preds[driver].query.size());
  }

  TraceTimer query_timer;  // feeds the latency histogram
  IoSnapshots sel_before;
  TraceTimer sel_timer(trace != nullptr);
  if (trace != nullptr) sel_before = driver_facility->StageStats();
  IoStats before = storage_->TotalStats();
  StatusOr<std::vector<Oid>> selected =
      DriverCandidates(attr_index[driver], driver_plan,
                       CandidateKind(preds[driver].kind),
                       preds[driver].query);
  if (!selected.ok()) {
    if (recorder_ != nullptr) {
      RecordOpTelemetry(FlightOp::kQuery, "query.latency_us", query_timer,
                        before, selected.status(),
                        FlightRecorder::Fingerprint(
                            static_cast<int>(preds[driver].kind),
                            preds[driver].query));
    }
    return selected.status();
  }
  std::vector<Oid> candidates = std::move(selected).value();
  IoStats resolve_before;
  TraceTimer resolve_timer(trace != nullptr);
  if (trace != nullptr) {
    TraceSpan* span = AddSnapshotStage(trace, "candidate selection",
                                       sel_before,
                                       driver_facility->StageStats());
    span->wall_ms = sel_timer.ElapsedMs();
    span->candidates = static_cast<int64_t>(candidates.size());
    resolve_before = store_->stats();
  }

  // Resolution: one fetch per candidate, all predicates checked.  With a
  // pool, contiguous candidate ranges are resolved concurrently through
  // thread-local IoStats (merged below), so the kept-OID order and the
  // page-access total match the serial loop.
  DatabaseQueryResult out;
  out.num_candidates = candidates.size();
  auto check_all = [&](const MultiSetObject& obj) {
    for (size_t i = 0; i < preds.size(); ++i) {
      if (!Satisfies(obj.attrs[attr_index[i]], preds[i].kind,
                     preds[i].query)) {
        return false;
      }
    }
    return true;
  };
  const ParallelExecutionContext* ctx = execution_context();
  const size_t workers =
      ctx == nullptr ? 1 : ctx->WorkersFor(candidates.size());
  if (workers <= 1) {
    for (Oid oid : candidates) {
      StatusOr<MultiSetObject> obj = store_->Get(oid);
      if (!obj.ok()) {
        // A candidate with no stored object is a false drop, not an error:
        // crash recovery rolls the indexes back to a checkpoint that can
        // still reference objects whose store delete already committed.
        if (obj.status().code() == StatusCode::kNotFound) {
          ++out.num_false_drops;
          continue;
        }
        if (recorder_ != nullptr) {
          RecordOpTelemetry(FlightOp::kQuery, "query.latency_us", query_timer,
                            before, obj.status(),
                            FlightRecorder::Fingerprint(
                                static_cast<int>(preds[driver].kind),
                                preds[driver].query));
        }
        return obj.status();
      }
      if (check_all(*obj)) {
        out.oids.push_back(oid);
      } else {
        ++out.num_false_drops;
      }
    }
  } else {
    struct WorkerState {
      std::vector<Oid> kept;
      uint64_t false_drops = 0;
      uint64_t processed = 0;
      double wall_ms = 0.0;
      IoStats io;
      Status status;
    };
    std::vector<WorkerState> states(workers);
    ctx->pool->ParallelFor(
        candidates.size(), workers, [&](size_t w, size_t begin, size_t end) {
          WorkerState& ws = states[w];
          TraceTimer worker_timer(trace != nullptr);
          ws.processed = end - begin;
          for (size_t i = begin; i < end; ++i) {
            StatusOr<MultiSetObject> obj = store_->Get(candidates[i], &ws.io);
            if (!obj.ok()) {
              // Same tolerance as the serial loop: a store-missing
              // candidate counts as a false drop.
              if (obj.status().code() == StatusCode::kNotFound) {
                ++ws.false_drops;
                continue;
              }
              ws.status = obj.status();
              return;
            }
            if (check_all(*obj)) {
              ws.kept.push_back(candidates[i]);
            } else {
              ++ws.false_drops;
            }
          }
          if (trace != nullptr) ws.wall_ms = worker_timer.ElapsedMs();
        });
    for (const WorkerState& ws : states) store_->stats() += ws.io;
    std::vector<Status> statuses;
    statuses.reserve(states.size());
    for (const WorkerState& ws : states) statuses.push_back(ws.status);
    const Status merged = MergeWorkerStatuses(statuses);
    if (!merged.ok()) {
      if (recorder_ != nullptr) {
        RecordOpTelemetry(FlightOp::kQuery, "query.latency_us", query_timer,
                          before, merged,
                          FlightRecorder::Fingerprint(
                              static_cast<int>(preds[driver].kind),
                              preds[driver].query));
      }
      return merged;
    }
    for (WorkerState& ws : states) {
      out.oids.insert(out.oids.end(), ws.kept.begin(), ws.kept.end());
      out.num_false_drops += ws.false_drops;
    }
    if (trace != nullptr) {
      const IoStats delta = store_->stats() - resolve_before;
      TraceSpan* span = trace->AddStage("resolution");
      span->page_reads = delta.reads();
      span->page_writes = delta.writes();
      span->wall_ms = resolve_timer.ElapsedMs();
      span->candidates = static_cast<int64_t>(out.num_candidates);
      span->false_drops = static_cast<int64_t>(out.num_false_drops);
      // One timed child per worker: the Perfetto exporter renders these as
      // parallel tracks, making resolve skew visible.
      for (size_t w = 0; w < states.size(); ++w) {
        TraceSpan child;
        child.name = "worker " + std::to_string(w);
        child.page_reads = states[w].io.reads();
        child.page_writes = states[w].io.writes();
        child.pages_skipped = states[w].io.skips();
        child.pages_cow = states[w].io.cows();
        child.pages_hot = states[w].io.hots();
        child.wall_ms = states[w].wall_ms;
        child.candidates = static_cast<int64_t>(states[w].processed);
        child.false_drops = static_cast<int64_t>(states[w].false_drops);
        span->children.push_back(std::move(child));
      }
    }
  }
  if (workers <= 1 && trace != nullptr) {
    const IoStats delta = store_->stats() - resolve_before;
    TraceSpan* span = trace->AddStage("resolution");
    span->page_reads = delta.reads();
    span->page_writes = delta.writes();
    span->wall_ms = resolve_timer.ElapsedMs();
    span->candidates = static_cast<int64_t>(out.num_candidates);
    span->false_drops = static_cast<int64_t>(out.num_false_drops);
  }
  out.driver = preds[driver].attribute + " via " + driver_plan.facility +
               " " + driver_plan.strategy;
  out.page_accesses = (storage_->TotalStats() - before).total();

  // Registry bookkeeping (memory-only; page counts unaffected).
  const std::string prefix = "query." + driver_plan.facility;
  metrics_->counter("query.count")->Increment();
  metrics_->counter(prefix + ".count")->Increment();
  metrics_->counter(prefix + ".candidates")->Increment(out.num_candidates);
  metrics_->counter(prefix + ".false_drops")->Increment(out.num_false_drops);
  metrics_->histogram("query.pages")->Record(out.page_accesses);
  metrics_->histogram("query.latency_us")
      ->Record(static_cast<uint64_t>(query_timer.ElapsedMs() * 1000.0));

  if (recorder_ != nullptr) {
    metrics_
        ->histogram("query." +
                    std::string(QueryKindName(preds[driver].kind)) +
                    ".latency_us")
        ->Record(static_cast<uint64_t>(query_timer.ElapsedMs() * 1000.0));
    FlightEvent event;
    event.op = FlightOp::kQuery;
    event.fingerprint = FlightRecorder::Fingerprint(
        static_cast<int>(preds[driver].kind), preds[driver].query);
    event.epoch = current_epoch();
    event.wal_lsn = wal_ != nullptr ? wal_->last_lsn() : 0;
    event.SetDelta(storage_->TotalStats() - before);
    event.SetDetail(out.driver);
    recorder_->Record(event);
  }
  if (trace != nullptr) {
    AttachPredictions(trace, driver_plan, attr_index[driver], preds[driver]);
    if (watchdog_ != nullptr) watchdog_->ObserveTrace(*trace);
  }
  return out;
}

void Database::AttachPredictions(QueryTrace* trace,
                                 const AccessPathChoice& chosen, size_t attr,
                                 const SetPredicate& pred) const {
  // Predictions cover the driver predicate: candidate selection is priced
  // exactly; the resolution prediction assumes the driver alone (the other
  // conjuncts are checked in memory on the already-fetched object).
  const ModelView mv = ModelFor(attr);
  const CostBreakdown bd =
      BreakdownForChoice(mv.db, mv.sig, mv.nix, mv.dt,
                         static_cast<int64_t>(pred.query.size()), pred.kind,
                         chosen);
  if (bd.total() <= 0) return;
  trace->predicted_total = bd.total();
  for (TraceSpan& stage : trace->mutable_stages()) {
    if (stage.name == "candidate selection") {
      stage.predicted_pages = bd.candidate_selection + bd.oid_lookup;
      for (TraceSpan& child : stage.children) {
        child.predicted_pages = child.name == "oid lookup"
                                    ? bd.oid_lookup
                                    : bd.candidate_selection;
      }
    } else if (stage.name == "resolution") {
      stage.predicted_pages = bd.resolution;
    }
  }
}

StatusOr<DatabaseExplainResult> Database::Explain(
    const std::vector<SetPredicate>& predicates) {
  DatabaseExplainResult out;
  AccessPathChoice plan;
  size_t attr = 0;
  SetPredicate pred;
  SIGSET_ASSIGN_OR_RETURN(
      out.result, QueryInternal(predicates, &out.trace, &plan, &attr, &pred));
  // Per-stage model predictions are attached inside QueryInternal (shared
  // with the telemetry-internal traces feeding the drift watchdog).
  out.text = RenderExplain(out.trace);
  out.json = out.trace.ToJson();
  return out;
}

// --- set-containment joins (R ⋈⊆ S) ---------------------------------------

StatusOr<DatabaseJoinResult> Database::JoinInternal(size_t r_attr,
                                                    size_t s_attr,
                                                    const JoinSpec& spec,
                                                    QueryTrace* trace) {
  if (!poison_.ok()) return poison_;

  QueryTrace telemetry_trace;
  if (recorder_ != nullptr && trace == nullptr) trace = &telemetry_trace;

  const ModelView mv_r = ModelFor(r_attr);
  const ModelView mv_s = ModelFor(s_attr);

  JoinSpec resolved = spec;
  if (resolved.strategy == JoinStrategy::kAuto) {
    SIGSET_ASSIGN_OR_RETURN(JoinStrategyChoice best,
                            BestJoinStrategy(mv_r.db, mv_r.dt, mv_s.db,
                                             mv_s.dt, mv_r.sig, mv_s.nix));
    resolved.strategy = best.strategy;
  }

  double probe_cost_pages = 0.0;
  {
    StatusOr<AccessPathChoice> probe =
        BestAccessPath(mv_s.db, mv_s.sig, mv_s.nix, mv_s.dt, mv_r.dt,
                       QueryKind::kSuperset, /*allow_smart=*/true);
    if (probe.ok()) probe_cost_pages = probe->cost_pages;
  }

  // Both sides project their attribute out of the shared object store; a
  // join scans its live objects at most twice (once per side).
  JoinSideAccess r_acc;
  r_acc.num_live = num_objects();
  r_acc.scan =
      [this, r_attr](const std::function<Status(Oid, const ElementSet&)>& fn) {
        return store_->ForEachLive(
            [&fn, r_attr](Oid oid, const std::vector<ElementSet>& attrs) {
              return fn(oid, attrs[r_attr]);
            });
      };

  JoinSideAccess s_acc;
  s_acc.num_live = num_objects();
  s_acc.scan =
      [this, s_attr](const std::function<Status(Oid, const ElementSet&)>& fn) {
        return store_->ForEachLive(
            [&fn, s_attr](Oid oid, const std::vector<ElementSet>& attrs) {
              return fn(oid, attrs[s_attr]);
            });
      };
  s_acc.probe_cost_pages = probe_cost_pages;
  s_acc.probe_superset =
      [this, s_attr](const ElementSet& query) -> StatusOr<QueryResult> {
    // One nested-loop probe = the single-predicate superset selection the
    // conjunction evaluator would run, resolved against the store.
    SetPredicate pred{options_.attributes[s_attr].name, QueryKind::kSuperset,
                      query};
    double cost = 0;
    SIGSET_ASSIGN_OR_RETURN(AccessPathChoice plan,
                            PlanPredicate(s_attr, pred, &cost));
    SIGSET_ASSIGN_OR_RETURN(
        std::vector<Oid> candidates,
        DriverCandidates(s_attr, plan, QueryKind::kSuperset, query));
    QueryResult qr;
    qr.num_candidates = candidates.size();
    for (Oid oid : candidates) {
      StatusOr<MultiSetObject> obj = store_->Get(oid);
      if (!obj.ok()) {
        if (obj.status().code() == StatusCode::kNotFound) {
          ++qr.num_false_drops;  // same tolerance as the resolver
          continue;
        }
        return obj.status();
      }
      if (Satisfies(obj->attrs[s_attr], QueryKind::kSuperset, query)) {
        qr.oids.push_back(oid);
      } else {
        ++qr.num_false_drops;
      }
    }
    return qr;
  };

  const std::function<IoStats()> total_stats = [this]() {
    return storage_->TotalStats();
  };

  const std::string plan_name =
      options_.attributes[r_attr].name + " in-subset " +
      options_.attributes[s_attr].name + " via " +
      JoinStrategyName(resolved.strategy);
  if (trace != nullptr) {
    trace->plan = plan_name;
    trace->kind = "join-subset";
    trace->dq = mv_r.dt;
  }

  TraceTimer timer;
  IoStats before = storage_->TotalStats();
  StatusOr<JoinResult> ran = sigsetdb::ExecuteSetJoin(
      r_acc, s_acc, options_.attributes[r_attr].sig, resolved,
      execution_context(), trace, total_stats);
  if (!ran.ok()) {
    if (recorder_ != nullptr) {
      RecordOpTelemetry(FlightOp::kJoin, "join.latency_us", timer, before,
                        ran.status());
    }
    return ran.status();
  }
  JoinResult result = std::move(ran).value();
  IoStats delta = storage_->TotalStats() - before;

  metrics_->counter("join.count")->Increment();
  metrics_->counter("join.pairs")->Increment(result.pairs.size());
  metrics_->counter("join.candidate_pairs")
      ->Increment(result.num_candidate_pairs);
  metrics_->counter("join.false_drop_pairs")
      ->Increment(result.num_false_drop_pairs);
  metrics_->counter("join.probes")->Increment(result.num_probes);
  metrics_->histogram("join.pages")->Record(delta.total());
  metrics_->histogram("join.latency_us")
      ->Record(static_cast<uint64_t>(timer.ElapsedMs() * 1000.0));

  DatabaseJoinResult out;
  out.plan = plan_name;
  out.page_accesses = delta.total();
  out.join = std::move(result);

  if (recorder_ != nullptr) {
    FlightEvent event;
    event.op = FlightOp::kJoin;
    event.epoch = current_epoch();
    event.wal_lsn = wal_ != nullptr ? wal_->last_lsn() : 0;
    event.SetDelta(delta);
    event.SetDetail(out.plan);
    recorder_->Record(event);
  }
  if (trace != nullptr) {
    // Per-stage predictions from the join cost model (stage names are the
    // executor's).  The drift watchdog stays selection-only.
    StatusOr<JoinCostBreakdown> bd = BreakdownForJoinStrategy(
        mv_r.db, mv_r.dt, mv_s.db, mv_s.dt, mv_r.sig, mv_s.nix,
        resolved.strategy);
    if (bd.ok() && bd->total() > 0) {
      trace->predicted_total = bd->total();
      for (TraceSpan& stage : trace->mutable_stages()) {
        if (stage.name == "r scan") {
          stage.predicted_pages = bd->r_scan;
        } else if (stage.name == "s scan") {
          stage.predicted_pages = bd->s_scan;
        } else if (stage.name == "probe loop") {
          stage.predicted_pages = bd->probe;
        }
      }
    }
  }
  return out;
}

StatusOr<DatabaseJoinResult> Database::ExecuteSetJoin(
    const std::string& r_attribute, const std::string& s_attribute,
    const JoinSpec& spec) {
  SIGSET_ASSIGN_OR_RETURN(size_t r_attr, AttributeIndex(r_attribute));
  SIGSET_ASSIGN_OR_RETURN(size_t s_attr, AttributeIndex(s_attribute));
  return JoinInternal(r_attr, s_attr, spec, nullptr);
}

StatusOr<DatabaseJoinExplainResult> Database::ExplainSetJoin(
    const std::string& r_attribute, const std::string& s_attribute,
    const JoinSpec& spec) {
  SIGSET_ASSIGN_OR_RETURN(size_t r_attr, AttributeIndex(r_attribute));
  SIGSET_ASSIGN_OR_RETURN(size_t s_attr, AttributeIndex(s_attribute));
  DatabaseJoinExplainResult out;
  SIGSET_ASSIGN_OR_RETURN(out.result,
                          JoinInternal(r_attr, s_attr, spec, &out.trace));
  out.text = RenderExplain(out.trace);
  out.json = out.trace.ToJson();
  return out;
}

}  // namespace sigsetdb
