// SetIndex: the library's top-level facade — one indexed set attribute,
// managed end to end.
//
// This is the component a downstream OODB would embed: it owns the object
// store and any combination of the three access facilities over one set
// attribute, keeps them consistent across inserts/deletes, routes queries
// to the cheapest facility using the paper's cost model (including the §5
// smart strategies), and reports per-query page-access statistics.
//
//   StorageManager storage;
//   auto index = SetIndex::Create(&storage, "hobbies", options);
//   Oid oid = index->Insert({tag1, tag2, ...}).value();
//   auto result = index->Query(QueryKind::kSubset, allowlist);
//   // result->plan tells you which facility/strategy ran.

#ifndef SIGSET_DB_SET_INDEX_H_
#define SIGSET_DB_SET_INDEX_H_

#include <memory>
#include <string>
#include <vector>

#include "db/manifest.h"
#include "db/wal.h"
#include "db/write_batch.h"
#include "model/params.h"
#include "nix/nested_index.h"
#include "obj/object_store.h"
#include "obs/drift_watchdog.h"
#include "obs/flight_recorder.h"
#include "obs/metrics.h"
#include "query/advisor.h"
#include "query/executor.h"
#include "query/join.h"
#include "sig/bssf.h"
#include "sig/ssf.h"
#include "storage/storage_manager.h"
#include "util/hyperloglog.h"

namespace sigsetdb {

class EpochManager;
class Snapshot;
class VersionedPageFile;

// How Query() picks its access path.
enum class PlanMode {
  // Cost-based: the advisor ranks all maintained facilities (with smart
  // strategies) using live statistics and runs the cheapest.
  kAuto,
  // Force a specific facility with its plain strategy.
  kForceSsf,
  kForceBssf,
  kForceNix,
};

// A query answer annotated with the plan that produced it.
struct SetIndexResult {
  QueryResult result;
  std::string plan;          // e.g. "bssf smart(s=91)"
  uint64_t page_accesses = 0;  // measured for this query
};

// A query answer plus its full per-stage trace, rendered two ways.  The
// trace carries, for every executor stage, the measured page deltas AND the
// cost model's predicted pages for exactly that stage (attached from
// model/cost_breakdown.h), so EXPLAIN doubles as a live model-vs-measured
// experiment.
struct SetIndexExplainResult {
  SetIndexResult result;
  QueryTrace trace;
  std::string text;  // plan-style tree (table_printer)
  std::string json;  // trace.ToJson()
};

// A set-containment join answer annotated with the executed strategy.
struct SetIndexJoinResult {
  JoinResult join;
  std::string plan;            // e.g. "sig-hash", "nested-loop"
  uint64_t page_accesses = 0;  // measured across both sides
};

// Join answer plus per-stage trace with model predictions attached.
struct SetIndexJoinExplainResult {
  SetIndexJoinResult result;
  QueryTrace trace;
  std::string text;
  std::string json;
};

// End-to-end manager of one indexed set attribute.
class SetIndex {
 public:
  struct Options {
    // Which facilities to maintain.  At least one must be enabled; kAuto
    // planning works best with bssf + nix (the paper's verdict: BSSF for
    // most shapes, NIX for Dq=1 supersets).
    bool maintain_ssf = false;
    bool maintain_bssf = true;
    bool maintain_nix = true;
    SignatureConfig sig{250, 2};
    BssfInsertMode bssf_mode = BssfInsertMode::kSparse;
    uint32_t nix_fanout = kPaperFanout;
    // Capacity of the bit-sliced store (max objects).
    uint64_t capacity = 1 << 20;
    // Domain-cardinality estimate used by the cost model (the paper's V).
    // <= 0 (the default) means "estimate it live": every inserted element
    // feeds a HyperLogLog sketch and the advisor uses its estimate.
    int64_t domain_estimate = 0;
    // Worker threads for query execution.  1 (the default) runs every query
    // serially; > 1 spawns a thread pool used to partition BSSF slice scans
    // and false-drop resolution.  Results and logical page-access counts
    // are identical at any setting.
    size_t num_threads = 1;
    // Registry receiving per-query counters and latency histograms (not
    // owned; may be shared across indexes).  nullptr = the index owns a
    // private registry, reachable via metrics().
    MetricsRegistry* metrics = nullptr;
    // Feed observed workload statistics (false-drop rate, buffer hit rate)
    // from the registry back into kAuto planning.  Off by default: the
    // pure-model plans keep page-access counts reproducible run to run,
    // which the differential tests and paper benches rely on.
    bool advisor_feedback = false;
    // Let SSF/BSSF scans consult the page skip index (summaries are always
    // maintained either way).  Off by default: skipping reduces page reads,
    // which would change the paper-pinned access counts; when on, skipped
    // pages are reported via IoStats::skips()/trace pages_skipped and query
    // results are identical.
    bool enable_skip_index = false;
    // Let BSSF slice scans consult the pinned hot-slice tier (sig/
    // hot_tier.h): the hottest slice pages — by access counter — are kept
    // as cache-resident copies and served without touching the buffer
    // pool.  Off by default: a hot hit moves a read from page_reads to
    // pages_hot, which would change the paper-pinned access counts; when
    // on, reads + hots equals the off-path reads and query results are
    // identical.
    bool enable_hot_tier = false;
    // Pin budget of the hot tier, in slice pages (64 pages = 256 KiB).
    // Only consulted when enable_hot_tier is set.
    size_t hot_tier_capacity = 64;
    // Write-ahead logging: every Insert/Delete/ApplyBatch first commits a
    // logical record to "<name>.wal" (one fsync, group-committed) and is
    // acknowledged only once the record is durable; Open() replays records
    // past the last checkpoint, so no acknowledged write is ever lost.  Off
    // by default: logging adds page writes, which would perturb the
    // paper-pinned access counts (durability then remains
    // checkpoint-granular, the original behaviour).
    bool enable_wal = false;
    // How long a group-commit leader holds the fsync open for concurrent
    // writers to join (microseconds).  0 syncs immediately — concurrent
    // commits still coalesce opportunistically.
    uint32_t group_commit_window_us = 0;
    // Epoch-based snapshot reads: every data file is wrapped in a
    // copy-on-write VersionedPageFile, each successful mutation publishes a
    // new epoch, and GetSnapshot() returns a pinned read-only view that
    // queries without the index lock (see db/snapshot.h).  Off by default:
    // the CoW layer keeps page versions in memory and charges cow_copies,
    // and keeping it off leaves the paper-pinned page counts bit-identical
    // to the unwrapped files.
    bool enable_snapshots = false;
    // Production telemetry: per-entry-point latency histograms, a lock-free
    // flight recorder of recent operations (dumped as a postmortem on the
    // first fatal status), and a cost-model drift watchdog fed from query
    // traces.  Off by default: with telemetry on, queries run with an
    // internal trace, which never changes page counts (traces only snapshot
    // IoStats) but does add clock reads per operation.
    bool enable_telemetry = false;
    // Flight-recorder ring capacity (events; rounded up to a power of two).
    size_t flight_recorder_capacity = 512;
    // Drift-watchdog bounds (see obs/drift_watchdog.h).
    DriftOptions drift;
    // When non-empty and a fatal status (I/O error, corruption, internal)
    // surfaces, the flight recorder writes "<dir>/<name>.postmortem.txt"
    // and ".json" there via plain stdio (never the page layer).
    std::string postmortem_dir;
  };

  // Creates the index inside `storage` (not owned) under the file-name
  // prefix `name` ("<name>.objects", "<name>.ssf.sig", ...).
  static StatusOr<std::unique_ptr<SetIndex>> Create(StorageManager* storage,
                                                    const std::string& name,
                                                    const Options& options);

  // Reopens an index previously checkpointed in `storage` (typically a
  // disk-backed StorageManager pointed at the same directory).  `options`
  // must match the configuration the index was created with.
  static StatusOr<std::unique_ptr<SetIndex>> Open(StorageManager* storage,
                                                  const std::string& name,
                                                  const Options& options);

  // Persists facility metadata (counts, B-tree root/shape) into the
  // "<name>.manifest" file so that Open() can reconstruct the index.
  // Durability is checkpoint-granular: inserts after the last checkpoint
  // are not recovered.
  Status Checkpoint();

  // Stores `set_value` as a new object and indexes it in every maintained
  // facility.  Returns the new OID.
  StatusOr<Oid> Insert(const ElementSet& set_value);

  // De-indexes the object everywhere, then deletes it from the store.  The
  // store delete comes LAST so a crash mid-delete can only leave a fully
  // indexed (still visible) or partially de-indexed object — never a
  // dangling index entry pointing at a missing object.
  Status Delete(Oid oid);

  // Applies a group of inserts and deletes facility-by-facility: store
  // inserts first (assigning OIDs), then one ApplyBatch per facility
  // (removes before inserts, so freed slots are reused within the batch),
  // then the store deletes last (same crash ordering as Delete).  Returns
  // the OIDs of the batch's inserts, in order.  Deleting an OID inserted by
  // the same batch is not supported.
  StatusOr<std::vector<Oid>> ApplyBatch(const WriteBatch& batch);

  // Rewrites the SSF/BSSF signature + OID files densely (dropping
  // tombstoned slots) into generation-suffixed files and checkpoints.  The
  // manifest's generation key flips atomically with the checkpoint: a crash
  // anywhere before that leaves the old generation (and the old files)
  // authoritative, so compaction is crash-safe and retryable.  NIX needs no
  // compaction (drained pages are recycled via its free list).
  Status Compact();

  // Fetches the stored set value.
  StatusOr<StoredObject> Get(Oid oid) const { return store_->Get(oid); }

  // Runs a set query.  `mode` selects planning behaviour (default: cost
  // based).  The result reports the chosen plan and measured page accesses.
  StatusOr<SetIndexResult> Query(QueryKind kind, const ElementSet& query,
                                 PlanMode mode = PlanMode::kAuto);

  // EXPLAIN ANALYZE: runs the query exactly as Query() would — same plan,
  // same page accesses — and additionally returns the per-stage trace with
  // the model's per-stage predictions attached, rendered as a plan tree and
  // as JSON.
  StatusOr<SetIndexExplainResult> Explain(QueryKind kind,
                                          const ElementSet& query,
                                          PlanMode mode = PlanMode::kAuto);

  // Set-containment join R ⋈⊆ S with this index as R and `s_side` as S
  // (pass `this` for a self-join): every pair (r, s) with r's set a subset
  // of s's set.  JoinSpec::strategy kAuto lets the join cost model
  // (model/cost_join.h) pick among nested-loop-of-selections,
  // signature-hash partitioning, and the adaptive per-partition method.
  StatusOr<SetIndexJoinResult> ExecuteSetJoin(SetIndex* s_side,
                                              const JoinSpec& spec = {});

  // EXPLAIN ANALYZE for the join: same execution, plus the per-stage trace
  // with the join cost model's predictions attached.
  StatusOr<SetIndexJoinExplainResult> ExplainSetJoin(SetIndex* s_side,
                                                     const JoinSpec& spec = {});

  // The registry this index reports into (configured or owned).
  MetricsRegistry* metrics() const { return metrics_; }

  // Telemetry components (nullptr unless Options::enable_telemetry).
  FlightRecorder* flight_recorder() { return recorder_.get(); }
  DriftWatchdog* drift_watchdog() { return watchdog_.get(); }
  // JSON postmortem captured when the first fatal status surfaced (empty
  // until then; also written to Options::postmortem_dir when set).
  const std::string& last_postmortem_json() const {
    return last_postmortem_json_;
  }

  // Live statistics feeding the advisor.
  uint64_t num_objects() const { return store_->num_objects(); }

  // Compaction generation of the signature/OID files (0 until the first
  // Compact() checkpoint).
  uint64_t generation() const { return generation_; }

  // The V the advisor currently uses: the configured estimate, or the live
  // HyperLogLog estimate (~1.6 % relative error) when auto.
  int64_t DomainEstimate() const;
  double mean_cardinality() const {
    return num_objects() == 0
               ? 0.0
               : static_cast<double>(total_elements_) /
                     static_cast<double>(num_objects());
  }

  // Storage cost (pages) of each maintained facility; 0 when absent.
  uint64_t SsfPages() const { return ssf_ ? ssf_->StoragePages() : 0; }
  uint64_t BssfPages() const { return bssf_ ? bssf_->StoragePages() : 0; }
  uint64_t NixPages() const { return nix_ ? nix_->StoragePages() : 0; }

  SequentialSignatureFile* ssf() { return ssf_.get(); }
  BitSlicedSignatureFile* bssf() { return bssf_.get(); }
  NestedIndex* nix() { return nix_.get(); }
  const Options& options() const { return options_; }

  // The execution context queries run under (pool == nullptr when
  // num_threads <= 1).  Exposed for tests and benchmarks.
  const ParallelExecutionContext* execution_context() const {
    return pool_ != nullptr ? &ctx_ : nullptr;
  }

  // The write-ahead log (nullptr unless options.enable_wal).
  WriteAheadLog* wal() { return wal_.get(); }

  // --- snapshot reads (Options::enable_snapshots) ------------------------

  // Pins the currently published epoch and materializes a read-only view.
  // The snapshot queries WITHOUT this index's lock and must not outlive the
  // index; one Snapshot instance serves one reader thread.
  StatusOr<std::unique_ptr<Snapshot>> GetSnapshot();

  // The last published epoch (0 when snapshots are disabled).
  uint64_t current_epoch() const;

  // The epoch manager (nullptr unless enable_snapshots); exposed for tests.
  EpochManager* epochs() { return epochs_.get(); }

  ~SetIndex();

 private:
  SetIndex(StorageManager* storage, Options options);

  // Untimed bodies of the public entry points.  The public methods are thin
  // telemetry shims: with telemetry off they forward directly (no clock
  // reads, no extra work); with it on they time the call, record a latency
  // histogram sample, and log a flight-recorder event.
  Status CheckpointImpl();
  StatusOr<Oid> InsertImpl(const ElementSet& set_value);
  Status DeleteImpl(Oid oid);
  StatusOr<std::vector<Oid>> ApplyBatchImpl(const WriteBatch& batch);
  Status CompactImpl();

  // Records one entry-point observation: latency into `metric`, plus a
  // flight event carrying the status, page-delta since `before`, current
  // epoch and WAL LSN.  Fatal statuses additionally trigger NoteFatal.
  void RecordOpTelemetry(FlightOp op, const char* metric,
                         const TraceTimer& timer, const IoStats& before,
                         const Status& status, uint64_t fingerprint = 0,
                         const char* detail = nullptr);
  // First-fatal-status hook: captures the postmortem (and writes it to
  // Options::postmortem_dir when configured).  Idempotent.
  void NoteFatal(const Status& cause);

  // Attaches the cost model's per-stage predictions to a finished trace
  // (shared by Explain and telemetry-internal traces).
  void AttachPredictions(QueryTrace* trace, const AccessPathChoice& chosen,
                         QueryKind kind) const;

  // Shared body of ExecuteSetJoin/ExplainSetJoin: resolves kAuto against
  // the join cost model, builds both sides' access callbacks, runs the join
  // executor, records metrics and a flight event.
  StatusOr<SetIndexJoinResult> JoinInternal(SetIndex* s_side,
                                            const JoinSpec& spec,
                                            QueryTrace* trace);

  // Per-stage join predictions (r scan / s scan / probe loop), keyed by the
  // executor's stage names.
  void AttachJoinPredictions(QueryTrace* trace, SetIndex* s_side,
                             JoinStrategy strategy) const;

  // The cost-model view of the current database state.
  DatabaseParams LiveDbParams() const;

  // WAL plumbing.  Apply* run the actual mutation after its record is
  // durable; a failure there calls AbortAndPoison, which logs an Abort
  // record and fails every later mutation/query until the index is
  // reopened (recovery then rolls the aborted record back).
  Status ApplyInsert(const ElementSet& normalized, Oid expected_oid);
  Status ApplyDelete(Oid oid, const StoredObject& victim);
  Status ApplyBatchBody(const WriteBatch& batch,
                        const std::vector<StoredObject>& victims,
                        const std::vector<ElementSet>& normalized,
                        const std::vector<Oid>& predicted,
                        std::vector<Oid>* out_oids);
  Status AbortAndPoison(uint64_t lsn, const Status& cause);
  // Recovery: redo `records` against the object store, then rebuild every
  // facility and counter from the recovered store.
  Status ReplayLog(const std::vector<LogRecord>& records);
  Status RebuildFacilitiesFromStore();

  // Picks (facility, strategy) for kAuto mode.
  StatusOr<AccessPathChoice> Plan(QueryKind kind, int64_t dq) const;

  StatusOr<QueryResult> RunPlan(const AccessPathChoice& plan, QueryKind kind,
                                const ElementSet& query,
                                QueryTrace* trace = nullptr);

  // Shared body of Query/Explain: plans, runs, records metrics; fills
  // `trace` (optional) and `chosen` (optional) with the executed plan.
  StatusOr<SetIndexResult> QueryInternal(QueryKind kind,
                                         const ElementSet& query,
                                         PlanMode mode, QueryTrace* trace,
                                         AccessPathChoice* chosen);

  // Opens `file_name` from storage and, when snapshots are enabled, wraps
  // it in a CoW VersionedPageFile (ownership kept in versioned_all_, a
  // reclaimer registered).  `*slot` receives the wrapper or nullptr.
  StatusOr<PageFile*> OpenVersioned(const std::string& file_name,
                                    VersionedPageFile** slot);

  // Writes dirty CoW head versions of the current-generation wrappers
  // through to their base files (Checkpoint's durability step).
  Status FlushCurrentVersions();

  // Publishes the current committed state as a new epoch (no-op when
  // snapshots are disabled).  Called after every successful mutation.
  void PublishSnapshot();

  StorageManager* storage_;
  Options options_;
  std::string name_;
  uint64_t generation_ = 0;
  std::unique_ptr<ThreadPool> pool_;
  ParallelExecutionContext ctx_;
  PageFile* manifest_file_ = nullptr;
  PageFile* sketch_file_ = nullptr;
  // Snapshot machinery (all null/empty unless enable_snapshots).  The
  // wrapper pool owns every CoW wrapper ever created — including superseded
  // generations, which pinned snapshots may still read — so it must outlive
  // the facilities below (declared first = destroyed last).  ~SetIndex
  // shuts the epoch manager down before anything else dies.
  std::unique_ptr<EpochManager> epochs_;
  std::vector<std::unique_ptr<VersionedPageFile>> versioned_all_;
  VersionedPageFile* v_objects_ = nullptr;
  VersionedPageFile* v_ssf_sig_ = nullptr;
  VersionedPageFile* v_ssf_oid_ = nullptr;
  VersionedPageFile* v_bssf_slices_ = nullptr;
  VersionedPageFile* v_bssf_oid_ = nullptr;
  VersionedPageFile* v_nix_ = nullptr;
  std::unique_ptr<ObjectStore> store_;
  std::unique_ptr<WriteAheadLog> wal_;
  // Set by AbortAndPoison; every mutation and query returns it once set.
  Status poison_ = Status::OK();
  std::unique_ptr<SequentialSignatureFile> ssf_;
  std::unique_ptr<BitSlicedSignatureFile> bssf_;
  std::unique_ptr<NestedIndex> nix_;
  uint64_t total_elements_ = 0;
  HyperLogLog domain_sketch_{12};
  std::unique_ptr<MetricsRegistry> owned_metrics_;
  MetricsRegistry* metrics_ = nullptr;
  // Telemetry (all null/empty unless enable_telemetry).
  std::unique_ptr<FlightRecorder> recorder_;
  std::unique_ptr<DriftWatchdog> watchdog_;
  bool postmortem_written_ = false;
  std::string last_postmortem_json_;
};

}  // namespace sigsetdb

#endif  // SIGSET_DB_SET_INDEX_H_
