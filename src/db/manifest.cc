#include "db/manifest.h"

#include <cstring>

#include "util/failpoint.h"

namespace sigsetdb {

namespace {
constexpr uint32_t kMagic = 0x53494753;  // "SIGS"
constexpr uint32_t kVersion = 1;
}  // namespace

Status Manifest::Write(PageFile* file, const Values& values) {
  SIGSET_FAILPOINT("manifest.write");
  Page page;
  page.WriteAt<uint32_t>(0, kMagic);
  page.WriteAt<uint32_t>(4, kVersion);
  page.WriteAt<uint32_t>(8, static_cast<uint32_t>(values.size()));
  size_t off = 12;
  for (const auto& [key, value] : values) {
    size_t need = 2 + key.size() + 8;
    if (off + need > kPageSize) {
      return Status::OutOfRange("manifest exceeds one page");
    }
    page.WriteAt<uint16_t>(off, static_cast<uint16_t>(key.size()));
    std::memcpy(page.data() + off + 2, key.data(), key.size());
    page.WriteAt<uint64_t>(off + 2 + key.size(), value);
    off += need;
  }
  if (file->num_pages() == 0) {
    SIGSET_ASSIGN_OR_RETURN(PageId id, file->Allocate());
    if (id != 0) return Status::Internal("manifest page must be page 0");
  }
  return file->Write(0, page);
}

StatusOr<Manifest::Values> Manifest::Read(PageFile* file) {
  SIGSET_FAILPOINT("manifest.read");
  if (file->num_pages() == 0) {
    return Status::NotFound("no manifest page");
  }
  Page page;
  SIGSET_RETURN_IF_ERROR(file->Read(0, &page));
  if (page.ReadAt<uint32_t>(0) != kMagic) {
    return Status::Corruption("bad manifest magic");
  }
  if (page.ReadAt<uint32_t>(4) != kVersion) {
    return Status::Corruption("unsupported manifest version");
  }
  uint32_t count = page.ReadAt<uint32_t>(8);
  Values values;
  size_t off = 12;
  for (uint32_t i = 0; i < count; ++i) {
    if (off + 2 > kPageSize) return Status::Corruption("manifest truncated");
    uint16_t key_len = page.ReadAt<uint16_t>(off);
    if (off + 2 + key_len + 8 > kPageSize) {
      return Status::Corruption("manifest truncated");
    }
    std::string key(reinterpret_cast<const char*>(page.data() + off + 2),
                    key_len);
    uint64_t value = page.ReadAt<uint64_t>(off + 2 + key_len);
    values[key] = value;
    off += 2 + key_len + 8;
  }
  return values;
}

StatusOr<uint64_t> Manifest::Get(const Values& values,
                                 const std::string& key) {
  auto it = values.find(key);
  if (it == values.end()) {
    return Status::NotFound("manifest key missing: " + key);
  }
  return it->second;
}

}  // namespace sigsetdb
