// SynchronizedSetIndex: a thread-safe facade over SetIndex.
//
// The storage layer counts page accesses on every read, so even logically
// read-only queries mutate state; fine-grained latching would have to reach
// into every facility.  This wrapper takes the honest coarse-grained route:
// one mutex serializes all operations, giving linearizable semantics for
// concurrent callers.  For the paper's workloads (I/O-cost-bound, single
// user) this is the right trade-off; a latch-per-page design is future
// work and would change none of the reproduced numbers.

#ifndef SIGSET_DB_SYNCHRONIZED_SET_INDEX_H_
#define SIGSET_DB_SYNCHRONIZED_SET_INDEX_H_

#include <memory>
#include <mutex>

#include "db/set_index.h"

namespace sigsetdb {

// Thread-safe wrapper owning a SetIndex.
class SynchronizedSetIndex {
 public:
  // Takes ownership of `index`.
  explicit SynchronizedSetIndex(std::unique_ptr<SetIndex> index)
      : index_(std::move(index)) {}

  // Creates the underlying index directly (storage must outlive this).
  static StatusOr<std::unique_ptr<SynchronizedSetIndex>> Create(
      StorageManager* storage, const std::string& name,
      const SetIndex::Options& options) {
    SIGSET_ASSIGN_OR_RETURN(std::unique_ptr<SetIndex> index,
                            SetIndex::Create(storage, name, options));
    return std::make_unique<SynchronizedSetIndex>(std::move(index));
  }

  StatusOr<Oid> Insert(const ElementSet& set_value) {
    std::lock_guard<std::mutex> lock(mu_);
    return index_->Insert(set_value);
  }

  Status Delete(Oid oid) {
    std::lock_guard<std::mutex> lock(mu_);
    return index_->Delete(oid);
  }

  // The whole batch applies atomically with respect to concurrent callers
  // (one mutex); queries see either none or all of its effects.
  StatusOr<std::vector<Oid>> ApplyBatch(const WriteBatch& batch) {
    std::lock_guard<std::mutex> lock(mu_);
    return index_->ApplyBatch(batch);
  }

  Status Compact() {
    std::lock_guard<std::mutex> lock(mu_);
    return index_->Compact();
  }

  StatusOr<StoredObject> Get(Oid oid) const {
    std::lock_guard<std::mutex> lock(mu_);
    return index_->Get(oid);
  }

  StatusOr<SetIndexResult> Query(QueryKind kind, const ElementSet& query,
                                 PlanMode mode = PlanMode::kAuto) {
    std::lock_guard<std::mutex> lock(mu_);
    return index_->Query(kind, query, mode);
  }

  Status Checkpoint() {
    std::lock_guard<std::mutex> lock(mu_);
    return index_->Checkpoint();
  }

  uint64_t num_objects() const {
    std::lock_guard<std::mutex> lock(mu_);
    return index_->num_objects();
  }

 private:
  mutable std::mutex mu_;
  std::unique_ptr<SetIndex> index_;
};

}  // namespace sigsetdb

#endif  // SIGSET_DB_SYNCHRONIZED_SET_INDEX_H_
