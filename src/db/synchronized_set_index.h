// SynchronizedSetIndex: a thread-safe facade over SetIndex.
//
// Writes take the lock exclusively; read-only entry points (Get/Query/
// num_objects) take it shared, so concurrent readers proceed in parallel
// and only writer/reader pairs serialize.  The lock is writer-preferring
// (util/rwlock.h): a waiting writer gates new readers, so a polling reader
// loop cannot starve writers (std::shared_mutex on glibc can, and does
// livelock on a single core).  Sharing is sound because every
// state a read path touches is either immutable under the shared lock or
// internally synchronized: IoStats counters are atomic, the MetricsRegistry
// is thread-safe, the buffer pool shards its own mutexes, and the facility
// query paths (Candidates/ScanMatchingSlots/Lookup) never mutate members.
//
// For scans that must not block behind writers at all, enable
// SetIndex::Options::enable_snapshots and use GetSnapshot(): the returned
// view pins an epoch and queries lock-free against copy-on-write page
// versions (see db/snapshot.h), concurrent with any churn.
//
// Page-access accounting is unchanged by either mechanism: with snapshots
// off the files are unwrapped and counts stay bit-identical to the
// single-threaded index.

#ifndef SIGSET_DB_SYNCHRONIZED_SET_INDEX_H_
#define SIGSET_DB_SYNCHRONIZED_SET_INDEX_H_

#include <memory>
#include <shared_mutex>  // std::shared_lock

#include "db/set_index.h"
#include "db/snapshot.h"  // complete Snapshot for the inline GetSnapshot()
#include "util/rwlock.h"

namespace sigsetdb {

// Thread-safe wrapper owning a SetIndex.
class SynchronizedSetIndex {
 public:
  // Takes ownership of `index`.
  explicit SynchronizedSetIndex(std::unique_ptr<SetIndex> index)
      : index_(std::move(index)) {}

  // Creates the underlying index directly (storage must outlive this).
  static StatusOr<std::unique_ptr<SynchronizedSetIndex>> Create(
      StorageManager* storage, const std::string& name,
      const SetIndex::Options& options) {
    SIGSET_ASSIGN_OR_RETURN(std::unique_ptr<SetIndex> index,
                            SetIndex::Create(storage, name, options));
    return std::make_unique<SynchronizedSetIndex>(std::move(index));
  }

  StatusOr<Oid> Insert(const ElementSet& set_value) {
    std::unique_lock<RwLock> lock(mu_);
    return index_->Insert(set_value);
  }

  Status Delete(Oid oid) {
    std::unique_lock<RwLock> lock(mu_);
    return index_->Delete(oid);
  }

  // The whole batch applies atomically with respect to concurrent callers
  // (one writer at a time); queries see either none or all of its effects.
  StatusOr<std::vector<Oid>> ApplyBatch(const WriteBatch& batch) {
    std::unique_lock<RwLock> lock(mu_);
    return index_->ApplyBatch(batch);
  }

  Status Compact() {
    std::unique_lock<RwLock> lock(mu_);
    return index_->Compact();
  }

  StatusOr<StoredObject> Get(Oid oid) const {
    std::shared_lock<RwLock> lock(mu_);
    return index_->Get(oid);
  }

  StatusOr<SetIndexResult> Query(QueryKind kind, const ElementSet& query,
                                 PlanMode mode = PlanMode::kAuto) {
    std::shared_lock<RwLock> lock(mu_);
    return index_->Query(kind, query, mode);
  }

  Status Checkpoint() {
    std::unique_lock<RwLock> lock(mu_);
    return index_->Checkpoint();
  }

  uint64_t num_objects() const {
    std::shared_lock<RwLock> lock(mu_);
    return index_->num_objects();
  }

  // Pins the published epoch and returns a lock-free read-only view
  // (requires Options::enable_snapshots).  Only the pin itself briefly
  // holds the shared lock; queries on the snapshot take no lock at all.
  StatusOr<std::unique_ptr<Snapshot>> GetSnapshot() {
    std::shared_lock<RwLock> lock(mu_);
    return index_->GetSnapshot();
  }

  // The published epoch (0 when snapshots are disabled).
  uint64_t current_epoch() const {
    std::shared_lock<RwLock> lock(mu_);
    return index_->current_epoch();
  }

  // The wrapped index, for configuration inspection only — calling methods
  // on it bypasses the lock.
  SetIndex* index() { return index_.get(); }

 private:
  mutable RwLock mu_;
  std::unique_ptr<SetIndex> index_;
};

}  // namespace sigsetdb

#endif  // SIGSET_DB_SYNCHRONIZED_SET_INDEX_H_
