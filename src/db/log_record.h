// Logical write-ahead-log records.
//
// The WAL (wal.h) is redo-only and logical: each record describes one
// *mutation of the object store* — a singleton insert, a singleton delete, a
// WriteBatch, or a compaction commit — in enough detail that recovery can
// re-apply it at the exact same physical location without consulting any
// facility.  Two design points follow from the crash-test matrix's
// "no acknowledged write lost, no phantom write invented" contract:
//
//   * Inserts carry the *predicted* OID (ObjectStore::PeekNextOid), computed
//     before the store is touched.  Replay re-applies at that (page, slot),
//     so OIDs — which are physical — are stable across a crash, and a record
//     whose apply never started is indistinguishable from one fully applied
//     then replayed (replay is idempotent).
//
//   * Deletes carry the victim's full PREIMAGE (its value sets).  If the
//     apply of a committed record fails midway (a transient I/O fault, not a
//     crash), the engine appends an Abort record referencing it and poisons
//     the index; at recovery the aborted delete's objects are *restored*
//     from the preimage — the slotted page keeps a tombstone's bytes in the
//     heap, so resurrection is a directory-entry rewrite.
//
// Payloads are little-endian byte strings framed (length, CRC32C, LSN,
// double stamp) by the WAL; this file only defines the logical content.

#ifndef SIGSET_DB_LOG_RECORD_H_
#define SIGSET_DB_LOG_RECORD_H_

#include <cstdint>
#include <vector>

#include "obj/object.h"
#include "util/status.h"

namespace sigsetdb {

enum class LogRecordType : uint32_t {
  kInsert = 1,         // one object appended to the store
  kDelete = 2,         // one object tombstoned (preimage retained)
  kBatch = 3,          // a WriteBatch: deletes then inserts, atomic
  kCompactCommit = 4,  // generation G+1 files are complete and swapped in
  kAbort = 5,          // the record at ref_lsn failed to apply; index poisoned
};

// One object touched by a record: its physical OID plus its value sets (one
// ElementSet per attribute; SetIndex has exactly one).  For inserts the sets
// are the new value; for deletes they are the preimage.
struct LogEntry {
  Oid oid;
  std::vector<ElementSet> sets;
};

struct LogRecord {
  LogRecordType type = LogRecordType::kInsert;
  uint64_t lsn = 0;  // assigned by WriteAheadLog::Append

  std::vector<LogEntry> inserts;  // kInsert (1 entry), kBatch
  std::vector<LogEntry> deletes;  // kDelete (1 entry), kBatch; sets = preimage
  uint64_t generation = 0;        // kCompactCommit: the new live generation
  uint64_t ref_lsn = 0;           // kAbort: LSN of the record that failed

  static LogRecord SingleInsert(Oid oid, std::vector<ElementSet> sets);
  static LogRecord SingleDelete(Oid oid, std::vector<ElementSet> preimage);
  static LogRecord Batch(std::vector<LogEntry> deletes,
                         std::vector<LogEntry> inserts);
  static LogRecord CompactCommit(uint64_t generation);
  static LogRecord Abort(uint64_t ref_lsn);

  // Little-endian payload (framing is the WAL's job).
  std::vector<uint8_t> SerializePayload() const;

  // Inverse of SerializePayload.  kCorruption on any structural violation —
  // a short buffer, trailing bytes, an unknown type.  Leaves `lsn` at 0;
  // the WAL's frame scanner fills it in.
  static StatusOr<LogRecord> ParsePayload(uint32_t type, const uint8_t* data,
                                          size_t n);
};

}  // namespace sigsetdb

#endif  // SIGSET_DB_LOG_RECORD_H_
