// WriteAheadLog: redo-only logical log with group commit.
//
// The durability contract the crash-test matrix proves: a write is
// ACKNOWLEDGED only after its log record is on stable storage (Commit
// returns OK after an fsync covering it), and recovery re-applies every
// acknowledged record and nothing else.  The log is the *only* structure
// that must survive a crash — facilities (SSF/BSSF/NIX) are rebuilt from
// the recovered object store at open.
//
// On-"disk" layout (one PageFile, typically <base>.wal):
//
//   page 0   header    magic "SWAL" | version | start_lsn | crc32c
//   page 1+  records   back-to-back frames, byte-addressed from page 1:
//
//     ┌──────────┬─────────────┬─────────┬─────────────┬────────────┐
//     │ magic u32│ payload_len │ lsn u64 │ payload_crc │ head_stamp │
//     ├──────────┴─────────────┴─────────┴─────────────┴────────────┤
//     │ payload (payload_len bytes, see log_record.h)               │
//     ├─────────────────────────────────────────────────────────────┤
//     │ tail_stamp u32                                              │
//     └─────────────────────────────────────────────────────────────┘
//
// head_stamp = StampFor(lsn) and tail_stamp = ~head_stamp: the "double
// signature".  A torn write that persists the head but not the tail (or
// vice versa) cannot produce matching stamps, and the CRC covers the
// payload between them.  Recovery scans frames in order, requiring each
// frame's lsn to be exactly previous+1; the scan stops at the first frame
// that fails magic, length-sanity, lsn-sequence, stamp, CRC, or parse —
// everything after is a torn tail and is logically truncated.  Strict lsn
// sequencing is what defeats *stale* frames: Truncate() only rewrites the
// header (start_lsn jumps forward), so old record bytes linger in the body,
// but every stale frame carries an lsn <= the new start_lsn and can never
// match the expected sequence.
//
// Group commit: Append() frames the record into an in-memory pending
// buffer under the mutex and returns its LSN — no I/O.  Commit(lsn) blocks
// until lsn is durable: the first waiter becomes the *leader*, optionally
// waits group_commit_window microseconds for more appends to arrive, then
// writes every pending page and issues ONE Sync that acknowledges every
// record framed before the snapshot; the followers just wait on the
// condition variable.  wal.fsyncs counts syncs, wal.group_size records how
// many commits each sync retired — the bench target is group size 64
// amortizing to >= 3x singleton-fsync throughput.
//
// A failed log write or sync poisons the log (every later Append/Commit
// returns the saved error): after a failed fsync there is no way to know
// what subset of the group is durable, which is exactly a crash.

#ifndef SIGSET_DB_WAL_H_
#define SIGSET_DB_WAL_H_

#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "db/log_record.h"
#include "obs/metrics.h"
#include "storage/page_file.h"
#include "util/status.h"

namespace sigsetdb {

class WriteAheadLog {
 public:
  struct OpenResult {
    std::unique_ptr<WriteAheadLog> log;
    // Committed records past the header's start_lsn, ascending lsn, each
    // with `lsn` filled in.  The caller filters against the manifest's
    // checkpoint lsn and replays the rest.
    std::vector<LogRecord> records;
    // True when the scan stopped before the physical end of the written
    // log — a torn tail was detected and logically truncated.
    bool tail_truncated = false;
  };

  // Initializes an empty log in `file` (header written + synced) whose
  // first record will carry lsn start_lsn + 1.
  static StatusOr<std::unique_ptr<WriteAheadLog>> Create(
      PageFile* file, uint64_t start_lsn, MetricsRegistry* metrics);

  // Scans an existing log.  A corrupt or torn *header* falls back to
  // reinitializing the log at `fallback_start_lsn` (the manifest's
  // checkpoint lsn): the header is only ever rewritten by Truncate, whose
  // crash window leaves no committed-but-unreplayed records behind.
  static StatusOr<OpenResult> Open(PageFile* file, uint64_t fallback_start_lsn,
                                   MetricsRegistry* metrics);

  // Assigns the next LSN and frames `rec` into the pending buffer.  No I/O;
  // the record is NOT durable until Commit(lsn) returns OK.
  StatusOr<uint64_t> Append(const LogRecord& rec);

  // Blocks until every record with lsn' <= lsn is on stable storage
  // (group-commit leader/follower protocol; one fsync per group).
  Status Commit(uint64_t lsn);

  // Append + Commit; returns the record's LSN once durable.
  StatusOr<uint64_t> AppendAndCommit(const LogRecord& rec);

  // Logically discards every record (requires upto_lsn == last_lsn(), i.e.
  // the caller checkpointed everything): rewrites the header with
  // start_lsn = upto_lsn and syncs.  Record bytes are not erased — strict
  // lsn sequencing makes them unreachable.
  Status Truncate(uint64_t upto_lsn);

  // Highest LSN ever assigned (durable or not).
  uint64_t last_lsn() const;
  // Highest LSN known durable.
  uint64_t durable_lsn() const;
  // Records in the log carry lsn > start_lsn().
  uint64_t start_lsn() const;

  // Leader wait window for group commit, in microseconds.  0 (default)
  // flushes immediately but still retires any concurrently appended
  // records the snapshot happens to cover.
  void set_group_commit_window(uint32_t micros) { group_window_us_ = micros; }

 private:
  WriteAheadLog(PageFile* file, MetricsRegistry* metrics);

  // Writes + syncs the header for `start_lsn`.
  static Status WriteHeader(PageFile* file, uint64_t start_lsn);

  // The per-lsn signature both stamps derive from.
  static uint32_t StampFor(uint64_t lsn);

  // Leader body: flush pending bytes through `snapshot_tail` and sync.
  // Called without the lock held; returns the I/O status.
  Status FlushLocked(std::unique_lock<std::mutex>* lock);

  PageFile* file_;
  Counter* fsyncs_ = nullptr;        // wal.fsyncs
  Histogram* group_size_ = nullptr;  // wal.group_size
  Histogram* fsync_us_ = nullptr;    // wal.fsync_us (latency of file sync)

  mutable std::mutex mu_;
  std::condition_variable cv_;         // flush completion + leader handoff
  std::condition_variable append_cv_;  // wakes a window-waiting leader
  bool flushing_ = false;
  Status io_status_ = Status::OK();  // poison: first I/O failure, sticky

  uint64_t start_lsn_ = 0;
  uint64_t last_lsn_ = 0;
  uint64_t durable_lsn_ = 0;

  // Byte positions are offsets into the record region (page 1 = offset 0).
  uint64_t tail_pos_ = 0;     // end of framed (possibly unflushed) log
  uint64_t flushed_pos_ = 0;  // end of durable log
  // pending_ holds bytes [buf_base_, tail_pos_); buf_base_ is page-aligned
  // and <= flushed_pos_, so the partial durable tail page can be rewritten
  // whole on the next flush.
  uint64_t buf_base_ = 0;
  std::vector<uint8_t> pending_;

  uint32_t group_window_us_ = 0;
};

}  // namespace sigsetdb

#endif  // SIGSET_DB_WAL_H_
