// Manifest: a one-page key/value snapshot of facility metadata.
//
// The page-file layer persists page contents, but each facility also keeps
// a little derived state (signature counts, B-tree root/height, object
// counts) that must survive a restart.  SetIndex::Checkpoint() serializes
// that state into a manifest page file; SetIndex::Open() reads it back and
// reconstructs the facilities.  The design mirrors the MANIFEST of
// LSM engines at miniature scale: durability is checkpoint-granular.

#ifndef SIGSET_DB_MANIFEST_H_
#define SIGSET_DB_MANIFEST_H_

#include <cstdint>
#include <map>
#include <string>

#include "storage/page_file.h"

namespace sigsetdb {

// Reads/writes a string->uint64 map in page 0 of a page file.
// Layout: magic(4) version(4) count(4) then per entry:
// key_len(2) key bytes value(8).  Must fit one page.
class Manifest {
 public:
  using Values = std::map<std::string, uint64_t>;

  // Serializes `values` into page 0 of `file` (allocating it if needed).
  static Status Write(PageFile* file, const Values& values);

  // Parses page 0 of `file`.
  static StatusOr<Values> Read(PageFile* file);

  // Convenience: fetches a required key from parsed values.
  static StatusOr<uint64_t> Get(const Values& values, const std::string& key);
};

}  // namespace sigsetdb

#endif  // SIGSET_DB_MANIFEST_H_
