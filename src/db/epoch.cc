#include "db/epoch.h"

#include <utility>

namespace sigsetdb {

EpochPin& EpochPin::operator=(EpochPin&& other) noexcept {
  if (this != &other) {
    Release();
    manager_ = other.manager_;
    epoch_ = other.epoch_;
    state_ = std::move(other.state_);
    timed_ = other.timed_;
    pin_start_ = other.pin_start_;
    other.manager_ = nullptr;
    other.timed_ = false;
    other.state_.reset();
  }
  return *this;
}

void EpochPin::Release() {
  if (manager_ != nullptr) {
    int64_t pin_us = -1;
    if (timed_) {
      pin_us = std::chrono::duration_cast<std::chrono::microseconds>(
                   std::chrono::steady_clock::now() - pin_start_)
                   .count();
    }
    manager_->Unpin(epoch_, pin_us);
    manager_ = nullptr;
    timed_ = false;
  }
  state_.reset();
}

EpochManager::EpochManager() {
  reclaimer_ = std::thread([this] { ReclaimerLoop(); });
}

EpochManager::~EpochManager() { Shutdown(); }

void EpochManager::Shutdown() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stop_) return;
    stop_ = true;
  }
  cv_.notify_all();
  if (reclaimer_.joinable()) reclaimer_.join();
}

void EpochManager::Publish(std::shared_ptr<const SnapshotState> state) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    published_epoch_.store(published_epoch_.load(std::memory_order_relaxed) + 1,
                           std::memory_order_release);
    state_ = std::move(state);
    work_pending_ = true;
  }
  cv_.notify_all();
}

void EpochManager::SetMetrics(MetricsRegistry* metrics) {
  std::lock_guard<std::mutex> lock(mu_);
  pins_gauge_ = metrics->gauge("epoch.pins");
  backlog_gauge_ = metrics->gauge("epoch.reclaim_backlog");
  reclaimed_counter_ = metrics->counter("epoch.reclaimed_versions");
  pin_us_ = metrics->histogram("epoch.pin_us");
}

EpochPin EpochManager::Pin() {
  std::lock_guard<std::mutex> lock(mu_);
  const uint64_t epoch = published_epoch_.load(std::memory_order_relaxed);
  ++pins_[epoch];
  ++live_pins_;
  if (pins_gauge_ != nullptr) {
    pins_gauge_->Set(static_cast<double>(live_pins_));
  }
  EpochPin pin(this, epoch, state_);
  if (pin_us_ != nullptr) {
    pin.timed_ = true;
    pin.pin_start_ = std::chrono::steady_clock::now();
  }
  return pin;
}

void EpochManager::Unpin(uint64_t epoch, int64_t pin_us) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = pins_.find(epoch);
    if (it != pins_.end() && --it->second == 0) pins_.erase(it);
    if (live_pins_ > 0) --live_pins_;
    if (pins_gauge_ != nullptr) {
      pins_gauge_->Set(static_cast<double>(live_pins_));
    }
    if (pin_us >= 0 && pin_us_ != nullptr) {
      pin_us_->Record(static_cast<uint64_t>(pin_us));
    }
    work_pending_ = true;
  }
  cv_.notify_all();
}

uint64_t EpochManager::OldestPinned() const {
  std::lock_guard<std::mutex> lock(mu_);
  if (pins_.empty()) return published_epoch_.load(std::memory_order_relaxed);
  return pins_.begin()->first;
}

void EpochManager::RegisterReclaimer(ReclaimFn fn) {
  std::lock_guard<std::mutex> lock(mu_);
  reclaimers_.push_back(std::move(fn));
}

uint64_t EpochManager::pinned_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  uint64_t total = 0;
  for (const auto& [epoch, count] : pins_) total += count;
  return total;
}

uint64_t EpochManager::RunReclaimers(uint64_t oldest) {
  std::vector<ReclaimFn> fns;
  Gauge* backlog = nullptr;
  Counter* reclaimed = nullptr;
  {
    std::lock_guard<std::mutex> lock(mu_);
    fns = reclaimers_;
    backlog = backlog_gauge_;
    reclaimed = reclaimed_counter_;
  }
  if (backlog != nullptr) {
    // Epochs the reclaimer cannot free yet because a pin holds them alive.
    const uint64_t published =
        published_epoch_.load(std::memory_order_relaxed);
    backlog->Set(static_cast<double>(published - oldest));
  }
  uint64_t freed = 0;
  for (const ReclaimFn& fn : fns) freed += fn(oldest);
  total_reclaimed_.fetch_add(freed, std::memory_order_relaxed);
  if (reclaimed != nullptr && freed > 0) reclaimed->Increment(freed);
  return freed;
}

uint64_t EpochManager::ReclaimNow() { return RunReclaimers(OldestPinned()); }

void EpochManager::ReclaimerLoop() {
  for (;;) {
    uint64_t oldest;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stop_ || work_pending_; });
      if (stop_) return;
      work_pending_ = false;
      oldest = pins_.empty()
                   ? published_epoch_.load(std::memory_order_relaxed)
                   : pins_.begin()->first;
    }
    RunReclaimers(oldest);
  }
}

}  // namespace sigsetdb
