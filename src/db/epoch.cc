#include "db/epoch.h"

#include <utility>

namespace sigsetdb {

EpochPin& EpochPin::operator=(EpochPin&& other) noexcept {
  if (this != &other) {
    Release();
    manager_ = other.manager_;
    epoch_ = other.epoch_;
    state_ = std::move(other.state_);
    other.manager_ = nullptr;
    other.state_.reset();
  }
  return *this;
}

void EpochPin::Release() {
  if (manager_ != nullptr) {
    manager_->Unpin(epoch_);
    manager_ = nullptr;
  }
  state_.reset();
}

EpochManager::EpochManager() {
  reclaimer_ = std::thread([this] { ReclaimerLoop(); });
}

EpochManager::~EpochManager() { Shutdown(); }

void EpochManager::Shutdown() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stop_) return;
    stop_ = true;
  }
  cv_.notify_all();
  if (reclaimer_.joinable()) reclaimer_.join();
}

void EpochManager::Publish(std::shared_ptr<const SnapshotState> state) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    published_epoch_.store(published_epoch_.load(std::memory_order_relaxed) + 1,
                           std::memory_order_release);
    state_ = std::move(state);
    work_pending_ = true;
  }
  cv_.notify_all();
}

EpochPin EpochManager::Pin() {
  std::lock_guard<std::mutex> lock(mu_);
  const uint64_t epoch = published_epoch_.load(std::memory_order_relaxed);
  ++pins_[epoch];
  return EpochPin(this, epoch, state_);
}

void EpochManager::Unpin(uint64_t epoch) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = pins_.find(epoch);
    if (it != pins_.end() && --it->second == 0) pins_.erase(it);
    work_pending_ = true;
  }
  cv_.notify_all();
}

uint64_t EpochManager::OldestPinned() const {
  std::lock_guard<std::mutex> lock(mu_);
  if (pins_.empty()) return published_epoch_.load(std::memory_order_relaxed);
  return pins_.begin()->first;
}

void EpochManager::RegisterReclaimer(ReclaimFn fn) {
  std::lock_guard<std::mutex> lock(mu_);
  reclaimers_.push_back(std::move(fn));
}

uint64_t EpochManager::pinned_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  uint64_t total = 0;
  for (const auto& [epoch, count] : pins_) total += count;
  return total;
}

uint64_t EpochManager::RunReclaimers(uint64_t oldest) {
  std::vector<ReclaimFn> fns;
  {
    std::lock_guard<std::mutex> lock(mu_);
    fns = reclaimers_;
  }
  uint64_t freed = 0;
  for (const ReclaimFn& fn : fns) freed += fn(oldest);
  total_reclaimed_.fetch_add(freed, std::memory_order_relaxed);
  return freed;
}

uint64_t EpochManager::ReclaimNow() { return RunReclaimers(OldestPinned()); }

void EpochManager::ReclaimerLoop() {
  for (;;) {
    uint64_t oldest;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stop_ || work_pending_; });
      if (stop_) return;
      work_pending_ = false;
      oldest = pins_.empty()
                   ? published_epoch_.load(std::memory_order_relaxed)
                   : pins_.begin()->first;
    }
    RunReclaimers(oldest);
  }
}

}  // namespace sigsetdb
