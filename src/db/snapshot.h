// Snapshot reads (MVCC-lite): fixed-epoch read-only views over an index.
//
// The writer publishes an immutable SnapshotState with every successful
// mutation (see EpochManager); a Snapshot pins that epoch and materializes
// lightweight read-only facility views (SSF/BSSF CreateReadView, NIX
// CreateFromExisting, ObjectStore over an EpochReadView) that answer queries
// without ever taking the index's lock.  The page images the views read come
// from each VersionedPageFile's lock-free version chains, so concurrent
// writers never perturb a pinned reader's answers — queries at epoch E see
// exactly the database as of E, bit for bit.
//
// Concurrency contract: a Snapshot instance belongs to ONE reader thread
// (its views keep per-snapshot IoStats and are not internally synchronized);
// pin as many snapshots as you have readers.  A Snapshot must not outlive
// the index it came from.

#ifndef SIGSET_DB_SNAPSHOT_H_
#define SIGSET_DB_SNAPSHOT_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "db/database.h"
#include "db/epoch.h"
#include "db/set_index.h"
#include "nix/nested_index.h"
#include "obj/multi_object_store.h"
#include "obj/object_store.h"
#include "obs/flight_recorder.h"
#include "obs/metrics.h"
#include "query/advisor.h"
#include "query/executor.h"
#include "sig/bssf.h"
#include "sig/ssf.h"
#include "storage/versioned_page_file.h"

namespace sigsetdb {

// Frozen statistics and file pointers for one indexed set attribute, as of
// the published epoch.  The VersionedPageFile pointers are owned by the
// index and stay valid (including across Compact, which retires generations
// only through the epoch reclaimer) for the index's lifetime.
struct SnapshotAttributeState {
  std::string name;  // attribute name ("" for the single-attribute SetIndex)

  bool maintain_ssf = false;
  bool maintain_bssf = false;
  bool maintain_nix = false;
  SignatureConfig sig{250, 2};
  uint32_t nix_fanout = 0;
  uint64_t capacity = 0;

  // Model inputs frozen at publish time.
  int64_t domain_estimate = 2;   // resolved V (option or sketch estimate)
  uint64_t total_elements = 0;   // Σ|set| over live objects

  // Facility counters (manifest-equivalent state).
  uint64_t num_signatures = 0;  // slots appended (incl. tombstones)
  uint64_t num_live = 0;        // slots not tombstoned

  // NIX tree shape (same fields Checkpoint persists).
  PageId nix_root = kInvalidPage;
  uint32_t nix_height = 0;
  uint64_t nix_leaves = 0;
  uint64_t nix_internal = 0;
  uint64_t nix_overflow = 0;

  // Versioned files backing the facilities (null when not maintained).
  VersionedPageFile* ssf_sig = nullptr;
  VersionedPageFile* ssf_oid = nullptr;
  VersionedPageFile* bssf_slices = nullptr;
  VersionedPageFile* bssf_oid = nullptr;
  VersionedPageFile* nix = nullptr;
};

// The immutable state published with each epoch.  SetIndex publishes one
// attribute; Database publishes one per indexed attribute.
struct SnapshotState {
  uint64_t epoch = 0;       // the epoch this state was published as
  uint64_t generation = 0;  // compaction generation at publish time
  uint64_t num_objects = 0;
  uint16_t num_attributes = 1;  // MultiObjectStore record layout
  VersionedPageFile* objects = nullptr;
  std::vector<SnapshotAttributeState> attrs;
};

// A pinned, fixed-epoch, read-only view of a SetIndex.  Obtained from
// SetIndex::GetSnapshot() / SynchronizedSetIndex::GetSnapshot(); queries run
// without taking the index mutex.
class Snapshot {
 public:
  // Materializes views over the state carried by `pin`.  `metrics` may be
  // null; when set, snapshot queries bump `query.snapshot.*` counters (the
  // registry is thread-safe, so concurrent readers may share it).
  // `recorder` (optional, also thread-safe) additionally receives a
  // kSnapshotQuery flight event per query and arms the snapshot latency
  // histogram.
  static StatusOr<std::unique_ptr<Snapshot>> Create(
      EpochPin pin, MetricsRegistry* metrics,
      FlightRecorder* recorder = nullptr);

  uint64_t epoch() const { return pin_.epoch(); }
  uint64_t generation() const { return state_->generation; }
  uint64_t num_objects() const { return state_->num_objects; }

  // Fetches one object as of the pinned epoch (one page read).
  StatusOr<StoredObject> Get(Oid oid) const;

  // Runs a set query against the pinned epoch.  Mirrors SetIndex::Query —
  // same planner, same executor entry points, same result shape — but reads
  // only snapshot pages and charges I/O to per-snapshot counters, so
  // `page_accesses` is exact for this query alone.
  StatusOr<SetIndexResult> Query(QueryKind kind, const ElementSet& query,
                                 PlanMode mode = PlanMode::kAuto);

  // Set-containment join R ⋈⊆ S at the pinned epochs, with this snapshot as
  // R and `s_side` as S (pass `this` for a self-join).  Mirrors
  // SetIndex::ExecuteSetJoin — same strategies, same pair set — but plans
  // from the frozen model and runs serially (one snapshot, one reader
  // thread), charging I/O to the snapshots' own counters.
  StatusOr<SetIndexJoinResult> ExecuteSetJoin(Snapshot* s_side,
                                              const JoinSpec& spec = {});

  // Pages read by this snapshot so far (per-snapshot accounting; includes
  // no other reader's or the writer's I/O).
  IoStats TotalStats() const;

 private:
  Snapshot(EpochPin pin, MetricsRegistry* metrics, FlightRecorder* recorder);

  Status Init();
  StatusOr<AccessPathChoice> Plan(QueryKind kind, int64_t dq) const;
  StatusOr<QueryResult> RunPlan(const AccessPathChoice& plan, QueryKind kind,
                                const ElementSet& query);

  EpochPin pin_;
  std::shared_ptr<const SnapshotState> state_;
  const SnapshotAttributeState* attr_ = nullptr;  // &state_->attrs[0]
  MetricsRegistry* metrics_ = nullptr;
  FlightRecorder* recorder_ = nullptr;

  // Fixed-epoch adapters over the versioned files (own IoStats each).
  std::unique_ptr<EpochReadView> objects_view_;
  std::unique_ptr<EpochReadView> ssf_sig_view_;
  std::unique_ptr<EpochReadView> ssf_oid_view_;
  std::unique_ptr<EpochReadView> bssf_slices_view_;
  std::unique_ptr<EpochReadView> bssf_oid_view_;
  std::unique_ptr<EpochReadView> nix_view_;

  // Read-only facility views over the adapters.
  std::unique_ptr<ObjectStore> store_;
  std::unique_ptr<SequentialSignatureFile> ssf_;
  std::unique_ptr<BitSlicedSignatureFile> bssf_;
  std::unique_ptr<NestedIndex> nix_;
};

// A pinned, fixed-epoch, read-only view of a multi-attribute Database.
// Evaluates conjunctions of per-attribute set predicates exactly as
// Database::Query does (cheapest driver predicate, serial resolution,
// residual predicates checked on the fetched object).
class DatabaseSnapshot {
 public:
  static StatusOr<std::unique_ptr<DatabaseSnapshot>> Create(
      EpochPin pin, MetricsRegistry* metrics,
      FlightRecorder* recorder = nullptr);

  uint64_t epoch() const { return pin_.epoch(); }
  uint64_t num_objects() const { return state_->num_objects; }

  // Fetches one multi-attribute object as of the pinned epoch.
  StatusOr<MultiSetObject> Get(Oid oid) const;

  // Conjunction query at the pinned epoch; same contract as
  // Database::Query.
  StatusOr<DatabaseQueryResult> Query(
      const std::vector<SetPredicate>& predicates);

  // Set-containment join between two indexed attributes at the pinned
  // epoch; same contract as Database::ExecuteSetJoin, frozen-model planning
  // and serial execution (one snapshot, one reader thread).
  StatusOr<DatabaseJoinResult> ExecuteSetJoin(const std::string& r_attribute,
                                              const std::string& s_attribute,
                                              const JoinSpec& spec = {});

  IoStats TotalStats() const;

 private:
  // Per-attribute facility views (mirrors Database::AttributeState).
  struct AttrViews {
    std::unique_ptr<EpochReadView> ssf_sig_view;
    std::unique_ptr<EpochReadView> ssf_oid_view;
    std::unique_ptr<EpochReadView> bssf_slices_view;
    std::unique_ptr<EpochReadView> bssf_oid_view;
    std::unique_ptr<EpochReadView> nix_view;
    std::unique_ptr<SequentialSignatureFile> ssf;
    std::unique_ptr<BitSlicedSignatureFile> bssf;
    std::unique_ptr<NestedIndex> nix;
  };

  DatabaseSnapshot(EpochPin pin, MetricsRegistry* metrics,
                   FlightRecorder* recorder);

  Status Init();
  StatusOr<size_t> AttributeIndex(const std::string& name) const;
  StatusOr<AccessPathChoice> PlanPredicate(size_t attr,
                                           const SetPredicate& pred) const;
  StatusOr<std::vector<Oid>> DriverCandidates(size_t attr,
                                              const AccessPathChoice& plan,
                                              const SetPredicate& pred);

  EpochPin pin_;
  std::shared_ptr<const SnapshotState> state_;
  MetricsRegistry* metrics_ = nullptr;
  FlightRecorder* recorder_ = nullptr;

  std::unique_ptr<EpochReadView> objects_view_;
  std::unique_ptr<MultiObjectStore> store_;
  std::vector<AttrViews> attrs_;
};

}  // namespace sigsetdb

#endif  // SIGSET_DB_SNAPSHOT_H_
