// EpochManager: the pin/publish/reclaim protocol behind snapshot reads.
//
// Epochs are a monotone counter over the index's committed states.  The
// single writer (whoever holds the SetIndex write lock) mutates at write
// epoch W = published + 1 and, once the mutation is complete, publishes W
// together with an immutable SnapshotState describing it.  Readers Pin():
// under the manager's mutex they atomically read the published state and
// register their epoch, so a pin's (epoch, state) pair is always consistent
// — a reader can never observe epoch N with state N±1.
//
// Reclamation: a background thread wakes after every Publish/Unpin, computes
// the oldest pinned epoch (== published when nothing is pinned), and hands
// it to every registered reclaim callback (VersionedPageFile::Reclaim).
// Because pins register under the same mutex Publish uses, any reader the
// reclaimer might miss is pinned at >= the oldest value it computed, which
// is exactly the invariant Reclaim needs.  The thread is joined by
// Shutdown() (idempotent; called by ~SetIndex before the wrapped files die).

#ifndef SIGSET_DB_EPOCH_H_
#define SIGSET_DB_EPOCH_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "obs/metrics.h"

namespace sigsetdb {

struct SnapshotState;
class EpochManager;

// RAII pin on one published epoch.  Move-only; releasing (or destroying)
// the pin lets the reclaimer free versions the epoch was holding alive.
class EpochPin {
 public:
  EpochPin() = default;
  EpochPin(EpochPin&& other) noexcept { *this = std::move(other); }
  EpochPin& operator=(EpochPin&& other) noexcept;
  EpochPin(const EpochPin&) = delete;
  EpochPin& operator=(const EpochPin&) = delete;
  ~EpochPin() { Release(); }

  bool pinned() const { return manager_ != nullptr; }
  uint64_t epoch() const { return epoch_; }
  const std::shared_ptr<const SnapshotState>& state() const { return state_; }

  void Release();

 private:
  friend class EpochManager;
  EpochPin(EpochManager* manager, uint64_t epoch,
           std::shared_ptr<const SnapshotState> state)
      : manager_(manager), epoch_(epoch), state_(std::move(state)) {}

  EpochManager* manager_ = nullptr;
  uint64_t epoch_ = 0;
  std::shared_ptr<const SnapshotState> state_;
  // Pin-duration telemetry (only armed when the manager has metrics; plain
  // snapshot reads take no clock reads).
  bool timed_ = false;
  std::chrono::steady_clock::time_point pin_start_{};
};

// Coordinates epoch publication, reader pins, and background reclamation.
class EpochManager {
 public:
  // `oldest_pinned` is the floor the callback may reclaim below; returns
  // the number of versions it freed (telemetry only).
  using ReclaimFn = std::function<uint64_t(uint64_t oldest_pinned)>;

  EpochManager();
  ~EpochManager();

  // Joins the reclaimer thread.  Idempotent; must run before any registered
  // reclaim target is destroyed.
  void Shutdown();

  // The last published epoch (0 until the first Publish).
  uint64_t published() const {
    return published_epoch_.load(std::memory_order_acquire);
  }
  // The epoch the writer's in-flight mutation writes at.
  uint64_t write_epoch() const { return published() + 1; }
  // The cell VersionedPageFile wrappers derive their write epoch from.
  const std::atomic<uint64_t>* published_cell() const {
    return &published_epoch_;
  }

  // Publishes `state` as epoch published()+1.  Writer-lock context only.
  void Publish(std::shared_ptr<const SnapshotState> state);

  // Pins the currently published epoch and returns its state.  Lock-free
  // with respect to the writer's mutation (the writer only takes the
  // manager mutex momentarily inside Publish).
  EpochPin Pin();

  // Oldest pinned epoch, or published() when nothing is pinned.
  uint64_t OldestPinned() const;

  void RegisterReclaimer(ReclaimFn fn);

  // Runs one reclamation pass synchronously (deterministic tests).
  // Returns the number of versions freed across all registered callbacks.
  uint64_t ReclaimNow();

  // Arms epoch telemetry: epoch.pins / epoch.reclaim_backlog gauges, an
  // epoch.reclaimed_versions counter, and an epoch.pin_us histogram of pin
  // hold times.  Without this call (the default) the manager takes no clock
  // reads and exports nothing.
  void SetMetrics(MetricsRegistry* metrics);

  uint64_t pinned_count() const;
  uint64_t total_reclaimed() const {
    return total_reclaimed_.load(std::memory_order_relaxed);
  }

 private:
  friend class EpochPin;
  // `pin_us` < 0 means the pin was untimed (no metrics when it was taken).
  void Unpin(uint64_t epoch, int64_t pin_us);
  void ReclaimerLoop();
  uint64_t RunReclaimers(uint64_t oldest);

  std::atomic<uint64_t> published_epoch_{0};
  std::atomic<uint64_t> total_reclaimed_{0};

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::shared_ptr<const SnapshotState> state_;       // guarded by mu_
  std::map<uint64_t, uint64_t> pins_;                // epoch -> pin count
  std::vector<ReclaimFn> reclaimers_;                // guarded by mu_
  bool work_pending_ = false;
  bool stop_ = false;
  // Telemetry sinks (guarded by mu_; all null until SetMetrics).
  Gauge* pins_gauge_ = nullptr;
  Gauge* backlog_gauge_ = nullptr;
  Counter* reclaimed_counter_ = nullptr;
  Histogram* pin_us_ = nullptr;
  uint64_t live_pins_ = 0;  // running Σ pins_ values, for the gauge
  std::thread reclaimer_;
};

}  // namespace sigsetdb

#endif  // SIGSET_DB_EPOCH_H_
