#include "db/log_record.h"

#include <cstring>

namespace sigsetdb {

namespace {

void PutU32(std::vector<uint8_t>* out, uint32_t v) {
  for (int i = 0; i < 4; ++i) out->push_back((v >> (8 * i)) & 0xFF);
}

void PutU64(std::vector<uint8_t>* out, uint64_t v) {
  for (int i = 0; i < 8; ++i) out->push_back((v >> (8 * i)) & 0xFF);
}

// Cursor over the payload buffer; every Get checks bounds so a corrupted
// length field can never read past the frame.
struct Reader {
  const uint8_t* p;
  size_t n;
  size_t pos = 0;

  bool GetU32(uint32_t* v) {
    if (n - pos < 4) return false;
    *v = 0;
    for (int i = 0; i < 4; ++i) *v |= static_cast<uint32_t>(p[pos + i]) << (8 * i);
    pos += 4;
    return true;
  }
  bool GetU64(uint64_t* v) {
    if (n - pos < 8) return false;
    *v = 0;
    for (int i = 0; i < 8; ++i) *v |= static_cast<uint64_t>(p[pos + i]) << (8 * i);
    pos += 8;
    return true;
  }
};

void PutEntry(std::vector<uint8_t>* out, const LogEntry& e) {
  PutU64(out, e.oid.value());
  PutU32(out, static_cast<uint32_t>(e.sets.size()));
  for (const ElementSet& set : e.sets) {
    PutU32(out, static_cast<uint32_t>(set.size()));
    for (uint64_t elem : set) PutU64(out, elem);
  }
}

bool GetEntry(Reader* r, LogEntry* e) {
  uint64_t oid = 0;
  uint32_t n_sets = 0;
  if (!r->GetU64(&oid) || !r->GetU32(&n_sets)) return false;
  e->oid = Oid(oid);
  // Each set costs at least 4 bytes; reject counts the buffer can't hold
  // before reserving memory for them.
  if (n_sets > (r->n - r->pos) / 4) return false;
  e->sets.clear();
  e->sets.reserve(n_sets);
  for (uint32_t i = 0; i < n_sets; ++i) {
    uint32_t count = 0;
    if (!r->GetU32(&count)) return false;
    if (count > (r->n - r->pos) / 8) return false;
    ElementSet set;
    set.reserve(count);
    for (uint32_t j = 0; j < count; ++j) {
      uint64_t elem = 0;
      if (!r->GetU64(&elem)) return false;
      set.push_back(elem);
    }
    e->sets.push_back(std::move(set));
  }
  return true;
}

}  // namespace

LogRecord LogRecord::SingleInsert(Oid oid, std::vector<ElementSet> sets) {
  LogRecord rec;
  rec.type = LogRecordType::kInsert;
  rec.inserts.push_back({oid, std::move(sets)});
  return rec;
}

LogRecord LogRecord::SingleDelete(Oid oid, std::vector<ElementSet> preimage) {
  LogRecord rec;
  rec.type = LogRecordType::kDelete;
  rec.deletes.push_back({oid, std::move(preimage)});
  return rec;
}

LogRecord LogRecord::Batch(std::vector<LogEntry> deletes,
                           std::vector<LogEntry> inserts) {
  LogRecord rec;
  rec.type = LogRecordType::kBatch;
  rec.deletes = std::move(deletes);
  rec.inserts = std::move(inserts);
  return rec;
}

LogRecord LogRecord::CompactCommit(uint64_t generation) {
  LogRecord rec;
  rec.type = LogRecordType::kCompactCommit;
  rec.generation = generation;
  return rec;
}

LogRecord LogRecord::Abort(uint64_t ref_lsn) {
  LogRecord rec;
  rec.type = LogRecordType::kAbort;
  rec.ref_lsn = ref_lsn;
  return rec;
}

std::vector<uint8_t> LogRecord::SerializePayload() const {
  std::vector<uint8_t> out;
  switch (type) {
    case LogRecordType::kInsert:
      PutEntry(&out, inserts[0]);
      break;
    case LogRecordType::kDelete:
      PutEntry(&out, deletes[0]);
      break;
    case LogRecordType::kBatch:
      PutU32(&out, static_cast<uint32_t>(deletes.size()));
      for (const LogEntry& e : deletes) PutEntry(&out, e);
      PutU32(&out, static_cast<uint32_t>(inserts.size()));
      for (const LogEntry& e : inserts) PutEntry(&out, e);
      break;
    case LogRecordType::kCompactCommit:
      PutU64(&out, generation);
      break;
    case LogRecordType::kAbort:
      PutU64(&out, ref_lsn);
      break;
  }
  return out;
}

StatusOr<LogRecord> LogRecord::ParsePayload(uint32_t type, const uint8_t* data,
                                            size_t n) {
  LogRecord rec;
  Reader r{data, n};
  switch (type) {
    case static_cast<uint32_t>(LogRecordType::kInsert): {
      rec.type = LogRecordType::kInsert;
      LogEntry e;
      if (!GetEntry(&r, &e)) return Status::Corruption("bad insert record");
      rec.inserts.push_back(std::move(e));
      break;
    }
    case static_cast<uint32_t>(LogRecordType::kDelete): {
      rec.type = LogRecordType::kDelete;
      LogEntry e;
      if (!GetEntry(&r, &e)) return Status::Corruption("bad delete record");
      rec.deletes.push_back(std::move(e));
      break;
    }
    case static_cast<uint32_t>(LogRecordType::kBatch): {
      rec.type = LogRecordType::kBatch;
      uint32_t n_del = 0;
      if (!r.GetU32(&n_del)) return Status::Corruption("bad batch record");
      if (n_del > (r.n - r.pos) / 12) {
        return Status::Corruption("bad batch record");
      }
      rec.deletes.reserve(n_del);
      for (uint32_t i = 0; i < n_del; ++i) {
        LogEntry e;
        if (!GetEntry(&r, &e)) return Status::Corruption("bad batch record");
        rec.deletes.push_back(std::move(e));
      }
      uint32_t n_ins = 0;
      if (!r.GetU32(&n_ins)) return Status::Corruption("bad batch record");
      if (n_ins > (r.n - r.pos) / 12) {
        return Status::Corruption("bad batch record");
      }
      rec.inserts.reserve(n_ins);
      for (uint32_t i = 0; i < n_ins; ++i) {
        LogEntry e;
        if (!GetEntry(&r, &e)) return Status::Corruption("bad batch record");
        rec.inserts.push_back(std::move(e));
      }
      break;
    }
    case static_cast<uint32_t>(LogRecordType::kCompactCommit):
      rec.type = LogRecordType::kCompactCommit;
      if (!r.GetU64(&rec.generation)) {
        return Status::Corruption("bad compact record");
      }
      break;
    case static_cast<uint32_t>(LogRecordType::kAbort):
      rec.type = LogRecordType::kAbort;
      if (!r.GetU64(&rec.ref_lsn)) return Status::Corruption("bad abort record");
      break;
    default:
      return Status::Corruption("unknown log record type " +
                                std::to_string(type));
  }
  if (r.pos != r.n) {
    return Status::Corruption("trailing bytes in log record payload");
  }
  return rec;
}

}  // namespace sigsetdb
