#include "db/set_index.h"

#include <cmath>
#include <cstring>
#include <utility>

#include "db/epoch.h"
#include "db/snapshot.h"
#include "obs/explain.h"
#include "storage/versioned_page_file.h"
#include "util/failpoint.h"

namespace sigsetdb {

SetIndex::SetIndex(StorageManager* storage, Options options)
    : storage_(storage), options_(options) {
  if (options_.num_threads > 1) {
    pool_ = std::make_unique<ThreadPool>(options_.num_threads);
    ctx_.pool = pool_.get();
  }
  if (options_.metrics != nullptr) {
    metrics_ = options_.metrics;
  } else {
    owned_metrics_ = std::make_unique<MetricsRegistry>();
    metrics_ = owned_metrics_.get();
  }
  if (options_.enable_snapshots) {
    epochs_ = std::make_unique<EpochManager>();
  }
  if (options_.enable_telemetry) {
    recorder_ =
        std::make_unique<FlightRecorder>(options_.flight_recorder_capacity);
    watchdog_ = std::make_unique<DriftWatchdog>(metrics_, recorder_.get(),
                                                options_.drift);
    if (epochs_ != nullptr) epochs_->SetMetrics(metrics_);
  }
}

namespace {
// Statuses after which the instance's state can no longer be trusted; the
// first one triggers the one-shot flight-recorder postmortem.
bool IsFatalStatus(const Status& status) {
  switch (status.code()) {
    case StatusCode::kIoError:
    case StatusCode::kCorruption:
    case StatusCode::kInternal:
      return true;
    default:
      return false;
  }
}
}  // namespace

void SetIndex::RecordOpTelemetry(FlightOp op, const char* metric,
                                 const TraceTimer& timer,
                                 const IoStats& before, const Status& status,
                                 uint64_t fingerprint, const char* detail) {
  metrics_->histogram(metric)->Record(
      static_cast<uint64_t>(timer.ElapsedMs() * 1000.0));
  FlightEvent event;
  event.op = op;
  event.status_code = static_cast<int32_t>(status.code());
  event.fingerprint = fingerprint;
  event.epoch = current_epoch();
  event.wal_lsn = wal_ != nullptr ? wal_->last_lsn() : 0;
  event.SetDelta(storage_->TotalStats() - before);
  if (detail != nullptr) {
    event.SetDetail(detail);
  } else if (!status.ok()) {
    event.SetDetail(status.message());
  }
  recorder_->Record(event);
  if (!status.ok() && IsFatalStatus(status)) NoteFatal(status);
}

void SetIndex::NoteFatal(const Status& cause) {
  if (postmortem_written_) return;
  postmortem_written_ = true;
  FlightEvent event;
  event.op = FlightOp::kFatal;
  event.status_code = static_cast<int32_t>(cause.code());
  event.epoch = current_epoch();
  event.wal_lsn = wal_ != nullptr ? wal_->last_lsn() : 0;
  event.SetDetail(cause.message());
  recorder_->Record(event);
  const std::string reason = "fatal status: " + cause.ToString();
  last_postmortem_json_ = recorder_->PostmortemJson(reason);
  if (!options_.postmortem_dir.empty()) {
    // Plain stdio, never the page layer: the fatal status may mean the page
    // layer itself is what failed.
    (void)recorder_->WritePostmortem(
        options_.postmortem_dir + "/" + name_ + ".postmortem", reason);
  }
}

Status SetIndex::Checkpoint() {
  if (recorder_ == nullptr) return CheckpointImpl();
  TraceTimer timer;
  const IoStats before = storage_->TotalStats();
  Status status = CheckpointImpl();
  RecordOpTelemetry(FlightOp::kCheckpoint, "op.checkpoint.latency_us", timer,
                    before, status);
  return status;
}

StatusOr<Oid> SetIndex::Insert(const ElementSet& set_value) {
  if (recorder_ == nullptr) return InsertImpl(set_value);
  TraceTimer timer;
  const IoStats before = storage_->TotalStats();
  StatusOr<Oid> out = InsertImpl(set_value);
  RecordOpTelemetry(FlightOp::kInsert, "op.insert.latency_us", timer, before,
                    out.status());
  return out;
}

Status SetIndex::Delete(Oid oid) {
  if (recorder_ == nullptr) return DeleteImpl(oid);
  TraceTimer timer;
  const IoStats before = storage_->TotalStats();
  Status status = DeleteImpl(oid);
  RecordOpTelemetry(FlightOp::kDelete, "op.delete.latency_us", timer, before,
                    status);
  return status;
}

StatusOr<std::vector<Oid>> SetIndex::ApplyBatch(const WriteBatch& batch) {
  if (recorder_ == nullptr) return ApplyBatchImpl(batch);
  TraceTimer timer;
  const IoStats before = storage_->TotalStats();
  StatusOr<std::vector<Oid>> out = ApplyBatchImpl(batch);
  RecordOpTelemetry(FlightOp::kBatch, "op.batch.latency_us", timer, before,
                    out.status());
  return out;
}

Status SetIndex::Compact() {
  if (recorder_ == nullptr) return CompactImpl();
  TraceTimer timer;
  const IoStats before = storage_->TotalStats();
  Status status = CompactImpl();
  RecordOpTelemetry(FlightOp::kCompact, "op.compact.latency_us", timer,
                    before, status);
  return status;
}

SetIndex::~SetIndex() {
  // Stop the reclaimer before the wrappers it calls into are destroyed.
  // Pinned snapshots must already be gone (documented contract).
  if (epochs_ != nullptr) epochs_->Shutdown();
}

StatusOr<PageFile*> SetIndex::OpenVersioned(const std::string& file_name,
                                            VersionedPageFile** slot) {
  SIGSET_ASSIGN_OR_RETURN(PageFile * base, storage_->OpenOrCreate(file_name));
  if (epochs_ == nullptr) {
    if (slot != nullptr) *slot = nullptr;
    return base;
  }
  SIGSET_ASSIGN_OR_RETURN(
      std::unique_ptr<VersionedPageFile> wrapper,
      VersionedPageFile::Wrap(base, epochs_->published_cell()));
  VersionedPageFile* raw = wrapper.get();
  epochs_->RegisterReclaimer(
      [raw](uint64_t oldest_pinned) { return raw->Reclaim(oldest_pinned); });
  versioned_all_.push_back(std::move(wrapper));
  if (slot != nullptr) *slot = raw;
  return raw;
}

Status SetIndex::FlushCurrentVersions() {
  for (VersionedPageFile* v : {v_objects_, v_ssf_sig_, v_ssf_oid_,
                               v_bssf_slices_, v_bssf_oid_, v_nix_}) {
    if (v != nullptr) SIGSET_RETURN_IF_ERROR(v->FlushToBase());
  }
  return Status::OK();
}

void SetIndex::PublishSnapshot() {
  if (epochs_ == nullptr) return;
  auto state = std::make_shared<SnapshotState>();
  state->epoch = epochs_->write_epoch();
  state->generation = generation_;
  state->num_objects = num_objects();
  state->num_attributes = 1;
  state->objects = v_objects_;
  SnapshotAttributeState attr;
  attr.maintain_ssf = ssf_ != nullptr;
  attr.maintain_bssf = bssf_ != nullptr;
  attr.maintain_nix = nix_ != nullptr;
  attr.sig = options_.sig;
  attr.nix_fanout = options_.nix_fanout;
  attr.capacity = options_.capacity;
  attr.domain_estimate = DomainEstimate();
  attr.total_elements = total_elements_;
  if (ssf_ != nullptr) {
    attr.num_signatures = ssf_->num_signatures();
    attr.num_live = ssf_->num_live();
  } else if (bssf_ != nullptr) {
    attr.num_signatures = bssf_->num_signatures();
    attr.num_live = bssf_->num_live();
  }
  if (nix_ != nullptr) {
    const BTree& tree = nix_->tree();
    attr.nix_root = tree.root();
    attr.nix_height = tree.height();
    attr.nix_leaves = tree.leaf_pages();
    attr.nix_internal = tree.internal_pages();
    attr.nix_overflow = tree.overflow_pages();
  }
  attr.ssf_sig = v_ssf_sig_;
  attr.ssf_oid = v_ssf_oid_;
  attr.bssf_slices = v_bssf_slices_;
  attr.bssf_oid = v_bssf_oid_;
  attr.nix = v_nix_;
  state->attrs.push_back(std::move(attr));
  epochs_->Publish(std::move(state));
}

StatusOr<std::unique_ptr<Snapshot>> SetIndex::GetSnapshot() {
  if (!poison_.ok()) return poison_;
  if (epochs_ == nullptr) {
    return Status::FailedPrecondition(
        "snapshots disabled (Options::enable_snapshots)");
  }
  return Snapshot::Create(epochs_->Pin(), metrics_, recorder_.get());
}

uint64_t SetIndex::current_epoch() const {
  return epochs_ != nullptr ? epochs_->published() : 0;
}

StatusOr<std::unique_ptr<SetIndex>> SetIndex::Create(StorageManager* storage,
                                                     const std::string& name,
                                                     const Options& options) {
  if (!options.maintain_ssf && !options.maintain_bssf &&
      !options.maintain_nix) {
    return Status::InvalidArgument("enable at least one facility");
  }
  std::unique_ptr<SetIndex> index(new SetIndex(storage, options));
  index->name_ = name;
  SIGSET_ASSIGN_OR_RETURN(index->manifest_file_,
                          storage->OpenOrCreate(name + ".manifest"));
  SIGSET_ASSIGN_OR_RETURN(index->sketch_file_,
                          storage->OpenOrCreate(name + ".sketch"));
  SIGSET_ASSIGN_OR_RETURN(
      PageFile * objects,
      index->OpenVersioned(name + ".objects", &index->v_objects_));
  index->store_ = std::make_unique<ObjectStore>(objects);
  if (options.maintain_ssf) {
    SIGSET_ASSIGN_OR_RETURN(
        PageFile * sig,
        index->OpenVersioned(name + ".ssf.sig", &index->v_ssf_sig_));
    SIGSET_ASSIGN_OR_RETURN(
        PageFile * oid,
        index->OpenVersioned(name + ".ssf.oid", &index->v_ssf_oid_));
    SIGSET_ASSIGN_OR_RETURN(
        index->ssf_, SequentialSignatureFile::Create(options.sig, sig, oid));
    index->ssf_->set_skip_index_enabled(options.enable_skip_index);
  }
  if (options.maintain_bssf) {
    SIGSET_ASSIGN_OR_RETURN(
        PageFile * slices,
        index->OpenVersioned(name + ".bssf.slices",
                             &index->v_bssf_slices_));
    SIGSET_ASSIGN_OR_RETURN(
        PageFile * oid,
        index->OpenVersioned(name + ".bssf.oid", &index->v_bssf_oid_));
    SIGSET_ASSIGN_OR_RETURN(
        index->bssf_,
        BitSlicedSignatureFile::Create(options.sig, options.capacity, slices,
                                       oid, options.bssf_mode));
    index->bssf_->set_skip_index_enabled(options.enable_skip_index);
    index->bssf_->set_hot_tier_capacity(options.hot_tier_capacity);
    index->bssf_->set_hot_tier_enabled(options.enable_hot_tier);
  }
  if (options.maintain_nix) {
    SIGSET_ASSIGN_OR_RETURN(
        PageFile * nix_file,
        index->OpenVersioned(name + ".nix", &index->v_nix_));
    SIGSET_ASSIGN_OR_RETURN(index->nix_,
                            NestedIndex::Create(nix_file, options.nix_fanout));
  }
  if (options.enable_wal) {
    SIGSET_ASSIGN_OR_RETURN(PageFile * wal_file,
                            storage->OpenOrCreate(name + ".wal"));
    SIGSET_ASSIGN_OR_RETURN(
        index->wal_, WriteAheadLog::Create(wal_file, 0, index->metrics_));
    index->wal_->set_group_commit_window(options.group_commit_window_us);
    // Checkpoint immediately so a crash before the first user checkpoint
    // still reopens: the manifest anchors replay at lsn 0.
    SIGSET_RETURN_IF_ERROR(index->Checkpoint());
  }
  index->PublishSnapshot();  // epoch 1: the empty index
  return index;
}

namespace {
// Manifest keys.
constexpr char kKeyGeneration[] = "compact_generation";
constexpr char kKeyObjects[] = "num_objects";
constexpr char kKeyElements[] = "total_elements";
constexpr char kKeySignatures[] = "num_signatures";
constexpr char kKeyNixRoot[] = "nix_root";
constexpr char kKeyNixHeight[] = "nix_height";
constexpr char kKeyNixLeaves[] = "nix_leaf_pages";
constexpr char kKeyNixInternal[] = "nix_internal_pages";
constexpr char kKeyNixOverflow[] = "nix_overflow_pages";
constexpr char kKeyNixFreeHead[] = "nix_free_head";
constexpr char kKeyNixFreePages[] = "nix_free_pages";
constexpr char kKeyF[] = "config_f";
constexpr char kKeyM[] = "config_m";
constexpr char kKeyFacilities[] = "config_facilities";
constexpr char kKeyWal[] = "config_wal";
// Every log record with lsn <= this value is reflected in the checkpoint;
// replay applies only records beyond it.  Missing (pre-WAL manifest) = 0.
constexpr char kKeyWalLsn[] = "wal_lsn";

uint64_t FacilityMask(const SetIndex::Options& options) {
  return (options.maintain_ssf ? 1u : 0u) |
         (options.maintain_bssf ? 2u : 0u) |
         (options.maintain_nix ? 4u : 0u);
}

// Compaction writes into generation-suffixed files ("<base>.g<N>"); the
// original name is generation 0.  StorageManager cannot delete files, so
// superseded generations simply stay behind (unreferenced by the manifest).
std::string GenName(const std::string& base, uint64_t generation) {
  if (generation == 0) return base;
  return base + ".g" + std::to_string(generation);
}
}  // namespace

Status SetIndex::CheckpointImpl() {
  SIGSET_FAILPOINT("set_index.checkpoint");
  if (!poison_.ok()) return poison_;
  // Quiescent invariant: every appended record has been committed (each
  // mutation commits before returning), so last_lsn() covers everything the
  // counters below reflect.
  const uint64_t wal_lsn = wal_ != nullptr ? wal_->last_lsn() : 0;
  Manifest::Values values;
  values[kKeyGeneration] = generation_;
  values[kKeyWal] = wal_ != nullptr ? 1 : 0;
  values[kKeyWalLsn] = wal_lsn;
  values[kKeyObjects] = num_objects();
  values[kKeyElements] = total_elements_;
  values[kKeyF] = static_cast<uint64_t>(options_.sig.f);
  values[kKeyM] = static_cast<uint64_t>(options_.sig.m);
  values[kKeyFacilities] = FacilityMask(options_);
  if (ssf_ != nullptr || bssf_ != nullptr) {
    uint64_t sigs = ssf_ != nullptr ? ssf_->num_signatures()
                                    : bssf_->num_signatures();
    values[kKeySignatures] = sigs;
  }
  if (nix_ != nullptr) {
    const BTree& tree = nix_->tree();
    values[kKeyNixRoot] = tree.root();
    values[kKeyNixHeight] = tree.height();
    values[kKeyNixLeaves] = tree.leaf_pages();
    values[kKeyNixInternal] = tree.internal_pages();
    values[kKeyNixOverflow] = tree.overflow_pages();
    values[kKeyNixFreeHead] = tree.free_list_head();
    values[kKeyNixFreePages] = tree.free_pages();
  }
  // The domain sketch's 4 KiB register file is exactly one page.
  if (sketch_file_ != nullptr &&
      domain_sketch_.num_registers() <= kPageSize) {
    if (sketch_file_->num_pages() == 0) {
      SIGSET_ASSIGN_OR_RETURN(PageId id, sketch_file_->Allocate());
      (void)id;
    }
    Page page;
    std::memcpy(page.data(), domain_sketch_.registers().data(),
                domain_sketch_.num_registers());
    SIGSET_RETURN_IF_ERROR(sketch_file_->Write(0, page));
  }
  // With snapshots on, committed page images live in the CoW chains; push
  // them through to the base files BEFORE the manifest commits to them, so
  // a reopen (replay included) never sees a manifest ahead of its data.
  SIGSET_RETURN_IF_ERROR(FlushCurrentVersions());
  SIGSET_RETURN_IF_ERROR(Manifest::Write(manifest_file_, values));
  // Manifest first, then log truncation: a crash between the two leaves
  // records <= wal_lsn in the log, and replay filters them out by lsn.
  if (wal_ != nullptr) {
    SIGSET_RETURN_IF_ERROR(wal_->Truncate(wal_lsn));
  }
  return Status::OK();
}

StatusOr<std::unique_ptr<SetIndex>> SetIndex::Open(StorageManager* storage,
                                                   const std::string& name,
                                                   const Options& options) {
  std::unique_ptr<SetIndex> index(new SetIndex(storage, options));
  index->name_ = name;
  SIGSET_ASSIGN_OR_RETURN(index->manifest_file_,
                          storage->OpenOrCreate(name + ".manifest"));
  SIGSET_ASSIGN_OR_RETURN(index->sketch_file_,
                          storage->OpenOrCreate(name + ".sketch"));
  if (index->sketch_file_->num_pages() > 0) {
    Page page;
    SIGSET_RETURN_IF_ERROR(index->sketch_file_->Read(0, &page));
    if (!index->domain_sketch_.LoadRegisters(
            page.data(), index->domain_sketch_.num_registers())) {
      return Status::Corruption("domain sketch size mismatch");
    }
  }
  SIGSET_ASSIGN_OR_RETURN(Manifest::Values values,
                          Manifest::Read(index->manifest_file_));
  SIGSET_ASSIGN_OR_RETURN(uint64_t f, Manifest::Get(values, kKeyF));
  SIGSET_ASSIGN_OR_RETURN(uint64_t m, Manifest::Get(values, kKeyM));
  SIGSET_ASSIGN_OR_RETURN(uint64_t mask, Manifest::Get(values,
                                                       kKeyFacilities));
  // Pre-WAL manifests have no config_wal key; they are WAL-off indexes.
  auto wal_flag = Manifest::Get(values, kKeyWal);
  const uint64_t checkpointed_wal = wal_flag.ok() ? *wal_flag : 0;
  if (f != options.sig.f || m != options.sig.m ||
      mask != FacilityMask(options) ||
      checkpointed_wal != (options.enable_wal ? 1u : 0u)) {
    return Status::FailedPrecondition(
        "options do not match the checkpointed configuration");
  }
  SIGSET_ASSIGN_OR_RETURN(uint64_t num_objects,
                          Manifest::Get(values, kKeyObjects));
  SIGSET_ASSIGN_OR_RETURN(index->total_elements_,
                          Manifest::Get(values, kKeyElements));
  SIGSET_ASSIGN_OR_RETURN(
      PageFile * objects,
      index->OpenVersioned(name + ".objects", &index->v_objects_));
  index->store_ = std::make_unique<ObjectStore>(objects);
  index->store_->RecoverCount(num_objects);
  // Manifests written before compaction existed have no generation key;
  // those indexes are generation 0 by definition.
  auto generation = Manifest::Get(values, kKeyGeneration);
  if (generation.ok()) index->generation_ = *generation;

  if (options.enable_wal) {
    auto ckpt_lsn = Manifest::Get(values, kKeyWalLsn);
    const uint64_t wal_lsn = ckpt_lsn.ok() ? *ckpt_lsn : 0;
    SIGSET_ASSIGN_OR_RETURN(PageFile * wal_file,
                            storage->OpenOrCreate(name + ".wal"));
    SIGSET_ASSIGN_OR_RETURN(WriteAheadLog::OpenResult scan,
                            WriteAheadLog::Open(wal_file, wal_lsn,
                                                index->metrics_));
    index->wal_ = std::move(scan.log);
    index->wal_->set_group_commit_window(options.group_commit_window_us);
    std::vector<LogRecord> to_replay;
    for (LogRecord& rec : scan.records) {
      if (rec.lsn > wal_lsn) to_replay.push_back(std::move(rec));
    }
    if (!to_replay.empty()) {
      // Acknowledged writes past the checkpoint: redo them against the
      // store, then rebuild every facility and counter from the store.
      // The facilities' own files may be arbitrarily stale or torn — they
      // are never opened through the normal path here.
      SIGSET_RETURN_IF_ERROR(index->ReplayLog(to_replay));
      SIGSET_RETURN_IF_ERROR(index->RebuildFacilitiesFromStore());
      if (index->metrics_ != nullptr) {
        index->metrics_->counter("wal.replayed_records")
            ->Increment(to_replay.size());
      }
      // Deliberately NO checkpoint here: recovery is read-only w.r.t. the
      // log, so replaying twice equals replaying once (idempotence is one
      // of the wal_log_test invariants).  The next explicit Checkpoint()
      // or Compact() truncates the log.
      objects->stats().Reset();
      index->PublishSnapshot();
      return index;
    }
  }
  if (options.maintain_ssf || options.maintain_bssf) {
    SIGSET_ASSIGN_OR_RETURN(uint64_t sigs,
                            Manifest::Get(values, kKeySignatures));
    if (options.maintain_ssf) {
      SIGSET_ASSIGN_OR_RETURN(
          PageFile * sig,
          index->OpenVersioned(GenName(name + ".ssf.sig",
                                       index->generation_),
                               &index->v_ssf_sig_));
      SIGSET_ASSIGN_OR_RETURN(
          PageFile * oid,
          index->OpenVersioned(GenName(name + ".ssf.oid",
                                       index->generation_),
                               &index->v_ssf_oid_));
      SIGSET_ASSIGN_OR_RETURN(index->ssf_,
                              SequentialSignatureFile::CreateFromExisting(
                                  options.sig, sig, oid, sigs));
      index->ssf_->set_skip_index_enabled(options.enable_skip_index);
    }
    if (options.maintain_bssf) {
      SIGSET_ASSIGN_OR_RETURN(
          PageFile * slices,
          index->OpenVersioned(GenName(name + ".bssf.slices",
                                       index->generation_),
                               &index->v_bssf_slices_));
      SIGSET_ASSIGN_OR_RETURN(
          PageFile * oid,
          index->OpenVersioned(GenName(name + ".bssf.oid",
                                       index->generation_),
                               &index->v_bssf_oid_));
      SIGSET_ASSIGN_OR_RETURN(index->bssf_,
                              BitSlicedSignatureFile::CreateFromExisting(
                                  options.sig, options.capacity, slices, oid,
                                  options.bssf_mode, sigs));
      index->bssf_->set_skip_index_enabled(options.enable_skip_index);
      index->bssf_->set_hot_tier_capacity(options.hot_tier_capacity);
      index->bssf_->set_hot_tier_enabled(options.enable_hot_tier);
    }
  }
  if (options.maintain_nix) {
    SIGSET_ASSIGN_OR_RETURN(uint64_t root, Manifest::Get(values, kKeyNixRoot));
    SIGSET_ASSIGN_OR_RETURN(uint64_t height,
                            Manifest::Get(values, kKeyNixHeight));
    SIGSET_ASSIGN_OR_RETURN(uint64_t leaves,
                            Manifest::Get(values, kKeyNixLeaves));
    SIGSET_ASSIGN_OR_RETURN(uint64_t internal,
                            Manifest::Get(values, kKeyNixInternal));
    SIGSET_ASSIGN_OR_RETURN(uint64_t overflow,
                            Manifest::Get(values, kKeyNixOverflow));
    SIGSET_ASSIGN_OR_RETURN(
        PageFile * nix_file,
        index->OpenVersioned(name + ".nix", &index->v_nix_));
    SIGSET_ASSIGN_OR_RETURN(
        index->nix_,
        NestedIndex::CreateFromExisting(
            nix_file, options.nix_fanout, static_cast<PageId>(root),
            static_cast<uint32_t>(height), leaves, internal, overflow));
    auto free_head = Manifest::Get(values, kKeyNixFreeHead);
    auto free_pages = Manifest::Get(values, kKeyNixFreePages);
    if (free_head.ok() && free_pages.ok()) {
      index->nix_->mutable_tree().RestoreFreeList(
          static_cast<PageId>(*free_head), *free_pages);
    }
  }
  index->PublishSnapshot();
  return index;
}

Status SetIndex::ApplyInsert(const ElementSet& normalized, Oid expected_oid) {
  SIGSET_ASSIGN_OR_RETURN(Oid oid, store_->Insert(normalized));
  if (expected_oid.valid() && oid != expected_oid) {
    return Status::Internal("store assigned " + oid.ToString() +
                            " but the log predicted " +
                            expected_oid.ToString());
  }
  if (ssf_ != nullptr) SIGSET_RETURN_IF_ERROR(ssf_->Insert(oid, normalized));
  if (bssf_ != nullptr) {
    SIGSET_RETURN_IF_ERROR(bssf_->Insert(oid, normalized));
  }
  if (nix_ != nullptr) SIGSET_RETURN_IF_ERROR(nix_->Insert(oid, normalized));
  total_elements_ += normalized.size();
  for (uint64_t element : normalized) domain_sketch_.Add(element);
  return Status::OK();
}

Status SetIndex::ApplyDelete(Oid oid, const StoredObject& obj) {
  // De-index first, store delete LAST: a crash mid-delete then leaves the
  // object present in the store but (partially) missing from the indexes —
  // recovery rolls the indexes back to the checkpoint, and any candidate
  // list that still names the OID resolves against a live object.  The old
  // order (store delete first) could leave index entries dangling at a
  // missing object.
  if (ssf_ != nullptr) {
    SIGSET_RETURN_IF_ERROR(ssf_->Remove(oid, obj.set_value));
  }
  if (bssf_ != nullptr) {
    SIGSET_RETURN_IF_ERROR(bssf_->Remove(oid, obj.set_value));
  }
  if (nix_ != nullptr) {
    SIGSET_RETURN_IF_ERROR(nix_->Remove(oid, obj.set_value));
  }
  SIGSET_RETURN_IF_ERROR(store_->Delete(oid));
  if (total_elements_ >= obj.set_value.size()) {
    total_elements_ -= obj.set_value.size();
  }
  return Status::OK();
}

Status SetIndex::AbortAndPoison(uint64_t lsn, const Status& cause) {
  // The record at `lsn` is durable but its apply failed partway: the
  // in-memory index no longer matches "fully applied".  Log an Abort so
  // recovery rolls the record back, and poison this instance — the only way
  // forward is a reopen, which replays the log against the store.  If the
  // Abort itself cannot commit, recovery will instead COMPLETE the record
  // (finishing the partial apply); either end state is consistent, and the
  // poisoned instance can't expose the in-between.
  (void)wal_->AppendAndCommit(LogRecord::Abort(lsn));
  poison_ = Status::FailedPrecondition(
      "index poisoned: apply of log record " + std::to_string(lsn) +
      " failed (" + cause.message() + "); reopen to recover");
  return cause;
}

StatusOr<Oid> SetIndex::InsertImpl(const ElementSet& set_value) {
  if (!poison_.ok()) return poison_;
  ElementSet normalized = set_value;
  NormalizeSet(&normalized);
  if (wal_ == nullptr) {
    SIGSET_ASSIGN_OR_RETURN(Oid oid, store_->Insert(normalized));
    if (ssf_ != nullptr) SIGSET_RETURN_IF_ERROR(ssf_->Insert(oid, normalized));
    if (bssf_ != nullptr) {
      SIGSET_RETURN_IF_ERROR(bssf_->Insert(oid, normalized));
    }
    if (nix_ != nullptr) SIGSET_RETURN_IF_ERROR(nix_->Insert(oid, normalized));
    total_elements_ += normalized.size();
    for (uint64_t element : normalized) domain_sketch_.Add(element);
    PublishSnapshot();
    return oid;
  }
  // Log-before-apply: predict the physical OID, commit the record, then
  // mutate.  The insert is acknowledged by the commit; the apply (or, after
  // a crash, replay) realizes it.
  SIGSET_ASSIGN_OR_RETURN(Oid predicted, store_->PeekNextOid(normalized));
  SIGSET_ASSIGN_OR_RETURN(
      uint64_t lsn,
      wal_->AppendAndCommit(LogRecord::SingleInsert(predicted, {normalized})));
  Status applied = ApplyInsert(normalized, predicted);
  if (!applied.ok()) return AbortAndPoison(lsn, applied);
  PublishSnapshot();
  return predicted;
}

Status SetIndex::DeleteImpl(Oid oid) {
  if (!poison_.ok()) return poison_;
  SIGSET_ASSIGN_OR_RETURN(StoredObject obj, store_->Get(oid));
  if (wal_ == nullptr) {
    SIGSET_RETURN_IF_ERROR(ApplyDelete(oid, obj));
    PublishSnapshot();
    return Status::OK();
  }
  // The record carries the victim's preimage so an aborted delete can be
  // resurrected at recovery.
  SIGSET_ASSIGN_OR_RETURN(
      uint64_t lsn,
      wal_->AppendAndCommit(LogRecord::SingleDelete(oid, {obj.set_value})));
  Status applied = ApplyDelete(oid, obj);
  if (!applied.ok()) return AbortAndPoison(lsn, applied);
  PublishSnapshot();
  return Status::OK();
}

StatusOr<std::vector<Oid>> SetIndex::ApplyBatchImpl(const WriteBatch& batch) {
  if (!poison_.ok()) return poison_;
  // Fetch delete victims up front (their set values drive the de-indexing);
  // this is also why deleting a same-batch insert is unsupported.
  std::vector<StoredObject> victims;
  victims.reserve(batch.deletes().size());
  for (Oid oid : batch.deletes()) {
    SIGSET_ASSIGN_OR_RETURN(StoredObject obj, store_->Get(oid));
    victims.push_back(std::move(obj));
  }

  std::vector<ElementSet> normalized_inserts;
  normalized_inserts.reserve(batch.inserts().size());
  for (const ElementSet& set_value : batch.inserts()) {
    ElementSet n = set_value;
    NormalizeSet(&n);
    normalized_inserts.push_back(std::move(n));
  }

  // One record covers the whole batch: it commits (and is acknowledged)
  // atomically — recovery applies all of it or, when aborted, none.
  uint64_t batch_lsn = 0;
  std::vector<Oid> predicted;
  if (wal_ != nullptr) {
    SIGSET_ASSIGN_OR_RETURN(predicted, store_->PeekOids(normalized_inserts));
    std::vector<LogEntry> del_entries;
    del_entries.reserve(victims.size());
    for (size_t i = 0; i < victims.size(); ++i) {
      del_entries.push_back(
          LogEntry{batch.deletes()[i], {victims[i].set_value}});
    }
    std::vector<LogEntry> ins_entries;
    ins_entries.reserve(predicted.size());
    for (size_t i = 0; i < predicted.size(); ++i) {
      ins_entries.push_back(LogEntry{predicted[i], {normalized_inserts[i]}});
    }
    SIGSET_ASSIGN_OR_RETURN(
        batch_lsn,
        wal_->AppendAndCommit(LogRecord::Batch(std::move(del_entries),
                                               std::move(ins_entries))));
  }

  std::vector<Oid> new_oids;
  Status applied = ApplyBatchBody(batch, victims, normalized_inserts,
                                  predicted, &new_oids);
  if (!applied.ok()) {
    if (wal_ != nullptr) return AbortAndPoison(batch_lsn, applied);
    return applied;
  }
  PublishSnapshot();
  return new_oids;
}

Status SetIndex::ApplyBatchBody(const WriteBatch& batch,
                                const std::vector<StoredObject>& victims,
                                const std::vector<ElementSet>& normalized,
                                const std::vector<Oid>& predicted,
                                std::vector<Oid>* out_oids) {
  // Store inserts first: they assign the OIDs the facility ops index.
  std::vector<Oid>& new_oids = *out_oids;
  new_oids.reserve(normalized.size());
  for (size_t i = 0; i < normalized.size(); ++i) {
    SIGSET_ASSIGN_OR_RETURN(Oid oid, store_->Insert(normalized[i]));
    if (!predicted.empty() && oid != predicted[i]) {
      return Status::Internal("store assigned " + oid.ToString() +
                              " but the log predicted " +
                              predicted[i].ToString());
    }
    new_oids.push_back(oid);
  }

  // One grouped application per facility: removes first so the slots they
  // free are reused by this batch's inserts.
  std::vector<BatchOp> ops;
  ops.reserve(batch.size());
  for (size_t i = 0; i < victims.size(); ++i) {
    ops.push_back(BatchOp{BatchOp::Kind::kRemove, batch.deletes()[i],
                          victims[i].set_value});
  }
  for (size_t i = 0; i < new_oids.size(); ++i) {
    ops.push_back(
        BatchOp{BatchOp::Kind::kInsert, new_oids[i], normalized[i]});
  }
  if (ssf_ != nullptr) SIGSET_RETURN_IF_ERROR(ssf_->ApplyBatch(ops));
  if (bssf_ != nullptr) SIGSET_RETURN_IF_ERROR(bssf_->ApplyBatch(ops));
  if (nix_ != nullptr) SIGSET_RETURN_IF_ERROR(nix_->ApplyBatch(ops));

  // Store deletes LAST — same crash ordering as Delete().
  for (Oid oid : batch.deletes()) {
    SIGSET_RETURN_IF_ERROR(store_->Delete(oid));
  }

  for (const StoredObject& victim : victims) {
    if (total_elements_ >= victim.set_value.size()) {
      total_elements_ -= victim.set_value.size();
    }
  }
  for (const ElementSet& n : normalized) {
    total_elements_ += n.size();
    for (uint64_t element : n) domain_sketch_.Add(element);
  }
  return Status::OK();
}

Status SetIndex::CompactImpl() {
  if (!poison_.ok()) return poison_;
  if (ssf_ == nullptr && bssf_ == nullptr) return CheckpointImpl();
  uint64_t next_gen = generation_ + 1;

  // Write the dense copies into the next generation's files.  CompactTo is
  // retryable: it overwrites from page 0, so a half-written target left by
  // an earlier crashed compaction is simply rewritten.
  std::unique_ptr<SequentialSignatureFile> new_ssf;
  std::unique_ptr<BitSlicedSignatureFile> new_bssf;
  // With snapshots on, the next generation gets its own CoW wrappers; the
  // old generation's wrappers stay alive (and registered) so snapshots
  // pinned before the swap keep reading the superseded files.
  VersionedPageFile* nv_ssf_sig = nullptr;
  VersionedPageFile* nv_ssf_oid = nullptr;
  VersionedPageFile* nv_bssf_slices = nullptr;
  VersionedPageFile* nv_bssf_oid = nullptr;
  uint64_t ssf_live = 0, bssf_live = 0;
  if (ssf_ != nullptr) {
    SIGSET_ASSIGN_OR_RETURN(
        PageFile * sig,
        OpenVersioned(GenName(name_ + ".ssf.sig", next_gen), &nv_ssf_sig));
    SIGSET_ASSIGN_OR_RETURN(
        PageFile * oid,
        OpenVersioned(GenName(name_ + ".ssf.oid", next_gen), &nv_ssf_oid));
    SIGSET_ASSIGN_OR_RETURN(ssf_live, ssf_->CompactTo(sig, oid));
    SIGSET_ASSIGN_OR_RETURN(new_ssf,
                            SequentialSignatureFile::CreateFromExisting(
                                options_.sig, sig, oid, ssf_live));
    new_ssf->set_skip_index_enabled(options_.enable_skip_index);
  }
  if (bssf_ != nullptr) {
    SIGSET_ASSIGN_OR_RETURN(
        PageFile * slices,
        OpenVersioned(GenName(name_ + ".bssf.slices", next_gen),
                      &nv_bssf_slices));
    SIGSET_ASSIGN_OR_RETURN(
        PageFile * oid,
        OpenVersioned(GenName(name_ + ".bssf.oid", next_gen),
                      &nv_bssf_oid));
    SIGSET_ASSIGN_OR_RETURN(bssf_live, bssf_->CompactTo(slices, oid));
    SIGSET_ASSIGN_OR_RETURN(new_bssf,
                            BitSlicedSignatureFile::CreateFromExisting(
                                options_.sig, options_.capacity, slices, oid,
                                options_.bssf_mode, bssf_live));
    new_bssf->set_skip_index_enabled(options_.enable_skip_index);
    new_bssf->set_hot_tier_capacity(options_.hot_tier_capacity);
    new_bssf->set_hot_tier_enabled(options_.enable_hot_tier);
  }
  if (ssf_ != nullptr && bssf_ != nullptr && ssf_live != bssf_live) {
    return Status::Internal("compaction live-count mismatch between facilities");
  }

  // With a WAL, note the compaction in the log before swapping: replay
  // treats the record as a no-op (recovery rebuilds facilities from the
  // store, which is compaction-order independent), but it keeps the strict
  // lsn sequence aligned with the operations the checkpoint below covers.
  if (wal_ != nullptr) {
    SIGSET_RETURN_IF_ERROR(
        wal_->AppendAndCommit(LogRecord::CompactCommit(next_gen)).status());
  }

  // Swap and flip the manifest: the checkpoint's generation key is the
  // commit point.  A crash before it leaves the old generation (and its
  // files) authoritative; the half-built next generation is garbage that a
  // retried Compact() overwrites.
  ssf_ = std::move(new_ssf);
  bssf_ = std::move(new_bssf);
  if (ssf_ != nullptr) {
    v_ssf_sig_ = nv_ssf_sig;
    v_ssf_oid_ = nv_ssf_oid;
  }
  if (bssf_ != nullptr) {
    v_bssf_slices_ = nv_bssf_slices;
    v_bssf_oid_ = nv_bssf_oid;
  }
  generation_ = next_gen;
  // Readers pinned at pre-compact epochs keep resolving through the old
  // generation's wrappers; epochs published from here on carry the new
  // files.  Publish before the checkpoint so the swap is visible even if
  // the checkpoint write fails (matching the live query path, which already
  // serves the swapped facilities).
  PublishSnapshot();
  return Checkpoint();
}

Status SetIndex::ReplayLog(const std::vector<LogRecord>& records) {
  // Pass 1: an Abort marks its target record as rolled back.  The engine
  // poisons itself after the first failed apply, so any log tail carries at
  // most one aborted record — but the set keeps this general.
  std::vector<uint64_t> aborted;
  for (const LogRecord& rec : records) {
    if (rec.type == LogRecordType::kAbort) aborted.push_back(rec.ref_lsn);
  }
  auto is_aborted = [&aborted](uint64_t lsn) {
    for (uint64_t a : aborted) {
      if (a == lsn) return true;
    }
    return false;
  };
  // Pass 2: store-level redo in lsn order.  Committed records are applied
  // at their exact logged locations (verify-or-write, so a record whose
  // apply already ran — fully or partially — converges to the same bytes);
  // aborted records are inverted, restoring delete victims from their
  // logged preimages.
  for (const LogRecord& rec : records) {
    const bool rolled_back = is_aborted(rec.lsn);
    switch (rec.type) {
      case LogRecordType::kInsert:
      case LogRecordType::kDelete:
      case LogRecordType::kBatch:
        for (const LogEntry& e : rec.inserts) {
          SIGSET_RETURN_IF_ERROR(
              rolled_back
                  ? store_->ReplayEnsureAbsent(e.oid)
                  : store_->ReplayEnsurePresent(e.oid, e.sets.at(0)));
        }
        for (const LogEntry& e : rec.deletes) {
          SIGSET_RETURN_IF_ERROR(
              rolled_back
                  ? store_->ReplayEnsurePresent(e.oid, e.sets.at(0))
                  : store_->ReplayEnsureAbsent(e.oid));
        }
        break;
      case LogRecordType::kCompactCommit:
        // The facilities are rebuilt from the store below; whether the
        // crashed run compacted first cannot change the rebuilt state.
        break;
      case LogRecordType::kAbort:
        break;
    }
  }
  return Status::OK();
}

Status SetIndex::RebuildFacilitiesFromStore() {
  // The recovered store is the single source of truth: recount everything
  // and rebuild each facility from a live scan.  Counters come first so
  // CreateFromExisting sees the right live count.
  std::vector<Oid> oids;
  std::vector<ElementSet> sets;
  total_elements_ = 0;
  SIGSET_RETURN_IF_ERROR(
      store_->ForEachLive([&](Oid oid, const ElementSet& set) {
        oids.push_back(oid);
        sets.push_back(set);
        total_elements_ += set.size();
        for (uint64_t element : set) domain_sketch_.Add(element);
        return Status::OK();
      }));
  store_->RecoverCount(oids.size());
  const uint64_t live = oids.size();

  // SSF/BSSF: build pristine copies in memory, then CompactTo the real
  // generation files — CompactTo overwrites from page 0 (BSSF rewrites
  // every slice page), so whatever stale or torn state the crashed run left
  // there is wiped.  Rebuilding in place via Insert would be wrong: SSF's
  // append path allocates its tail page at the file END, which on a dirty
  // file breaks the slot/page arithmetic reads depend on.
  if (options_.maintain_ssf) {
    InMemoryPageFile tmp_sig("recover.ssf.sig"), tmp_oid("recover.ssf.oid");
    SIGSET_ASSIGN_OR_RETURN(
        std::unique_ptr<SequentialSignatureFile> tmp,
        SequentialSignatureFile::Create(options_.sig, &tmp_sig, &tmp_oid));
    for (size_t i = 0; i < live; ++i) {
      SIGSET_RETURN_IF_ERROR(tmp->Insert(oids[i], sets[i]));
    }
    SIGSET_ASSIGN_OR_RETURN(
        PageFile * sig,
        OpenVersioned(GenName(name_ + ".ssf.sig", generation_),
                      &v_ssf_sig_));
    SIGSET_ASSIGN_OR_RETURN(
        PageFile * oid,
        OpenVersioned(GenName(name_ + ".ssf.oid", generation_),
                      &v_ssf_oid_));
    SIGSET_ASSIGN_OR_RETURN(uint64_t packed, tmp->CompactTo(sig, oid));
    if (packed != live) {
      return Status::Internal("ssf rebuild count mismatch");
    }
    SIGSET_ASSIGN_OR_RETURN(ssf_,
                            SequentialSignatureFile::CreateFromExisting(
                                options_.sig, sig, oid, live));
    ssf_->set_skip_index_enabled(options_.enable_skip_index);
  }
  if (options_.maintain_bssf) {
    InMemoryPageFile tmp_slices("recover.bssf.slices");
    InMemoryPageFile tmp_oid("recover.bssf.oid");
    SIGSET_ASSIGN_OR_RETURN(
        std::unique_ptr<BitSlicedSignatureFile> tmp,
        BitSlicedSignatureFile::Create(options_.sig, options_.capacity,
                                       &tmp_slices, &tmp_oid,
                                       options_.bssf_mode));
    for (size_t i = 0; i < live; ++i) {
      SIGSET_RETURN_IF_ERROR(tmp->Insert(oids[i], sets[i]));
    }
    SIGSET_ASSIGN_OR_RETURN(
        PageFile * slices,
        OpenVersioned(GenName(name_ + ".bssf.slices", generation_),
                      &v_bssf_slices_));
    SIGSET_ASSIGN_OR_RETURN(
        PageFile * oid,
        OpenVersioned(GenName(name_ + ".bssf.oid", generation_),
                      &v_bssf_oid_));
    SIGSET_ASSIGN_OR_RETURN(uint64_t packed, tmp->CompactTo(slices, oid));
    if (packed != live) {
      return Status::Internal("bssf rebuild count mismatch");
    }
    SIGSET_ASSIGN_OR_RETURN(bssf_, BitSlicedSignatureFile::CreateFromExisting(
                                       options_.sig, options_.capacity,
                                       slices, oid, options_.bssf_mode, live));
    bssf_->set_skip_index_enabled(options_.enable_skip_index);
    bssf_->set_hot_tier_capacity(options_.hot_tier_capacity);
    bssf_->set_hot_tier_enabled(options_.enable_hot_tier);
  }
  if (options_.maintain_nix) {
    // Reset to an empty tree (orphaning whatever pages the crashed run
    // left) and bulk-build from the live scan, which is already in
    // ascending physical-OID order.
    SIGSET_ASSIGN_OR_RETURN(PageFile * nix_file,
                            OpenVersioned(name_ + ".nix", &v_nix_));
    SIGSET_ASSIGN_OR_RETURN(
        nix_, NestedIndex::CreateResetting(nix_file, options_.nix_fanout));
    SIGSET_RETURN_IF_ERROR(nix_->BulkBuild(oids, sets));
  }
  return Status::OK();
}

int64_t SetIndex::DomainEstimate() const {
  if (options_.domain_estimate > 0) return options_.domain_estimate;
  int64_t estimate =
      static_cast<int64_t>(std::llround(domain_sketch_.Estimate()));
  return std::max<int64_t>(estimate, 2);
}

DatabaseParams SetIndex::LiveDbParams() const {
  DatabaseParams db;
  db.n = static_cast<int64_t>(num_objects());
  if (db.n < 1) db.n = 1;
  db.v = DomainEstimate();
  // The combinatorial actual-drop formulas need V >= Dt.
  int64_t dt = static_cast<int64_t>(std::llround(mean_cardinality()));
  if (db.v < dt + 1) db.v = dt + 1;
  return db;
}

StatusOr<AccessPathChoice> SetIndex::Plan(QueryKind kind, int64_t dq) const {
  DatabaseParams db = LiveDbParams();
  SignatureParams sig{options_.sig.f, options_.sig.m};
  NixParams nix;
  nix.fanout = options_.nix_fanout;
  int64_t dt = static_cast<int64_t>(std::llround(mean_cardinality()));
  if (dt < 1) dt = 1;
  std::vector<AccessPathChoice> choices;
  if (options_.advisor_feedback) {
    // Fold the registry's observed false-drop and buffer-hit rates into the
    // cost comparison (opt-in: feedback-shifted plans trade reproducible
    // page counts for workload adaptivity).
    SIGSET_ASSIGN_OR_RETURN(
        choices, AdviseAccessPaths(db, sig, nix, dt, dq, kind,
                                   /*allow_smart=*/true,
                                   AdvisorFeedback::FromRegistry(*metrics_)));
  } else {
    SIGSET_ASSIGN_OR_RETURN(
        choices,
        AdviseAccessPaths(db, sig, nix, dt, dq, kind, /*allow_smart=*/true));
  }
  for (const AccessPathChoice& choice : choices) {
    if (choice.facility == "ssf" && ssf_ == nullptr) continue;
    if (choice.facility == "bssf" && bssf_ == nullptr) continue;
    if (choice.facility == "nix" && nix_ == nullptr) continue;
    return choice;
  }
  return Status::Internal("no maintained facility matched the plan");
}

StatusOr<QueryResult> SetIndex::RunPlan(const AccessPathChoice& plan,
                                        QueryKind kind,
                                        const ElementSet& query,
                                        QueryTrace* trace) {
  const ParallelExecutionContext* ctx = execution_context();
  if (plan.facility == "ssf") {
    return ExecuteSetQuery(ssf_.get(), *store_, kind, query, ctx, trace);
  }
  QueryKind ck = CandidateKind(kind);
  if (plan.facility == "nix") {
    if (plan.param > 0 && ck == QueryKind::kSuperset) {
      return ExecuteSmartSupersetNix(nix_.get(), *store_, query,
                                     static_cast<size_t>(plan.param), kind,
                                     ctx, trace);
    }
    return ExecuteSetQuery(nix_.get(), *store_, kind, query, ctx, trace);
  }
  // bssf
  if (plan.param > 0 && ck == QueryKind::kSuperset) {
    return ExecuteSmartSupersetBssf(bssf_.get(), *store_, query,
                                    static_cast<size_t>(plan.param), kind,
                                    ctx, trace);
  }
  if (plan.param > 0 && ck == QueryKind::kSubset) {
    return ExecuteSmartSubsetBssf(bssf_.get(), *store_, query,
                                  static_cast<size_t>(plan.param), kind, ctx,
                                  trace);
  }
  return ExecuteSetQuery(bssf_.get(), *store_, kind, query, ctx, trace);
}

StatusOr<SetIndexResult> SetIndex::QueryInternal(QueryKind kind,
                                                 const ElementSet& query,
                                                 PlanMode mode,
                                                 QueryTrace* trace,
                                                 AccessPathChoice* chosen) {
  // A poisoned index may hold partially applied facility state; refuse to
  // answer from it (reopen to recover).
  if (!poison_.ok()) return poison_;
  ElementSet normalized = query;
  NormalizeSet(&normalized);
  if (normalized.empty()) {
    return Status::InvalidArgument("query set must not be empty");
  }

  // With telemetry on, plain queries run with an internal trace so the
  // drift watchdog can pair measured stage pages with the model's
  // predictions.  Tracing only snapshots IoStats counters — page-access
  // counts are identical with or without it.
  QueryTrace telemetry_trace;
  if (recorder_ != nullptr && trace == nullptr) trace = &telemetry_trace;

  AccessPathChoice plan;
  switch (mode) {
    case PlanMode::kForceSsf:
      if (ssf_ == nullptr) return Status::FailedPrecondition("no ssf");
      plan = {"ssf", "plain", 0.0, 0};
      break;
    case PlanMode::kForceBssf:
      if (bssf_ == nullptr) return Status::FailedPrecondition("no bssf");
      plan = {"bssf", "plain", 0.0, 0};
      break;
    case PlanMode::kForceNix:
      if (nix_ == nullptr) return Status::FailedPrecondition("no nix");
      plan = {"nix", "plain", 0.0, 0};
      break;
    case PlanMode::kAuto: {
      SIGSET_ASSIGN_OR_RETURN(
          plan, Plan(CandidateKind(kind),
                     static_cast<int64_t>(normalized.size())));
      break;
    }
  }
  if (chosen != nullptr) *chosen = plan;
  if (trace != nullptr) {
    trace->plan = plan.facility + " " + plan.strategy;
    trace->kind = QueryKindName(kind);
    trace->dq = static_cast<int64_t>(normalized.size());
  }

  TraceTimer timer;  // feeds the latency histogram (metrics, not tracing)
  IoStats before = storage_->TotalStats();
  StatusOr<QueryResult> ran = RunPlan(plan, kind, normalized, trace);
  if (!ran.ok()) {
    // Failed queries never reach the success bookkeeping below; hand the
    // failure to the flight recorder (and, for fatal statuses, the
    // postmortem) before propagating it.
    if (recorder_ != nullptr) {
      RecordOpTelemetry(FlightOp::kQuery, "query.latency_us", timer, before,
                        ran.status(),
                        FlightRecorder::Fingerprint(static_cast<int>(kind),
                                                    normalized));
    }
    return ran.status();
  }
  QueryResult result = std::move(ran).value();
  IoStats delta = storage_->TotalStats() - before;

  // Registry bookkeeping: memory-only counter updates, no page I/O, so
  // measured page-access counts are unaffected.
  const std::string prefix = "query." + plan.facility;
  metrics_->counter("query.count")->Increment();
  metrics_->counter(prefix + ".count")->Increment();
  metrics_->counter(prefix + ".candidates")->Increment(result.num_candidates);
  metrics_->counter(prefix + ".false_drops")
      ->Increment(result.num_false_drops);
  metrics_->histogram("query.pages")->Record(delta.total());
  metrics_->histogram("query.latency_us")
      ->Record(static_cast<uint64_t>(timer.ElapsedMs() * 1000.0));
  if (mode == PlanMode::kAuto) {
    metrics_->gauge(prefix + ".predicted_pages")->Add(plan.cost_pages);
  }
  if (bssf_ != nullptr && bssf_->hot_tier_enabled()) {
    bssf_->hot_tier().ExportMetrics(metrics_, "hot_tier");
  }

  SetIndexResult out;
  out.result = std::move(result);
  out.plan = plan.facility + " " + plan.strategy;
  out.page_accesses = delta.total();

  if (recorder_ != nullptr) {
    metrics_
        ->histogram("query." + std::string(QueryKindName(kind)) +
                    ".latency_us")
        ->Record(static_cast<uint64_t>(timer.ElapsedMs() * 1000.0));
    FlightEvent event;
    event.op = FlightOp::kQuery;
    event.fingerprint =
        FlightRecorder::Fingerprint(static_cast<int>(kind), normalized);
    event.epoch = current_epoch();
    event.wal_lsn = wal_ != nullptr ? wal_->last_lsn() : 0;
    event.SetDelta(delta);
    event.SetDetail(out.plan);
    recorder_->Record(event);
  }
  if (trace != nullptr) {
    AttachPredictions(trace, plan, kind);
    if (watchdog_ != nullptr) watchdog_->ObserveTrace(*trace);
  }
  return out;
}

void SetIndex::AttachPredictions(QueryTrace* trace,
                                 const AccessPathChoice& chosen,
                                 QueryKind kind) const {
  // The model's per-stage predictions for the executed plan, priced against
  // the same live statistics the planner used.
  DatabaseParams db = LiveDbParams();
  SignatureParams sig{options_.sig.f, options_.sig.m};
  NixParams nix;
  nix.fanout = options_.nix_fanout;
  int64_t dt = static_cast<int64_t>(std::llround(mean_cardinality()));
  if (dt < 1) dt = 1;
  CostBreakdown bd =
      BreakdownForChoice(db, sig, nix, dt, trace->dq, kind, chosen);
  if (bd.total() <= 0) return;
  trace->predicted_total = bd.total();
  for (TraceSpan& stage : trace->mutable_stages()) {
    if (stage.name == "candidate selection") {
      stage.predicted_pages = bd.candidate_selection + bd.oid_lookup;
      for (TraceSpan& child : stage.children) {
        child.predicted_pages = child.name == "oid lookup"
                                    ? bd.oid_lookup
                                    : bd.candidate_selection;
      }
    } else if (stage.name == "resolution") {
      stage.predicted_pages = bd.resolution;
    }
  }
}

StatusOr<SetIndexResult> SetIndex::Query(QueryKind kind,
                                         const ElementSet& query,
                                         PlanMode mode) {
  return QueryInternal(kind, query, mode, nullptr, nullptr);
}

StatusOr<SetIndexExplainResult> SetIndex::Explain(QueryKind kind,
                                                  const ElementSet& query,
                                                  PlanMode mode) {
  SetIndexExplainResult out;
  AccessPathChoice plan;
  SIGSET_ASSIGN_OR_RETURN(
      out.result, QueryInternal(kind, query, mode, &out.trace, &plan));
  // Per-stage model predictions are attached inside QueryInternal (shared
  // with the telemetry-internal traces feeding the drift watchdog).
  out.text = RenderExplain(out.trace);
  out.json = out.trace.ToJson();
  return out;
}

// --- set-containment joins (R ⋈⊆ S) ---------------------------------------

StatusOr<SetIndexJoinResult> SetIndex::JoinInternal(SetIndex* s_side,
                                                    const JoinSpec& spec,
                                                    QueryTrace* trace) {
  if (s_side == nullptr) {
    return Status::InvalidArgument("join S side must not be null");
  }
  // Either side poisoned means partially applied facility state somewhere
  // in the join's reach; refuse to answer (reopen to recover).
  if (!poison_.ok()) return poison_;
  if (!s_side->poison_.ok()) return s_side->poison_;

  // With telemetry on, joins run with an internal trace (same rationale as
  // QueryInternal: stage pages for the drift artifacts, no page-count
  // difference).
  QueryTrace telemetry_trace;
  if (recorder_ != nullptr && trace == nullptr) trace = &telemetry_trace;

  // Model parameters, each side priced from its own live statistics.
  const DatabaseParams db_r = LiveDbParams();
  const DatabaseParams db_s = s_side->LiveDbParams();
  int64_t dt_r = static_cast<int64_t>(std::llround(mean_cardinality()));
  if (dt_r < 1) dt_r = 1;
  int64_t dt_s =
      static_cast<int64_t>(std::llround(s_side->mean_cardinality()));
  if (dt_s < 1) dt_s = 1;
  const SignatureParams sig_params{options_.sig.f, options_.sig.m};
  NixParams nix_params;
  nix_params.fanout = s_side->options_.nix_fanout;

  JoinSpec resolved = spec;
  if (resolved.strategy == JoinStrategy::kAuto) {
    SIGSET_ASSIGN_OR_RETURN(
        JoinStrategyChoice best,
        BestJoinStrategy(db_r, dt_r, db_s, dt_s, sig_params, nix_params));
    resolved.strategy = best.strategy;
  }

  // One nested-loop probe is the best superset selection with Dq = dt_r
  // against the S side; its modeled pages feed the adaptive direction
  // choice.
  double probe_cost_pages = 0.0;
  {
    StatusOr<AccessPathChoice> probe =
        BestAccessPath(db_s, sig_params, nix_params, dt_s, dt_r,
                       QueryKind::kSuperset, /*allow_smart=*/true);
    if (probe.ok()) probe_cost_pages = probe->cost_pages;
  }

  JoinSideAccess r_acc;
  r_acc.num_live = num_objects();
  r_acc.scan =
      [this](const std::function<Status(Oid, const ElementSet&)>& fn) {
        return store_->ForEachLive(fn);
      };

  JoinSideAccess s_acc;
  s_acc.num_live = s_side->num_objects();
  s_acc.scan =
      [s_side](const std::function<Status(Oid, const ElementSet&)>& fn) {
        return s_side->store_->ForEachLive(fn);
      };
  s_acc.probe_cost_pages = probe_cost_pages;
  s_acc.probe_superset =
      [s_side](const ElementSet& query) -> StatusOr<QueryResult> {
    SIGSET_ASSIGN_OR_RETURN(
        AccessPathChoice plan,
        s_side->Plan(QueryKind::kSuperset,
                     static_cast<int64_t>(query.size())));
    return s_side->RunPlan(plan, QueryKind::kSuperset, query, nullptr);
  };

  StorageManager* r_storage = storage_;
  StorageManager* s_storage = s_side->storage_;
  const std::function<IoStats()> total_stats = [r_storage, s_storage]() {
    IoStats total = r_storage->TotalStats();
    if (s_storage != r_storage) total += s_storage->TotalStats();
    return total;
  };

  if (trace != nullptr) {
    trace->plan = JoinStrategyName(resolved.strategy);
    trace->kind = "join-subset";
    trace->dq = dt_r;
  }

  TraceTimer timer;  // feeds the latency histogram
  IoStats before = total_stats();
  StatusOr<JoinResult> ran =
      sigsetdb::ExecuteSetJoin(r_acc, s_acc, options_.sig, resolved,
                               execution_context(), trace, total_stats);
  if (!ran.ok()) {
    if (recorder_ != nullptr) {
      RecordOpTelemetry(FlightOp::kJoin, "join.latency_us", timer, before,
                        ran.status());
    }
    return ran.status();
  }
  JoinResult result = std::move(ran).value();
  IoStats delta = total_stats() - before;

  metrics_->counter("join.count")->Increment();
  metrics_->counter("join.pairs")->Increment(result.pairs.size());
  metrics_->counter("join.candidate_pairs")
      ->Increment(result.num_candidate_pairs);
  metrics_->counter("join.false_drop_pairs")
      ->Increment(result.num_false_drop_pairs);
  metrics_->counter("join.probes")->Increment(result.num_probes);
  metrics_->histogram("join.pages")->Record(delta.total());
  metrics_->histogram("join.latency_us")
      ->Record(static_cast<uint64_t>(timer.ElapsedMs() * 1000.0));

  SetIndexJoinResult out;
  out.plan = JoinStrategyName(resolved.strategy);
  out.page_accesses = delta.total();
  out.join = std::move(result);

  if (recorder_ != nullptr) {
    FlightEvent event;
    event.op = FlightOp::kJoin;
    event.epoch = current_epoch();
    event.wal_lsn = wal_ != nullptr ? wal_->last_lsn() : 0;
    event.SetDelta(delta);
    event.SetDetail(out.plan);
    recorder_->Record(event);
  }
  // The drift watchdog is keyed on selection stage names; join stages feed
  // EXPLAIN and the telemetry trace only.
  if (trace != nullptr) {
    AttachJoinPredictions(trace, s_side, resolved.strategy);
  }
  return out;
}

void SetIndex::AttachJoinPredictions(QueryTrace* trace, SetIndex* s_side,
                                     JoinStrategy strategy) const {
  const DatabaseParams db_r = LiveDbParams();
  const DatabaseParams db_s = s_side->LiveDbParams();
  int64_t dt_r = static_cast<int64_t>(std::llround(mean_cardinality()));
  if (dt_r < 1) dt_r = 1;
  int64_t dt_s =
      static_cast<int64_t>(std::llround(s_side->mean_cardinality()));
  if (dt_s < 1) dt_s = 1;
  const SignatureParams sig{options_.sig.f, options_.sig.m};
  NixParams nix;
  nix.fanout = s_side->options_.nix_fanout;
  StatusOr<JoinCostBreakdown> bd =
      BreakdownForJoinStrategy(db_r, dt_r, db_s, dt_s, sig, nix, strategy);
  if (!bd.ok() || bd->total() <= 0) return;
  trace->predicted_total = bd->total();
  for (TraceSpan& stage : trace->mutable_stages()) {
    if (stage.name == "r scan") {
      stage.predicted_pages = bd->r_scan;
    } else if (stage.name == "s scan") {
      stage.predicted_pages = bd->s_scan;
    } else if (stage.name == "probe loop") {
      stage.predicted_pages = bd->probe;
    }
  }
}

StatusOr<SetIndexJoinResult> SetIndex::ExecuteSetJoin(SetIndex* s_side,
                                                      const JoinSpec& spec) {
  return JoinInternal(s_side, spec, nullptr);
}

StatusOr<SetIndexJoinExplainResult> SetIndex::ExplainSetJoin(
    SetIndex* s_side, const JoinSpec& spec) {
  SetIndexJoinExplainResult out;
  SIGSET_ASSIGN_OR_RETURN(out.result, JoinInternal(s_side, spec, &out.trace));
  out.text = RenderExplain(out.trace);
  out.json = out.trace.ToJson();
  return out;
}

}  // namespace sigsetdb
