#include "nix/nested_index.h"

#include <algorithm>
#include <cassert>
#include <map>
#include <queue>

#include "sig/kernels.h"

namespace sigsetdb {

namespace {

// The intersection kernels run on raw uint64_t views of OID vectors; the
// casts below are only sound while an Oid is exactly its 8-byte value.
static_assert(sizeof(Oid) == sizeof(uint64_t));
static_assert(alignof(Oid) == alignof(uint64_t));

const uint64_t* OidWords(const std::vector<Oid>& v) {
  return reinterpret_cast<const uint64_t*>(v.data());
}

// acc ∩= postings through the dispatched kernel (smallest-list-first
// callers keep |acc| <= |postings|, but the kernel handles either order).
void IntersectInto(std::vector<Oid>* acc, const std::vector<Oid>& postings) {
  std::vector<Oid> out(std::min(acc->size(), postings.size()));
  const size_t count = KernelIntersectU64(
      OidWords(*acc), acc->size(), OidWords(postings), postings.size(),
      reinterpret_cast<uint64_t*>(out.data()));
  out.resize(count);
  *acc = std::move(out);
}

Status CheckNoReservedElement(const ElementSet& set_value) {
  if (!set_value.empty() && set_value.back() == kEmptySetKey) {
    return Status::InvalidArgument(
        "element value UINT64_MAX is reserved for the empty-set roster");
  }
  return Status::OK();
}

}  // namespace

StatusOr<std::unique_ptr<NestedIndex>> NestedIndex::Create(
    PageFile* file, uint32_t max_fanout) {
  SIGSET_ASSIGN_OR_RETURN(std::unique_ptr<BTree> tree,
                          BTree::Create(file, max_fanout));
  return std::unique_ptr<NestedIndex>(new NestedIndex(std::move(tree)));
}

StatusOr<std::unique_ptr<NestedIndex>> NestedIndex::CreateResetting(
    PageFile* file, uint32_t max_fanout) {
  SIGSET_ASSIGN_OR_RETURN(std::unique_ptr<BTree> tree,
                          BTree::CreateResetting(file, max_fanout));
  return std::unique_ptr<NestedIndex>(new NestedIndex(std::move(tree)));
}

StatusOr<std::unique_ptr<NestedIndex>> NestedIndex::CreateFromExisting(
    PageFile* file, uint32_t max_fanout, PageId root, uint32_t height,
    uint64_t leaf_pages, uint64_t internal_pages, uint64_t overflow_pages) {
  SIGSET_ASSIGN_OR_RETURN(
      std::unique_ptr<BTree> tree,
      BTree::CreateFromExisting(file, max_fanout, root, height, leaf_pages,
                                internal_pages, overflow_pages));
  std::unique_ptr<NestedIndex> index(new NestedIndex(std::move(tree)));
  // Load the persisted empty-set roster into the in-memory mirror once, at
  // open — query-time consultation is then I/O-free, so the paper-pinned
  // rc·Dq lookup counts are untouched.  This read is setup, like the
  // structural validation above it; reset the counters afterwards.
  SIGSET_ASSIGN_OR_RETURN(index->empty_oids_,
                          index->tree_->Lookup(kEmptySetKey));
  file->stats().Reset();
  return index;
}

void NestedIndex::RosterAdd(Oid oid) {
  auto it = std::lower_bound(empty_oids_.begin(), empty_oids_.end(), oid);
  if (it == empty_oids_.end() || *it != oid) empty_oids_.insert(it, oid);
}

void NestedIndex::RosterRemove(Oid oid) {
  auto it = std::lower_bound(empty_oids_.begin(), empty_oids_.end(), oid);
  if (it != empty_oids_.end() && *it == oid) empty_oids_.erase(it);
}

Status NestedIndex::Insert(Oid oid, const ElementSet& set_value) {
  SIGSET_RETURN_IF_ERROR(CheckNoReservedElement(set_value));
  if (set_value.empty()) {
    // ∅ writes no real postings; record the OID in the roster (persisted as
    // the sentinel key's posting list) so subset queries can surface it.
    SIGSET_RETURN_IF_ERROR(tree_->Insert(kEmptySetKey, oid));
    RosterAdd(oid);
    return Status::OK();
  }
  for (uint64_t element : set_value) {
    SIGSET_RETURN_IF_ERROR(tree_->Insert(element, oid));
  }
  return Status::OK();
}

Status NestedIndex::Remove(Oid oid, const ElementSet& set_value) {
  SIGSET_RETURN_IF_ERROR(CheckNoReservedElement(set_value));
  if (set_value.empty()) {
    SIGSET_RETURN_IF_ERROR(tree_->Remove(kEmptySetKey, oid));
    RosterRemove(oid);
    return Status::OK();
  }
  for (uint64_t element : set_value) {
    SIGSET_RETURN_IF_ERROR(tree_->Remove(element, oid));
  }
  return Status::OK();
}

Status NestedIndex::ApplyBatch(const std::vector<BatchOp>& ops) {
  // Aggregate the batch per element value (std::map keeps keys sorted, so
  // the descents walk the tree left to right; the sentinel roster key sorts
  // last), then apply each key's adds and removes with one descent.
  struct KeyChanges {
    std::vector<Oid> adds;
    std::vector<Oid> removes;
  };
  std::map<uint64_t, KeyChanges> by_key;
  for (const BatchOp& op : ops) {
    SIGSET_RETURN_IF_ERROR(CheckNoReservedElement(op.set_value));
    if (op.set_value.empty()) {
      KeyChanges& changes = by_key[kEmptySetKey];
      if (op.kind == BatchOp::Kind::kInsert) {
        changes.adds.push_back(op.oid);
      } else {
        changes.removes.push_back(op.oid);
      }
      continue;
    }
    for (uint64_t element : op.set_value) {
      KeyChanges& changes = by_key[element];
      if (op.kind == BatchOp::Kind::kInsert) {
        changes.adds.push_back(op.oid);
      } else {
        changes.removes.push_back(op.oid);
      }
    }
  }
  for (const auto& [key, changes] : by_key) {
    SIGSET_RETURN_IF_ERROR(tree_->Apply(key, changes.adds, changes.removes));
    if (key == kEmptySetKey) {
      for (Oid oid : changes.removes) RosterRemove(oid);
      for (Oid oid : changes.adds) RosterAdd(oid);
    }
  }
  return Status::OK();
}

StatusOr<std::vector<Oid>> NestedIndex::LookupPostings(
    uint64_t element) const {
  SIGSET_ASSIGN_OR_RETURN(std::vector<Oid> postings, tree_->Lookup(element));
  if (element == kEmptySetKey) {
    // A query naming the reserved value must not see the roster as if it
    // were a posting list; the descent above keeps the cost uniform.
    postings.clear();
  }
  return postings;
}

StatusOr<CandidateResult> NestedIndex::CandidatesSmartSuperset(
    const ElementSet& query, size_t use_elements) {
  size_t n = std::min(use_elements, query.size());
  if (n == 0) {
    return Status::InvalidArgument("superset query needs >= 1 element");
  }
  // Phase 1: look up every used element in the original query order, so the
  // I/O pattern (and the paper's rc·Dq charge) is exactly what it always
  // was.  No early exit on an empty intersection for the same reason.
  std::vector<std::vector<Oid>> lists;
  lists.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    SIGSET_ASSIGN_OR_RETURN(std::vector<Oid> postings,
                            LookupPostings(query[i]));
    assert(std::is_sorted(postings.begin(), postings.end()) &&
           "BTree::Lookup must return sorted postings");
    lists.push_back(std::move(postings));
  }
  // Phase 2: intersect smallest-list-first — every kernel pass then runs
  // with the shortest possible accumulator, which is where the galloping /
  // SIMD paths earn their keep.  Pure CPU; page reads already happened.
  std::sort(lists.begin(), lists.end(),
            [](const std::vector<Oid>& a, const std::vector<Oid>& b) {
              return a.size() < b.size();
            });
  CandidateResult result;
  result.oids = std::move(lists.front());
  for (size_t i = 1; i < lists.size(); ++i) {
    IntersectInto(&result.oids, lists[i]);
  }
  result.exact = (n == query.size());
  return result;
}

StatusOr<CandidateResult> NestedIndex::Candidates(QueryKind kind,
                                                  const ElementSet& query) {
  switch (kind) {
    case QueryKind::kSuperset:
      return CandidatesSmartSuperset(query, query.size());
    case QueryKind::kProperSuperset: {
      // Same intersection as ⊇, but the strict-cardinality check needs the
      // stored set, so the result is no longer exact.
      SIGSET_ASSIGN_OR_RETURN(CandidateResult result,
                              CandidatesSmartSuperset(query, query.size()));
      result.exact = false;
      return result;
    }
    case QueryKind::kSubset:
    case QueryKind::kProperSubset:
    case QueryKind::kOverlaps: {
      // Union of the postings of all query elements: for kOverlaps this is
      // the exact answer; for kSubset it is a candidate set (an object can
      // share an element with Q yet contain elements outside Q).  The
      // sorted lists are combined with a k-way heap merge straight into the
      // output, so the transient footprint is the union size — not the sum
      // of posting lengths the old concat-then-sort-unique path peaked at.
      std::vector<std::vector<Oid>> lists;
      lists.reserve(query.size());
      size_t longest = 0;
      for (uint64_t element : query) {
        SIGSET_ASSIGN_OR_RETURN(std::vector<Oid> postings,
                                LookupPostings(element));
        assert(std::is_sorted(postings.begin(), postings.end()) &&
               "BTree::Lookup must return sorted postings");
        longest = std::max(longest, postings.size());
        if (!postings.empty()) lists.push_back(std::move(postings));
      }
      // Min-heap of (head value, list index); pop-advance with dedup
      // against the last emitted OID yields the sorted-unique union.
      using HeapEntry = std::pair<Oid, size_t>;
      std::priority_queue<HeapEntry, std::vector<HeapEntry>,
                          std::greater<HeapEntry>>
          heap;
      std::vector<size_t> cursor(lists.size(), 0);
      for (size_t l = 0; l < lists.size(); ++l) {
        heap.emplace(lists[l][0], l);
      }
      CandidateResult result;
      result.oids.reserve(longest);
      while (!heap.empty()) {
        auto [oid, l] = heap.top();
        heap.pop();
        if (result.oids.empty() || result.oids.back() != oid) {
          result.oids.push_back(oid);
        }
        if (++cursor[l] < lists[l].size()) {
          heap.emplace(lists[l][cursor[l]], l);
        }
      }
      if (kind != QueryKind::kOverlaps && !empty_oids_.empty()) {
        // ∅ ⊆ Q (and ∅ ⊊ Q) for every non-empty Q, but empty sets write no
        // postings, so the union alone can never surface them — this merge
        // is the actual fix for the empty-set candidate miss.  Roster OIDs
        // appear in no posting list, so the merge stays duplicate-free.
        // kOverlaps excludes them: ∅ shares no element with any query.
        std::vector<Oid> merged;
        merged.reserve(result.oids.size() + empty_oids_.size());
        std::merge(result.oids.begin(), result.oids.end(),
                   empty_oids_.begin(), empty_oids_.end(),
                   std::back_inserter(merged));
        result.oids = std::move(merged);
      }
      result.exact = (kind == QueryKind::kOverlaps);
      return result;  // ⊊ strictness is checked at resolution
    }
    case QueryKind::kEquals: {
      // T = Q ⟹ T ⊇ Q, so the intersection is a candidate superset; the
      // resolution step rejects objects with extra elements.  ∅ never
      // qualifies (Q is non-empty), and it is absent here by construction.
      SIGSET_ASSIGN_OR_RETURN(CandidateResult result,
                              CandidatesSmartSuperset(query, query.size()));
      result.exact = false;
      return result;
    }
  }
  return Status::Internal("unhandled query kind");
}

Status NestedIndex::BulkBuild(const std::vector<Oid>& oids,
                              const std::vector<ElementSet>& sets) {
  if (oids.size() != sets.size()) {
    return Status::InvalidArgument("oids/sets size mismatch");
  }
  empty_oids_.clear();
  std::map<uint64_t, std::vector<Oid>> postings;
  std::vector<Oid> roster;
  for (size_t i = 0; i < sets.size(); ++i) {
    SIGSET_RETURN_IF_ERROR(CheckNoReservedElement(sets[i]));
    if (sets[i].empty()) {
      roster.push_back(oids[i]);
      continue;
    }
    for (uint64_t element : sets[i]) {
      postings[element].push_back(oids[i]);
    }
  }
  if (!roster.empty()) {
    // The sentinel sorts after every real element, so appending it keeps
    // the bulk load's strictly-increasing key order.
    postings[kEmptySetKey] = std::move(roster);
  }
  std::vector<BTreeEntry> entries;
  entries.reserve(postings.size());
  for (auto& [key, oid_list] : postings) {
    std::sort(oid_list.begin(), oid_list.end());
    if (key == kEmptySetKey) empty_oids_ = oid_list;
    entries.push_back(BTreeEntry{key, std::move(oid_list)});
  }
  return tree_->BulkLoad(entries);
}

}  // namespace sigsetdb
