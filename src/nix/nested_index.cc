#include "nix/nested_index.h"

#include <algorithm>
#include <map>

namespace sigsetdb {

namespace {

// Sorted-vector intersection.
std::vector<Oid> Intersect(const std::vector<Oid>& a,
                           const std::vector<Oid>& b) {
  std::vector<Oid> out;
  out.reserve(std::min(a.size(), b.size()));
  std::set_intersection(a.begin(), a.end(), b.begin(), b.end(),
                        std::back_inserter(out));
  return out;
}

std::vector<Oid> SortedUnique(std::vector<Oid> v) {
  std::sort(v.begin(), v.end());
  v.erase(std::unique(v.begin(), v.end()), v.end());
  return v;
}

}  // namespace

StatusOr<std::unique_ptr<NestedIndex>> NestedIndex::Create(
    PageFile* file, uint32_t max_fanout) {
  SIGSET_ASSIGN_OR_RETURN(std::unique_ptr<BTree> tree,
                          BTree::Create(file, max_fanout));
  return std::unique_ptr<NestedIndex>(new NestedIndex(std::move(tree)));
}

StatusOr<std::unique_ptr<NestedIndex>> NestedIndex::CreateResetting(
    PageFile* file, uint32_t max_fanout) {
  SIGSET_ASSIGN_OR_RETURN(std::unique_ptr<BTree> tree,
                          BTree::CreateResetting(file, max_fanout));
  return std::unique_ptr<NestedIndex>(new NestedIndex(std::move(tree)));
}

StatusOr<std::unique_ptr<NestedIndex>> NestedIndex::CreateFromExisting(
    PageFile* file, uint32_t max_fanout, PageId root, uint32_t height,
    uint64_t leaf_pages, uint64_t internal_pages, uint64_t overflow_pages) {
  SIGSET_ASSIGN_OR_RETURN(
      std::unique_ptr<BTree> tree,
      BTree::CreateFromExisting(file, max_fanout, root, height, leaf_pages,
                                internal_pages, overflow_pages));
  return std::unique_ptr<NestedIndex>(new NestedIndex(std::move(tree)));
}

Status NestedIndex::Insert(Oid oid, const ElementSet& set_value) {
  for (uint64_t element : set_value) {
    SIGSET_RETURN_IF_ERROR(tree_->Insert(element, oid));
  }
  return Status::OK();
}

Status NestedIndex::Remove(Oid oid, const ElementSet& set_value) {
  for (uint64_t element : set_value) {
    SIGSET_RETURN_IF_ERROR(tree_->Remove(element, oid));
  }
  return Status::OK();
}

Status NestedIndex::ApplyBatch(const std::vector<BatchOp>& ops) {
  // Aggregate the batch per element value (std::map keeps keys sorted, so
  // the descents walk the tree left to right), then apply each key's adds
  // and removes with one descent.
  struct KeyChanges {
    std::vector<Oid> adds;
    std::vector<Oid> removes;
  };
  std::map<uint64_t, KeyChanges> by_key;
  for (const BatchOp& op : ops) {
    for (uint64_t element : op.set_value) {
      KeyChanges& changes = by_key[element];
      if (op.kind == BatchOp::Kind::kInsert) {
        changes.adds.push_back(op.oid);
      } else {
        changes.removes.push_back(op.oid);
      }
    }
  }
  for (const auto& [key, changes] : by_key) {
    SIGSET_RETURN_IF_ERROR(tree_->Apply(key, changes.adds, changes.removes));
  }
  return Status::OK();
}

StatusOr<CandidateResult> NestedIndex::CandidatesSmartSuperset(
    const ElementSet& query, size_t use_elements) {
  size_t n = std::min(use_elements, query.size());
  if (n == 0) {
    return Status::InvalidArgument("superset query needs >= 1 element");
  }
  CandidateResult result;
  for (size_t i = 0; i < n; ++i) {
    SIGSET_ASSIGN_OR_RETURN(std::vector<Oid> postings,
                            tree_->Lookup(query[i]));
    std::sort(postings.begin(), postings.end());
    if (i == 0) {
      result.oids = std::move(postings);
    } else {
      result.oids = Intersect(result.oids, postings);
    }
    // No early exit on an empty intersection: the paper's cost model (and
    // its measured reproduction) charges rc·Dq index look-ups regardless.
  }
  result.exact = (n == query.size());
  return result;
}

StatusOr<CandidateResult> NestedIndex::Candidates(QueryKind kind,
                                                  const ElementSet& query) {
  switch (kind) {
    case QueryKind::kSuperset:
      return CandidatesSmartSuperset(query, query.size());
    case QueryKind::kProperSuperset: {
      // Same intersection as ⊇, but the strict-cardinality check needs the
      // stored set, so the result is no longer exact.
      SIGSET_ASSIGN_OR_RETURN(CandidateResult result,
                              CandidatesSmartSuperset(query, query.size()));
      result.exact = false;
      return result;
    }
    case QueryKind::kSubset:
    case QueryKind::kProperSubset:
    case QueryKind::kOverlaps: {
      // Union of the postings of all query elements: for kOverlaps this is
      // the exact answer; for kSubset it is a candidate set (an object can
      // share an element with Q yet contain elements outside Q).
      std::vector<Oid> merged;
      for (uint64_t element : query) {
        SIGSET_ASSIGN_OR_RETURN(std::vector<Oid> postings,
                                tree_->Lookup(element));
        merged.insert(merged.end(), postings.begin(), postings.end());
      }
      CandidateResult result;
      result.oids = SortedUnique(std::move(merged));
      result.exact = (kind == QueryKind::kOverlaps);
      return result;  // ⊊ strictness is checked at resolution
    }
    case QueryKind::kEquals: {
      // T = Q ⟹ T ⊇ Q, so the intersection is a candidate superset; the
      // resolution step rejects objects with extra elements.
      SIGSET_ASSIGN_OR_RETURN(CandidateResult result,
                              CandidatesSmartSuperset(query, query.size()));
      result.exact = false;
      return result;
    }
  }
  return Status::Internal("unhandled query kind");
}

Status NestedIndex::BulkBuild(const std::vector<Oid>& oids,
                              const std::vector<ElementSet>& sets) {
  if (oids.size() != sets.size()) {
    return Status::InvalidArgument("oids/sets size mismatch");
  }
  std::map<uint64_t, std::vector<Oid>> postings;
  for (size_t i = 0; i < sets.size(); ++i) {
    for (uint64_t element : sets[i]) {
      postings[element].push_back(oids[i]);
    }
  }
  std::vector<BTreeEntry> entries;
  entries.reserve(postings.size());
  for (auto& [key, oid_list] : postings) {
    std::sort(oid_list.begin(), oid_list.end());
    entries.push_back(BTreeEntry{key, std::move(oid_list)});
  }
  return tree_->BulkLoad(entries);
}

}  // namespace sigsetdb
