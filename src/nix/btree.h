// A page-based B+-tree mapping 64-bit keys to OID posting lists — the
// storage engine behind the nested index (paper §4.3).
//
// Layout
//   Internal node:  header | child0 | (key, child)*        (fanout-capped)
//   Leaf node:      header | sorted offset directory | record heap
//   Leaf record:    key (8) | count (2) | count × OID (8)
//
// The paper's NIX stores, per distinct set-element value, the list of OIDs
// of objects containing it ("[DB], {s1, s2}").  Leaf entries are exactly
// that: Il = d·oid + kl + oidn bytes.  The internal fanout is capped at the
// paper's f = 218 by default so that the reproduced tree has the same page
// counts (Table 5) and height (rc = 3) as the model.
//
// Modifications rewrite whole nodes (parse → modify → repack), splitting on
// overflow.  Deletion removes an OID from a posting (and the entry when the
// posting empties) without rebalancing — matching the paper's update model,
// which "does not consider node splits".
//
// Posting lists larger than one page spill into *overflow chains*: the leaf
// entry then stores [key | marker | total | first-overflow-page] and the
// OIDs live in chained overflow pages.  The paper's parameters (d = Dt·N/V
// ≤ 246 postings) never overflow, so the reproduced page counts are
// unaffected; the chains make the index robust under skewed workloads.
//
// BulkLoad packs leaves to capacity and builds packed upper levels, which is
// what the paper's storage formulas assume (lp = ⌈V / ⌊P/Il⌋⌉).

#ifndef SIGSET_NIX_BTREE_H_
#define SIGSET_NIX_BTREE_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <utility>
#include <vector>

#include "obj/oid.h"
#include "storage/page_file.h"
#include "util/status.h"

namespace sigsetdb {

// The paper's non-leaf fanout (Table 4: f = 218).
inline constexpr uint32_t kPaperFanout = 218;

// One leaf entry in parsed form.
struct BTreeEntry {
  uint64_t key;
  std::vector<Oid> postings;
};

// B+-tree with OID posting lists.
class BTree {
 public:
  // Creates an empty tree in `file` (not owned; must be empty).
  // `max_fanout` caps the number of children per internal node.
  static StatusOr<std::unique_ptr<BTree>> Create(
      PageFile* file, uint32_t max_fanout = kPaperFanout);

  // Discards whatever tree `file` holds and starts an empty one: a fresh
  // root leaf is allocated at the file's end and the old pages are left as
  // unreachable orphans.  Used by WAL recovery, which rebuilds the index
  // from the replayed object store via BulkLoad (an empty file just
  // delegates to Create).
  static StatusOr<std::unique_ptr<BTree>> CreateResetting(
      PageFile* file, uint32_t max_fanout = kPaperFanout);

  // Reopens a tree over a previously populated file.  The structural
  // metadata (root page, height, page counts) comes from the manifest
  // written by SetIndex::Checkpoint().
  static StatusOr<std::unique_ptr<BTree>> CreateFromExisting(
      PageFile* file, uint32_t max_fanout, PageId root, uint32_t height,
      uint64_t leaf_pages, uint64_t internal_pages,
      uint64_t overflow_pages = 0);

  // The current root page id (persisted at checkpoint time).
  PageId root() const { return root_; }

  // Head of the free-page list (drained overflow pages are recycled;
  // persisted at checkpoint time).  kInvalidPage when empty.
  PageId free_list_head() const { return free_list_head_; }

  // Restores the free list after reopen (metadata from the manifest).
  void RestoreFreeList(PageId head, uint64_t pages) {
    free_list_head_ = head;
    free_pages_ = pages;
  }

  // Number of pages currently parked on the free list.
  uint64_t free_pages() const { return free_pages_; }

  // Adds `oid` to the posting list of `key` (creating the entry if absent).
  Status Insert(uint64_t key, Oid oid);

  // Applies a group of posting changes to `key` with ONE descent: removes
  // first, then adds, rewriting the key's record (and its overflow chain,
  // when present) once.  Equivalent to the same sequence of Insert/Remove
  // calls — including kNotFound when a removed oid (or the key) is absent —
  // but costs rc + O(1) page accesses per distinct key instead of per
  // posting, which is what makes batched NIX updates amortize.  Only one
  // record changes, so at most one leaf split (plus promotions) can occur.
  Status Apply(uint64_t key, const std::vector<Oid>& adds,
               const std::vector<Oid>& removes);

  // Removes one occurrence of `oid` from `key`'s posting list; removes the
  // entry when the posting empties.  kNotFound if absent.
  Status Remove(uint64_t key, Oid oid);

  // Returns the posting list of `key` in ascending OID order (empty vector
  // when the key is absent; the traversal still costs height()+1 page
  // reads).  Inline records are stored sorted so this is free; an overflow
  // chain — unordered on disk — is sorted once here, not per reader.
  StatusOr<std::vector<Oid>> Lookup(uint64_t key) const;

  // Bulk-builds a packed tree from entries sorted by strictly increasing
  // key.  The tree must be freshly created (empty).
  Status BulkLoad(const std::vector<BTreeEntry>& sorted_entries);

  // Visits every entry in key order (used by tests and integrity checks).
  Status ForEachEntry(
      const std::function<void(const BTreeEntry&)>& fn) const;

  // Walks the tree reachable from the recovered root with bounds-checked
  // parsing and verifies it against the checkpointed metadata: node types
  // match their depth, keys are ordered, no page is reached twice, the leaf
  // chain equals the tree's left-to-right leaf order, overflow chains carry
  // exactly their recorded totals, and the reachable leaf/internal/overflow
  // page counts equal the manifest's.  Any mismatch is a clean kCorruption
  // error — the defense that turns a torn post-checkpoint split into a
  // refused open instead of wrong query answers.
  Status ValidateStructure() const;

  // Structural counters (the model's lp / nlp / height).
  uint64_t leaf_pages() const { return leaf_pages_; }
  uint64_t internal_pages() const { return internal_pages_; }
  uint64_t overflow_pages() const { return overflow_pages_; }
  uint64_t total_pages() const {
    return leaf_pages_ + internal_pages_ + overflow_pages_;
  }
  // Number of internal levels above the leaves (paper: 2 at V = 13,000, so
  // a lookup costs height()+1 = 3 page reads).
  uint32_t height() const { return height_; }

  // The backing page file (for access-counter snapshots in query tracing).
  const PageFile& file() const { return *file_; }

 private:
  BTree(PageFile* file, uint32_t max_fanout)
      : file_(file), max_fanout_(max_fanout) {}

  // Recursive insert; sets `*promoted`/`*new_child` when `page_id` split.
  Status InsertRec(PageId page_id, uint64_t key, Oid oid, bool* split,
                   uint64_t* promoted, PageId* new_child);

  Status LeafInsert(PageId page_id, Page* page, uint64_t key, Oid oid,
                    bool* split, uint64_t* promoted, PageId* new_child);

  // Recursive grouped-change descent for Apply(); same promotion contract
  // as InsertRec.
  Status ApplyRec(PageId page_id, uint64_t key, const std::vector<Oid>& adds,
                  const std::vector<Oid>& removes, bool* split,
                  uint64_t* promoted, PageId* new_child);
  Status LeafApply(PageId page_id, Page* page, uint64_t key,
                   const std::vector<Oid>& adds,
                   const std::vector<Oid>& removes, bool* split,
                   uint64_t* promoted, PageId* new_child);

  // Overflow-chain helpers (declared here because they touch file_ and the
  // overflow page counter); see btree.cc for the record/page formats.
  Status ReadOverflowChain(PageId first, uint32_t expected,
                           std::vector<Oid>* out) const;
  StatusOr<PageId> WriteOverflowChain(const std::vector<Oid>& postings);
  Status AppendToOverflowChain(PageId* first, Oid oid);
  Status RemoveFromOverflowChain(PageId first, Oid oid, bool* removed);

  // Page recycling: drained overflow chains go onto a free list (linked
  // through each page's first word) and are reused before growing the file.
  StatusOr<PageId> AllocatePage();
  Status FreeChain(PageId first);

  // ValidateStructure helpers.  `leaves` collects (leaf page, next pointer)
  // in left-to-right order; `visited` guards against cycles and sharing.
  Status ValidateNode(PageId page_id, uint32_t depth,
                      std::vector<bool>* visited,
                      std::vector<std::pair<PageId, PageId>>* leaves,
                      uint64_t* internals, uint64_t* overflow) const;
  Status ValidateOverflowChain(PageId first, uint32_t total,
                               std::vector<bool>* visited,
                               uint64_t* overflow) const;

  PageFile* file_;
  uint32_t max_fanout_;
  PageId root_ = kInvalidPage;
  uint64_t leaf_pages_ = 0;
  uint64_t internal_pages_ = 0;
  uint64_t overflow_pages_ = 0;
  PageId free_list_head_ = kInvalidPage;
  uint64_t free_pages_ = 0;
  uint32_t height_ = 0;
};

}  // namespace sigsetdb

#endif  // SIGSET_NIX_BTREE_H_
