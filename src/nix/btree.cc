#include "nix/btree.h"

#include <algorithm>
#include <cstring>

#include "util/failpoint.h"

namespace sigsetdb {

namespace {

constexpr uint8_t kLeafType = 1;
constexpr uint8_t kInternalType = 2;
constexpr size_t kHeaderBytes = 8;      // type, pad, num_entries, next_leaf
constexpr size_t kInternalEntryStride = 12;  // key(8) + child(4)
constexpr size_t kInternalFixed = kHeaderBytes + 4;  // + child0

// Leaf record count-field sentinel marking an overflow record.
constexpr uint16_t kOverflowMarker = 0xffff;
// Largest inline posting list: the record (8 key + 2 count + 8n) plus its
// 2-byte directory slot must fit a leaf page.
constexpr size_t kMaxInlinePostings =
    (kPageSize - kHeaderBytes - 2 - 10) / 8;  // 509
// Overflow page: next(4) + count(2) + pad(2), then OIDs.
constexpr size_t kOverflowHeader = 8;
constexpr size_t kOverflowCapacity = (kPageSize - kOverflowHeader) / 8;  // 511

uint8_t NodeType(const Page& page) { return page.ReadAt<uint8_t>(0); }
uint16_t NumEntries(const Page& page) { return page.ReadAt<uint16_t>(2); }

// ---- internal node serialization ----

struct ParsedInternal {
  std::vector<uint64_t> keys;
  std::vector<PageId> children;  // keys.size() + 1
};

ParsedInternal ParseInternal(const Page& page) {
  ParsedInternal node;
  uint16_t n = NumEntries(page);
  node.keys.reserve(n);
  node.children.reserve(n + 1);
  node.children.push_back(page.ReadAt<uint32_t>(kHeaderBytes));
  size_t off = kInternalFixed;
  for (uint16_t i = 0; i < n; ++i, off += kInternalEntryStride) {
    node.keys.push_back(page.ReadAt<uint64_t>(off));
    node.children.push_back(page.ReadAt<uint32_t>(off + 8));
  }
  return node;
}

void WriteInternal(const ParsedInternal& node, Page* page) {
  page->Zero();
  page->WriteAt<uint8_t>(0, kInternalType);
  page->WriteAt<uint16_t>(2, static_cast<uint16_t>(node.keys.size()));
  page->WriteAt<uint32_t>(4, kInvalidPage);
  page->WriteAt<uint32_t>(kHeaderBytes, node.children[0]);
  size_t off = kInternalFixed;
  for (size_t i = 0; i < node.keys.size(); ++i, off += kInternalEntryStride) {
    page->WriteAt<uint64_t>(off, node.keys[i]);
    page->WriteAt<uint32_t>(off + 8, node.children[i + 1]);
  }
}

// Maximum number of keys per internal node given the fanout cap and the
// page's byte capacity.
size_t InternalMaxKeys(uint32_t max_fanout) {
  size_t by_bytes = (kPageSize - kInternalFixed) / kInternalEntryStride;
  size_t by_fanout = max_fanout - 1;
  return std::min(by_bytes, by_fanout);
}

// ---- leaf node serialization ----

// Parsed leaf record: either an inline posting list or a pointer to an
// overflow chain.
struct LeafRecord {
  uint64_t key = 0;
  bool overflow = false;
  std::vector<Oid> inline_postings;   // when !overflow
  uint32_t total = 0;                 // when overflow
  PageId first_page = kInvalidPage;   // when overflow
};

// Serialized bytes of one leaf record including its directory slot.
size_t LeafRecordBytes(const LeafRecord& record) {
  if (record.overflow) return 2 + 8 + 2 + 4 + 4;
  return 2 + 8 + 2 + record.inline_postings.size() * 8;
}

size_t LeafBytes(const std::vector<LeafRecord>& records) {
  size_t total = kHeaderBytes;
  for (const auto& r : records) total += LeafRecordBytes(r);
  return total;
}

PageId LeafNext(const Page& page) { return page.ReadAt<uint32_t>(4); }

std::vector<LeafRecord> ParseLeaf(const Page& page) {
  uint16_t n = NumEntries(page);
  std::vector<LeafRecord> records;
  records.reserve(n);
  for (uint16_t i = 0; i < n; ++i) {
    uint16_t off = page.ReadAt<uint16_t>(kHeaderBytes + i * 2);
    LeafRecord record;
    record.key = page.ReadAt<uint64_t>(off);
    uint16_t count = page.ReadAt<uint16_t>(off + 8);
    if (count == kOverflowMarker) {
      record.overflow = true;
      record.total = page.ReadAt<uint32_t>(off + 10);
      record.first_page = page.ReadAt<uint32_t>(off + 14);
    } else {
      record.inline_postings.reserve(count);
      for (uint16_t j = 0; j < count; ++j) {
        record.inline_postings.push_back(
            Oid(page.ReadAt<uint64_t>(off + 10 + j * 8)));
      }
    }
    records.push_back(std::move(record));
  }
  return records;
}

// Serializes `records` (sorted by key) into `page`; returns false when they
// do not fit.
bool WriteLeaf(const std::vector<LeafRecord>& records, PageId next_leaf,
               Page* page) {
  if (LeafBytes(records) > kPageSize) return false;
  page->Zero();
  page->WriteAt<uint8_t>(0, kLeafType);
  page->WriteAt<uint16_t>(2, static_cast<uint16_t>(records.size()));
  page->WriteAt<uint32_t>(4, next_leaf);
  size_t heap = kPageSize;
  for (size_t i = 0; i < records.size(); ++i) {
    const LeafRecord& r = records[i];
    size_t rec = LeafRecordBytes(r) - 2;  // minus the directory slot
    heap -= rec;
    page->WriteAt<uint16_t>(kHeaderBytes + i * 2, static_cast<uint16_t>(heap));
    page->WriteAt<uint64_t>(heap, r.key);
    if (r.overflow) {
      page->WriteAt<uint16_t>(heap + 8, kOverflowMarker);
      page->WriteAt<uint32_t>(heap + 10, r.total);
      page->WriteAt<uint32_t>(heap + 14, r.first_page);
    } else {
      page->WriteAt<uint16_t>(
          heap + 8, static_cast<uint16_t>(r.inline_postings.size()));
      for (size_t j = 0; j < r.inline_postings.size(); ++j) {
        page->WriteAt<uint64_t>(heap + 10 + j * 8,
                                r.inline_postings[j].value());
      }
    }
  }
  return true;
}

// Index of the child to follow for `key`.
size_t ChildIndex(const ParsedInternal& node, uint64_t key) {
  // children[i] holds keys < keys[i]; children[n] holds keys >= keys[n-1].
  return static_cast<size_t>(
      std::upper_bound(node.keys.begin(), node.keys.end(), key) -
      node.keys.begin());
}

// lower_bound over parsed leaf records.
std::vector<LeafRecord>::iterator FindRecord(std::vector<LeafRecord>& records,
                                             uint64_t key) {
  return std::lower_bound(
      records.begin(), records.end(), key,
      [](const LeafRecord& r, uint64_t k) { return r.key < k; });
}

}  // namespace

// ---- page recycling ----

StatusOr<PageId> BTree::AllocatePage() {
  if (free_list_head_ == kInvalidPage) return file_->Allocate();
  PageId id = free_list_head_;
  Page page;
  SIGSET_RETURN_IF_ERROR(file_->Read(id, &page));
  free_list_head_ = page.ReadAt<uint32_t>(0);
  --free_pages_;
  return id;
}

Status BTree::FreeChain(PageId first) {
  // Walk to the chain's tail, then splice the whole chain onto the list.
  Page page;
  PageId current = first;
  while (true) {
    SIGSET_RETURN_IF_ERROR(file_->Read(current, &page));
    ++free_pages_;
    --overflow_pages_;
    PageId next = page.ReadAt<uint32_t>(0);
    if (next == kInvalidPage) break;
    current = next;
  }
  page.WriteAt<uint32_t>(0, free_list_head_);
  SIGSET_RETURN_IF_ERROR(file_->Write(current, page));
  free_list_head_ = first;
  return Status::OK();
}

// ---- overflow chains ----

Status BTree::ReadOverflowChain(PageId first, uint32_t expected,
                                std::vector<Oid>* out) const {
  out->reserve(out->size() + expected);
  Page page;
  PageId current = first;
  while (current != kInvalidPage) {
    SIGSET_RETURN_IF_ERROR(file_->Read(current, &page));
    uint16_t count = page.ReadAt<uint16_t>(4);
    for (uint16_t i = 0; i < count; ++i) {
      out->push_back(Oid(page.ReadAt<uint64_t>(kOverflowHeader + i * 8)));
    }
    current = page.ReadAt<uint32_t>(0);
  }
  return Status::OK();
}

StatusOr<PageId> BTree::WriteOverflowChain(const std::vector<Oid>& postings) {
  // Build the chain back to front so each page links to the next.
  PageId next = kInvalidPage;
  Page page;
  size_t remaining = postings.size();
  while (remaining > 0) {
    size_t chunk = remaining % kOverflowCapacity;
    if (chunk == 0) chunk = kOverflowCapacity;
    size_t begin = remaining - chunk;
    page.Zero();
    page.WriteAt<uint32_t>(0, next);
    page.WriteAt<uint16_t>(4, static_cast<uint16_t>(chunk));
    for (size_t i = 0; i < chunk; ++i) {
      page.WriteAt<uint64_t>(kOverflowHeader + i * 8,
                             postings[begin + i].value());
    }
    SIGSET_ASSIGN_OR_RETURN(PageId id, AllocatePage());
    SIGSET_RETURN_IF_ERROR(file_->Write(id, page));
    ++overflow_pages_;
    next = id;
    remaining = begin;
  }
  return next;
}

Status BTree::AppendToOverflowChain(PageId* first, Oid oid) {
  Page page;
  SIGSET_RETURN_IF_ERROR(file_->Read(*first, &page));
  uint16_t count = page.ReadAt<uint16_t>(4);
  if (count < kOverflowCapacity) {
    page.WriteAt<uint64_t>(kOverflowHeader + count * 8, oid.value());
    page.WriteAt<uint16_t>(4, static_cast<uint16_t>(count + 1));
    return file_->Write(*first, page);
  }
  // Head page full: prepend a fresh page so appends stay O(1).
  page.Zero();
  page.WriteAt<uint32_t>(0, *first);
  page.WriteAt<uint16_t>(4, 1);
  page.WriteAt<uint64_t>(kOverflowHeader, oid.value());
  SIGSET_ASSIGN_OR_RETURN(PageId id, AllocatePage());
  SIGSET_RETURN_IF_ERROR(file_->Write(id, page));
  ++overflow_pages_;
  *first = id;
  return Status::OK();
}

Status BTree::RemoveFromOverflowChain(PageId first, Oid oid, bool* removed) {
  *removed = false;
  Page page;
  PageId current = first;
  while (current != kInvalidPage) {
    SIGSET_RETURN_IF_ERROR(file_->Read(current, &page));
    uint16_t count = page.ReadAt<uint16_t>(4);
    for (uint16_t i = 0; i < count; ++i) {
      if (page.ReadAt<uint64_t>(kOverflowHeader + i * 8) == oid.value()) {
        // Swap in the page's last OID and shrink.  Chains are the one place
        // postings stay unordered on disk (swap-remove here, prepend-head in
        // AppendToOverflowChain); Lookup sorts a chain exactly once when it
        // materializes the list, so readers still see ascending postings.
        page.WriteAt<uint64_t>(
            kOverflowHeader + i * 8,
            page.ReadAt<uint64_t>(kOverflowHeader + (count - 1) * 8));
        page.WriteAt<uint16_t>(4, static_cast<uint16_t>(count - 1));
        SIGSET_RETURN_IF_ERROR(file_->Write(current, page));
        *removed = true;
        return Status::OK();
      }
    }
    current = page.ReadAt<uint32_t>(0);
  }
  return Status::OK();
}

// ---- tree lifecycle ----

StatusOr<std::unique_ptr<BTree>> BTree::Create(PageFile* file,
                                               uint32_t max_fanout) {
  if (max_fanout < 2) {
    return Status::InvalidArgument("fanout must be at least 2");
  }
  if (file->num_pages() != 0) {
    return Status::InvalidArgument("BTree::Create requires an empty file");
  }
  std::unique_ptr<BTree> tree(new BTree(file, max_fanout));
  SIGSET_ASSIGN_OR_RETURN(tree->root_, file->Allocate());
  Page page;
  if (!WriteLeaf({}, kInvalidPage, &page)) {
    return Status::Internal("empty leaf must fit");
  }
  SIGSET_RETURN_IF_ERROR(file->Write(tree->root_, page));
  tree->leaf_pages_ = 1;
  // Creation I/O is setup, not an experiment cost.
  file->stats().Reset();
  return tree;
}

StatusOr<std::unique_ptr<BTree>> BTree::CreateResetting(PageFile* file,
                                                        uint32_t max_fanout) {
  if (file->num_pages() == 0) return Create(file, max_fanout);
  if (max_fanout < 2) {
    return Status::InvalidArgument("fanout must be at least 2");
  }
  // WAL recovery path: the file holds a tree whose metadata (or pages) may
  // be stale relative to the replayed object store.  Start over with a
  // fresh empty root page and let BulkLoad repack; the old pages become
  // unreachable orphans, which is safe — StoragePages() reports the
  // structural counters, not the file size, and the next Compact() rewrites
  // the file densely anyway.
  std::unique_ptr<BTree> tree(new BTree(file, max_fanout));
  SIGSET_ASSIGN_OR_RETURN(tree->root_, file->Allocate());
  Page page;
  if (!WriteLeaf({}, kInvalidPage, &page)) {
    return Status::Internal("empty leaf must fit");
  }
  SIGSET_RETURN_IF_ERROR(file->Write(tree->root_, page));
  tree->leaf_pages_ = 1;
  file->stats().Reset();
  return tree;
}

StatusOr<std::unique_ptr<BTree>> BTree::CreateFromExisting(
    PageFile* file, uint32_t max_fanout, PageId root, uint32_t height,
    uint64_t leaf_pages, uint64_t internal_pages, uint64_t overflow_pages) {
  if (max_fanout < 2) {
    return Status::InvalidArgument("fanout must be at least 2");
  }
  if (root >= file->num_pages()) {
    return Status::Corruption("recovered root page out of range");
  }
  std::unique_ptr<BTree> tree(new BTree(file, max_fanout));
  tree->root_ = root;
  tree->height_ = height;
  tree->leaf_pages_ = leaf_pages;
  tree->internal_pages_ = internal_pages;
  tree->overflow_pages_ = overflow_pages;
  // Sanity check: the root page must parse as a node of the right kind.
  Page page;
  SIGSET_RETURN_IF_ERROR(file->Read(root, &page));
  uint8_t type = page.ReadAt<uint8_t>(0);
  if ((height == 0 && type != kLeafType) ||
      (height > 0 && type != kInternalType)) {
    return Status::Corruption("recovered root has wrong node type");
  }
  // Full structural walk: a crash after the checkpoint can leave the pages
  // ahead of this (stale) metadata; refuse to serve such a tree rather than
  // risk wrong answers.
  SIGSET_RETURN_IF_ERROR(tree->ValidateStructure());
  // Recovery I/O is setup, not an experiment cost.
  file->stats().Reset();
  return tree;
}

// ---- recovery validation ----

Status BTree::ValidateOverflowChain(PageId first, uint32_t total,
                                    std::vector<bool>* visited,
                                    uint64_t* overflow) const {
  Page page;
  PageId current = first;
  uint64_t sum = 0;
  while (current != kInvalidPage) {
    if (current >= file_->num_pages()) {
      return Status::Corruption("overflow page out of range");
    }
    if ((*visited)[current]) {
      return Status::Corruption("overflow chain revisits a page");
    }
    (*visited)[current] = true;
    ++*overflow;
    SIGSET_RETURN_IF_ERROR(file_->Read(current, &page));
    uint16_t count = page.ReadAt<uint16_t>(4);
    if (count > kOverflowCapacity) {
      return Status::Corruption("overflow page count exceeds capacity");
    }
    sum += count;
    current = page.ReadAt<uint32_t>(0);
  }
  if (sum != total) {
    return Status::Corruption("overflow chain total does not match record");
  }
  return Status::OK();
}

Status BTree::ValidateNode(PageId page_id, uint32_t depth,
                           std::vector<bool>* visited,
                           std::vector<std::pair<PageId, PageId>>* leaves,
                           uint64_t* internals, uint64_t* overflow) const {
  if (page_id >= file_->num_pages()) {
    return Status::Corruption("node page out of range");
  }
  if ((*visited)[page_id]) {
    return Status::Corruption("tree reaches a page twice");
  }
  (*visited)[page_id] = true;
  Page page;
  SIGSET_RETURN_IF_ERROR(file_->Read(page_id, &page));
  uint8_t type = NodeType(page);
  uint16_t n = NumEntries(page);
  if (depth == height_) {
    if (type != kLeafType) {
      return Status::Corruption("expected a leaf at the tree's height");
    }
    // Bounds-checked leaf parse: directory and every record must lie inside
    // the page (a garbage page can carry arbitrary uint16 offsets).
    if (kHeaderBytes + static_cast<size_t>(n) * 2 > kPageSize) {
      return Status::Corruption("leaf directory exceeds page");
    }
    uint64_t prev_key = 0;
    for (uint16_t i = 0; i < n; ++i) {
      uint16_t off = page.ReadAt<uint16_t>(kHeaderBytes + i * 2);
      if (off < kHeaderBytes + static_cast<size_t>(n) * 2 ||
          static_cast<size_t>(off) + 10 > kPageSize) {
        return Status::Corruption("leaf record offset out of bounds");
      }
      uint64_t key = page.ReadAt<uint64_t>(off);
      if (i > 0 && key <= prev_key) {
        return Status::Corruption("leaf keys not strictly increasing");
      }
      prev_key = key;
      uint16_t count = page.ReadAt<uint16_t>(off + 8);
      if (count == kOverflowMarker) {
        if (static_cast<size_t>(off) + 18 > kPageSize) {
          return Status::Corruption("overflow record exceeds page");
        }
        uint32_t total = page.ReadAt<uint32_t>(off + 10);
        PageId first = page.ReadAt<uint32_t>(off + 14);
        SIGSET_RETURN_IF_ERROR(
            ValidateOverflowChain(first, total, visited, overflow));
      } else if (off + 10 + static_cast<size_t>(count) * 8 > kPageSize) {
        return Status::Corruption("leaf posting list exceeds page");
      }
    }
    leaves->emplace_back(page_id, LeafNext(page));
    return Status::OK();
  }
  if (type != kInternalType) {
    return Status::Corruption("expected an internal node above the leaves");
  }
  // A 0-key internal node (single child) is legal: bulk load emits one when
  // a level's tail group holds a single node.
  if (n > InternalMaxKeys(max_fanout_) ||
      kInternalFixed + static_cast<size_t>(n) * kInternalEntryStride >
          kPageSize) {
    return Status::Corruption("internal node entry count out of bounds");
  }
  uint64_t prev_key = 0;
  for (uint16_t i = 0; i < n; ++i) {
    uint64_t key = page.ReadAt<uint64_t>(kInternalFixed + i *
                                         kInternalEntryStride);
    if (i > 0 && key <= prev_key) {
      return Status::Corruption("internal keys not strictly increasing");
    }
    prev_key = key;
  }
  // Copy the child ids out before recursing (the recursion reuses the page
  // buffer), then validate each subtree left to right.
  std::vector<PageId> children;
  children.reserve(n + 1);
  children.push_back(page.ReadAt<uint32_t>(kHeaderBytes));
  for (uint16_t i = 0; i < n; ++i) {
    children.push_back(
        page.ReadAt<uint32_t>(kInternalFixed + i * kInternalEntryStride + 8));
  }
  for (PageId child : children) {
    SIGSET_RETURN_IF_ERROR(
        ValidateNode(child, depth + 1, visited, leaves, internals, overflow));
  }
  ++*internals;
  return Status::OK();
}

Status BTree::ValidateStructure() const {
  if (root_ >= file_->num_pages()) {
    return Status::Corruption("recovered root page out of range");
  }
  std::vector<bool> visited(file_->num_pages(), false);
  std::vector<std::pair<PageId, PageId>> leaves;
  uint64_t internals = 0;
  uint64_t overflow = 0;
  SIGSET_RETURN_IF_ERROR(
      ValidateNode(root_, 0, &visited, &leaves, &internals, &overflow));
  if (leaves.size() != leaf_pages_ || internals != internal_pages_ ||
      overflow != overflow_pages_) {
    return Status::Corruption(
        "reachable page counts do not match checkpointed metadata");
  }
  // The leaf chain must thread the reachable leaves in exactly tree order; a
  // post-checkpoint leaf split leaves the chain pointing at a leaf the stale
  // root cannot reach, which this catches.
  for (size_t i = 0; i < leaves.size(); ++i) {
    PageId want = i + 1 < leaves.size() ? leaves[i + 1].first : kInvalidPage;
    if (leaves[i].second != want) {
      return Status::Corruption("leaf chain diverges from tree structure");
    }
  }
  return Status::OK();
}

// ---- operations ----

StatusOr<std::vector<Oid>> BTree::Lookup(uint64_t key) const {
  Page page;
  PageId current = root_;
  while (true) {
    SIGSET_RETURN_IF_ERROR(file_->Read(current, &page));
    if (NodeType(page) == kLeafType) break;
    ParsedInternal node = ParseInternal(page);
    current = node.children[ChildIndex(node, key)];
  }
  std::vector<LeafRecord> records = ParseLeaf(page);
  auto it = FindRecord(records, key);
  if (it == records.end() || it->key != key) return std::vector<Oid>{};
  // Inline postings are kept sorted at write time (LeafInsert places each
  // OID at its lower bound; LeafApply and BulkLoad sort before writing), so
  // they return as-is.  Overflow chains are unordered on disk by design —
  // one sort here, when the chain is materialized, is what lets every
  // reader above assume ascending postings without re-sorting per query.
  if (!it->overflow) return std::move(it->inline_postings);
  std::vector<Oid> out;
  SIGSET_RETURN_IF_ERROR(ReadOverflowChain(it->first_page, it->total, &out));
  std::sort(out.begin(), out.end());
  return out;
}

Status BTree::LeafInsert(PageId page_id, Page* page, uint64_t key, Oid oid,
                         bool* split, uint64_t* promoted, PageId* new_child) {
  std::vector<LeafRecord> records = ParseLeaf(*page);
  PageId next_leaf = LeafNext(*page);
  auto it = FindRecord(records, key);
  if (it != records.end() && it->key == key) {
    if (it->overflow) {
      PageId first = it->first_page;
      SIGSET_RETURN_IF_ERROR(AppendToOverflowChain(&first, oid));
      it->first_page = first;
      ++it->total;
    } else {
      // Sorted insertion keeps inline postings ascending on disk, so Lookup
      // never has to sort them.
      it->inline_postings.insert(
          std::lower_bound(it->inline_postings.begin(),
                           it->inline_postings.end(), oid),
          oid);
      if (it->inline_postings.size() > kMaxInlinePostings) {
        // Spill the whole posting list into an overflow chain.
        SIGSET_ASSIGN_OR_RETURN(PageId first,
                                WriteOverflowChain(it->inline_postings));
        it->overflow = true;
        it->total = static_cast<uint32_t>(it->inline_postings.size());
        it->first_page = first;
        it->inline_postings.clear();
        it->inline_postings.shrink_to_fit();
      }
    }
  } else {
    LeafRecord record;
    record.key = key;
    record.inline_postings = {oid};
    records.insert(it, std::move(record));
  }
  if (WriteLeaf(records, next_leaf, page)) {
    SIGSET_RETURN_IF_ERROR(file_->Write(page_id, *page));
    *split = false;
    return Status::OK();
  }
  // Split by bytes so both halves fit even with skewed posting sizes.
  SIGSET_FAILPOINT("btree.split");
  size_t total = LeafBytes(records) - kHeaderBytes;
  size_t acc = 0;
  size_t cut = 0;
  while (cut + 1 < records.size() && acc < total / 2) {
    acc += LeafRecordBytes(records[cut]);
    ++cut;
  }
  if (cut == 0) cut = 1;
  std::vector<LeafRecord> left(records.begin(),
                               records.begin() + static_cast<ptrdiff_t>(cut));
  std::vector<LeafRecord> right(records.begin() + static_cast<ptrdiff_t>(cut),
                                records.end());
  SIGSET_ASSIGN_OR_RETURN(PageId right_id, file_->Allocate());
  Page right_page;
  if (!WriteLeaf(right, next_leaf, &right_page) ||
      !WriteLeaf(left, right_id, page)) {
    return Status::Internal("leaf split halves do not fit");
  }
  SIGSET_RETURN_IF_ERROR(file_->Write(page_id, *page));
  SIGSET_RETURN_IF_ERROR(file_->Write(right_id, right_page));
  ++leaf_pages_;
  *split = true;
  *promoted = right.front().key;
  *new_child = right_id;
  return Status::OK();
}

Status BTree::InsertRec(PageId page_id, uint64_t key, Oid oid, bool* split,
                        uint64_t* promoted, PageId* new_child) {
  Page page;
  SIGSET_RETURN_IF_ERROR(file_->Read(page_id, &page));
  if (NodeType(page) == kLeafType) {
    return LeafInsert(page_id, &page, key, oid, split, promoted, new_child);
  }
  ParsedInternal node = ParseInternal(page);
  size_t ci = ChildIndex(node, key);
  bool child_split = false;
  uint64_t child_promoted = 0;
  PageId child_new = kInvalidPage;
  SIGSET_RETURN_IF_ERROR(InsertRec(node.children[ci], key, oid, &child_split,
                                   &child_promoted, &child_new));
  if (!child_split) {
    *split = false;
    return Status::OK();
  }
  node.keys.insert(node.keys.begin() + static_cast<ptrdiff_t>(ci),
                   child_promoted);
  node.children.insert(node.children.begin() + static_cast<ptrdiff_t>(ci) + 1,
                       child_new);
  if (node.keys.size() <= InternalMaxKeys(max_fanout_)) {
    WriteInternal(node, &page);
    SIGSET_RETURN_IF_ERROR(file_->Write(page_id, page));
    *split = false;
    return Status::OK();
  }
  // Split the internal node; the middle key moves up (is not copied).
  SIGSET_FAILPOINT("btree.split");
  size_t mid = node.keys.size() / 2;
  ParsedInternal left;
  left.keys.assign(node.keys.begin(), node.keys.begin() + mid);
  left.children.assign(node.children.begin(),
                       node.children.begin() + mid + 1);
  ParsedInternal right;
  right.keys.assign(node.keys.begin() + mid + 1, node.keys.end());
  right.children.assign(node.children.begin() + mid + 1,
                        node.children.end());
  SIGSET_ASSIGN_OR_RETURN(PageId right_id, file_->Allocate());
  Page right_page;
  WriteInternal(left, &page);
  WriteInternal(right, &right_page);
  SIGSET_RETURN_IF_ERROR(file_->Write(page_id, page));
  SIGSET_RETURN_IF_ERROR(file_->Write(right_id, right_page));
  ++internal_pages_;
  *split = true;
  *promoted = node.keys[mid];
  *new_child = right_id;
  return Status::OK();
}

Status BTree::Insert(uint64_t key, Oid oid) {
  bool split = false;
  uint64_t promoted = 0;
  PageId new_child = kInvalidPage;
  SIGSET_RETURN_IF_ERROR(
      InsertRec(root_, key, oid, &split, &promoted, &new_child));
  if (!split) return Status::OK();
  ParsedInternal new_root;
  new_root.keys = {promoted};
  new_root.children = {root_, new_child};
  SIGSET_ASSIGN_OR_RETURN(PageId root_id, file_->Allocate());
  Page page;
  WriteInternal(new_root, &page);
  SIGSET_RETURN_IF_ERROR(file_->Write(root_id, page));
  root_ = root_id;
  ++internal_pages_;
  ++height_;
  return Status::OK();
}

Status BTree::LeafApply(PageId page_id, Page* page, uint64_t key,
                        const std::vector<Oid>& adds,
                        const std::vector<Oid>& removes, bool* split,
                        uint64_t* promoted, PageId* new_child) {
  std::vector<LeafRecord> records = ParseLeaf(*page);
  PageId next_leaf = LeafNext(*page);
  auto it = FindRecord(records, key);
  const bool exists = it != records.end() && it->key == key;
  if (!exists && !removes.empty()) {
    return Status::NotFound("key not in index: " + std::to_string(key));
  }
  // Materialize the key's full posting list, edit it in memory, and write
  // the record (and any overflow chain) back once for the whole group.
  std::vector<Oid> postings;
  bool had_overflow = false;
  PageId old_first = kInvalidPage;
  if (exists) {
    if (it->overflow) {
      had_overflow = true;
      old_first = it->first_page;
      SIGSET_RETURN_IF_ERROR(
          ReadOverflowChain(old_first, it->total, &postings));
    } else {
      postings = std::move(it->inline_postings);
    }
  }
  for (const Oid& oid : removes) {
    auto oid_it = std::find(postings.begin(), postings.end(), oid);
    if (oid_it == postings.end()) {
      return Status::NotFound("oid not in posting list of key " +
                              std::to_string(key));
    }
    postings.erase(oid_it);
  }
  postings.insert(postings.end(), adds.begin(), adds.end());
  // Restore the on-disk ascending order broken by the appended adds (and by
  // a materialized chain, which is unordered on disk); inline records must
  // land sorted so Lookup can return them without sorting.
  std::sort(postings.begin(), postings.end());
  if (had_overflow) {
    // The chain is rewritten (or dropped) below; recycle its pages first so
    // the rewrite can reuse them.
    SIGSET_RETURN_IF_ERROR(FreeChain(old_first));
  }
  if (postings.empty()) {
    if (exists) records.erase(it);
    if (!WriteLeaf(records, next_leaf, page)) {
      return Status::Internal("leaf shrank but does not fit");
    }
    SIGSET_RETURN_IF_ERROR(file_->Write(page_id, *page));
    *split = false;
    return Status::OK();
  }
  if (!exists) {
    LeafRecord record;
    record.key = key;
    it = records.insert(it, std::move(record));
  }
  if (postings.size() > kMaxInlinePostings) {
    SIGSET_ASSIGN_OR_RETURN(PageId first, WriteOverflowChain(postings));
    it->overflow = true;
    it->total = static_cast<uint32_t>(postings.size());
    it->first_page = first;
    it->inline_postings.clear();
    it->inline_postings.shrink_to_fit();
  } else {
    it->overflow = false;
    it->total = 0;
    it->first_page = kInvalidPage;
    it->inline_postings = std::move(postings);
  }
  if (WriteLeaf(records, next_leaf, page)) {
    SIGSET_RETURN_IF_ERROR(file_->Write(page_id, *page));
    *split = false;
    return Status::OK();
  }
  // Same byte-balanced split as LeafInsert.
  SIGSET_FAILPOINT("btree.split");
  size_t total = LeafBytes(records) - kHeaderBytes;
  size_t acc = 0;
  size_t cut = 0;
  while (cut + 1 < records.size() && acc < total / 2) {
    acc += LeafRecordBytes(records[cut]);
    ++cut;
  }
  if (cut == 0) cut = 1;
  std::vector<LeafRecord> left(records.begin(),
                               records.begin() + static_cast<ptrdiff_t>(cut));
  std::vector<LeafRecord> right(records.begin() + static_cast<ptrdiff_t>(cut),
                                records.end());
  SIGSET_ASSIGN_OR_RETURN(PageId right_id, file_->Allocate());
  Page right_page;
  if (!WriteLeaf(right, next_leaf, &right_page) ||
      !WriteLeaf(left, right_id, page)) {
    return Status::Internal("leaf split halves do not fit");
  }
  SIGSET_RETURN_IF_ERROR(file_->Write(page_id, *page));
  SIGSET_RETURN_IF_ERROR(file_->Write(right_id, right_page));
  ++leaf_pages_;
  *split = true;
  *promoted = right.front().key;
  *new_child = right_id;
  return Status::OK();
}

Status BTree::ApplyRec(PageId page_id, uint64_t key,
                       const std::vector<Oid>& adds,
                       const std::vector<Oid>& removes, bool* split,
                       uint64_t* promoted, PageId* new_child) {
  Page page;
  SIGSET_RETURN_IF_ERROR(file_->Read(page_id, &page));
  if (NodeType(page) == kLeafType) {
    return LeafApply(page_id, &page, key, adds, removes, split, promoted,
                     new_child);
  }
  ParsedInternal node = ParseInternal(page);
  size_t ci = ChildIndex(node, key);
  bool child_split = false;
  uint64_t child_promoted = 0;
  PageId child_new = kInvalidPage;
  SIGSET_RETURN_IF_ERROR(ApplyRec(node.children[ci], key, adds, removes,
                                  &child_split, &child_promoted, &child_new));
  if (!child_split) {
    *split = false;
    return Status::OK();
  }
  node.keys.insert(node.keys.begin() + static_cast<ptrdiff_t>(ci),
                   child_promoted);
  node.children.insert(node.children.begin() + static_cast<ptrdiff_t>(ci) + 1,
                       child_new);
  if (node.keys.size() <= InternalMaxKeys(max_fanout_)) {
    WriteInternal(node, &page);
    SIGSET_RETURN_IF_ERROR(file_->Write(page_id, page));
    *split = false;
    return Status::OK();
  }
  SIGSET_FAILPOINT("btree.split");
  size_t mid = node.keys.size() / 2;
  ParsedInternal left;
  left.keys.assign(node.keys.begin(), node.keys.begin() + mid);
  left.children.assign(node.children.begin(),
                       node.children.begin() + mid + 1);
  ParsedInternal right;
  right.keys.assign(node.keys.begin() + mid + 1, node.keys.end());
  right.children.assign(node.children.begin() + mid + 1,
                        node.children.end());
  SIGSET_ASSIGN_OR_RETURN(PageId right_id, file_->Allocate());
  Page right_page;
  WriteInternal(left, &page);
  WriteInternal(right, &right_page);
  SIGSET_RETURN_IF_ERROR(file_->Write(page_id, page));
  SIGSET_RETURN_IF_ERROR(file_->Write(right_id, right_page));
  ++internal_pages_;
  *split = true;
  *promoted = node.keys[mid];
  *new_child = right_id;
  return Status::OK();
}

Status BTree::Apply(uint64_t key, const std::vector<Oid>& adds,
                    const std::vector<Oid>& removes) {
  if (adds.empty() && removes.empty()) return Status::OK();
  bool split = false;
  uint64_t promoted = 0;
  PageId new_child = kInvalidPage;
  SIGSET_RETURN_IF_ERROR(
      ApplyRec(root_, key, adds, removes, &split, &promoted, &new_child));
  if (!split) return Status::OK();
  ParsedInternal new_root;
  new_root.keys = {promoted};
  new_root.children = {root_, new_child};
  SIGSET_ASSIGN_OR_RETURN(PageId root_id, file_->Allocate());
  Page page;
  WriteInternal(new_root, &page);
  SIGSET_RETURN_IF_ERROR(file_->Write(root_id, page));
  root_ = root_id;
  ++internal_pages_;
  ++height_;
  return Status::OK();
}

Status BTree::Remove(uint64_t key, Oid oid) {
  Page page;
  PageId current = root_;
  while (true) {
    SIGSET_RETURN_IF_ERROR(file_->Read(current, &page));
    if (NodeType(page) == kLeafType) break;
    ParsedInternal node = ParseInternal(page);
    current = node.children[ChildIndex(node, key)];
  }
  std::vector<LeafRecord> records = ParseLeaf(page);
  PageId next_leaf = LeafNext(page);
  auto it = FindRecord(records, key);
  if (it == records.end() || it->key != key) {
    return Status::NotFound("key not in index: " + std::to_string(key));
  }
  if (it->overflow) {
    bool removed = false;
    SIGSET_RETURN_IF_ERROR(
        RemoveFromOverflowChain(it->first_page, oid, &removed));
    if (!removed) {
      return Status::NotFound("oid not in posting list of key " +
                              std::to_string(key));
    }
    --it->total;
    if (it->total == 0) {
      // Recycle the drained chain's pages and drop the record.
      SIGSET_RETURN_IF_ERROR(FreeChain(it->first_page));
      records.erase(it);
    }
  } else {
    auto oid_it = std::find(it->inline_postings.begin(),
                            it->inline_postings.end(), oid);
    if (oid_it == it->inline_postings.end()) {
      return Status::NotFound("oid not in posting list of key " +
                              std::to_string(key));
    }
    it->inline_postings.erase(oid_it);
    if (it->inline_postings.empty()) records.erase(it);
  }
  if (!WriteLeaf(records, next_leaf, &page)) {
    return Status::Internal("leaf shrank but does not fit");
  }
  return file_->Write(current, page);
}

Status BTree::BulkLoad(const std::vector<BTreeEntry>& sorted_entries) {
  if (leaf_pages_ != 1 || internal_pages_ != 0) {
    return Status::FailedPrecondition("BulkLoad requires an empty tree");
  }
  {
    Page root_page;
    SIGSET_RETURN_IF_ERROR(file_->Read(root_, &root_page));
    if (NumEntries(root_page) != 0) {
      return Status::FailedPrecondition("BulkLoad requires an empty tree");
    }
  }
  for (size_t i = 0; i + 1 < sorted_entries.size(); ++i) {
    if (sorted_entries[i].key >= sorted_entries[i + 1].key) {
      return Status::InvalidArgument("BulkLoad input must be sorted unique");
    }
  }
  // Convert to leaf records, spilling giant postings into overflow chains.
  std::vector<LeafRecord> records;
  records.reserve(sorted_entries.size());
  for (const BTreeEntry& e : sorted_entries) {
    LeafRecord record;
    record.key = e.key;
    if (e.postings.size() > kMaxInlinePostings) {
      SIGSET_ASSIGN_OR_RETURN(record.first_page,
                              WriteOverflowChain(e.postings));
      record.overflow = true;
      record.total = static_cast<uint32_t>(e.postings.size());
    } else {
      record.inline_postings = e.postings;
    }
    records.push_back(std::move(record));
  }

  // Pack leaves greedily to capacity (the model's ⌊P/Il⌋ per page).
  struct NodeRef {
    uint64_t min_key;
    PageId id;
  };
  std::vector<std::vector<LeafRecord>> leaf_groups;
  std::vector<LeafRecord> current;
  size_t bytes = kHeaderBytes;
  for (LeafRecord& r : records) {
    size_t rb = LeafRecordBytes(r);
    if (bytes + rb > kPageSize) {
      leaf_groups.push_back(std::move(current));
      current.clear();
      bytes = kHeaderBytes;
    }
    current.push_back(std::move(r));
    bytes += rb;
  }
  leaf_groups.push_back(std::move(current));  // may be empty for empty input

  // Allocate page ids: group 0 reuses the root page, the rest are fresh.
  std::vector<NodeRef> level;
  level.reserve(leaf_groups.size());
  for (size_t i = 0; i < leaf_groups.size(); ++i) {
    PageId id = root_;
    if (i > 0) {
      SIGSET_ASSIGN_OR_RETURN(id, file_->Allocate());
    }
    uint64_t min_key = leaf_groups[i].empty() ? 0 : leaf_groups[i].front().key;
    level.push_back(NodeRef{min_key, id});
  }
  Page page;
  for (size_t i = 0; i < leaf_groups.size(); ++i) {
    PageId next = (i + 1 < level.size()) ? level[i + 1].id : kInvalidPage;
    if (!WriteLeaf(leaf_groups[i], next, &page)) {
      return Status::Internal("bulk leaf does not fit");
    }
    SIGSET_RETURN_IF_ERROR(file_->Write(level[i].id, page));
  }
  leaf_pages_ = leaf_groups.size();

  // Build packed internal levels until one node remains.
  size_t max_children = InternalMaxKeys(max_fanout_) + 1;
  height_ = 0;
  while (level.size() > 1) {
    std::vector<NodeRef> parent_level;
    for (size_t start = 0; start < level.size(); start += max_children) {
      size_t end = std::min(start + max_children, level.size());
      ParsedInternal node;
      node.children.push_back(level[start].id);
      for (size_t i = start + 1; i < end; ++i) {
        node.keys.push_back(level[i].min_key);
        node.children.push_back(level[i].id);
      }
      SIGSET_ASSIGN_OR_RETURN(PageId id, file_->Allocate());
      WriteInternal(node, &page);
      SIGSET_RETURN_IF_ERROR(file_->Write(id, page));
      ++internal_pages_;
      parent_level.push_back(NodeRef{level[start].min_key, id});
    }
    level = std::move(parent_level);
    ++height_;
  }
  root_ = level.front().id;
  // Bulk-build I/O is setup, not an experiment cost.
  file_->stats().Reset();
  return Status::OK();
}

Status BTree::ForEachEntry(
    const std::function<void(const BTreeEntry&)>& fn) const {
  // Descend to the leftmost leaf, then follow the chain.
  Page page;
  PageId current = root_;
  while (true) {
    SIGSET_RETURN_IF_ERROR(file_->Read(current, &page));
    if (NodeType(page) == kLeafType) break;
    current = ParseInternal(page).children.front();
  }
  while (true) {
    for (LeafRecord& r : ParseLeaf(page)) {
      BTreeEntry entry;
      entry.key = r.key;
      if (r.overflow) {
        SIGSET_RETURN_IF_ERROR(
            ReadOverflowChain(r.first_page, r.total, &entry.postings));
        // Same contract as Lookup: postings surface in ascending order.
        std::sort(entry.postings.begin(), entry.postings.end());
      } else {
        entry.postings = std::move(r.inline_postings);
      }
      fn(entry);
    }
    PageId next = LeafNext(page);
    if (next == kInvalidPage) break;
    SIGSET_RETURN_IF_ERROR(file_->Read(next, &page));
  }
  return Status::OK();
}

}  // namespace sigsetdb
