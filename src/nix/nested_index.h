// NestedIndex (NIX): the paper's baseline access facility (§4.3).
//
// A B-tree maps each set-element value to the OIDs of the objects whose
// indexed set attribute contains it.  Query evaluation:
//
//   T ⊇ Q: look up every query element (rc·Dq page reads) and intersect the
//          OID lists — the result is exact, no resolution needed;
//   T ⊆ Q: look up every query element and union the OID lists — every
//          object sharing at least one element with Q is a candidate and
//          must be resolved against the stored set.
//
// The smart strategy of §5.1.3 intersects the postings of just two query
// elements and resolves the (small) remainder, capping the index cost at
// 2·rc for any Dq ≥ 2.
//
// Empty stored sets.  An object whose set value is ∅ writes no postings, so
// no tree lookup can ever surface it — yet ∅ ⊆ Q holds for every query
// (queries are validated non-empty at the SetIndex boundary).  The index
// therefore tracks empty-set OIDs in an explicit roster, persisted as the
// posting list of the reserved key kEmptySetKey = UINT64_MAX (it sorts
// after every real element value, so bulk loads stay ordered) and mirrored
// in memory at open, so consulting it at query time costs zero page reads
// and the paper-pinned rc·Dq counts are unchanged.  Semantics, shared by
// every facility (the SSF/BSSF get them for free — an all-zero signature
// passes the T ⊆ Q slice test and resolution confirms):
//
//   kSubset / kProperSubset   ∅ matches every (non-empty) query
//   kSuperset / kProperSuperset / kOverlaps / kEquals
//                             ∅ matches nothing, because each requires at
//                             least one shared element with Q (kEquals
//                             would need Q = ∅, which is rejected)
//
// Element value UINT64_MAX is reserved: inserts carrying it are refused,
// and query lookups of it read the tree but discard the postings (the
// descent is still charged, keeping costs uniform).

#ifndef SIGSET_NIX_NESTED_INDEX_H_
#define SIGSET_NIX_NESTED_INDEX_H_

#include <memory>

#include "nix/btree.h"
#include "sig/facility.h"

namespace sigsetdb {

// Reserved B-tree key whose posting list is the empty-set OID roster.
inline constexpr uint64_t kEmptySetKey = ~uint64_t{0};

// Nested index over one indexed set attribute.
class NestedIndex : public SetAccessFacility {
 public:
  // `file` is not owned and must be empty.
  static StatusOr<std::unique_ptr<NestedIndex>> Create(
      PageFile* file, uint32_t max_fanout = kPaperFanout);

  // Discards any existing tree in `file` and starts empty (WAL recovery
  // rebuilds via BulkBuild from the replayed object store).
  static StatusOr<std::unique_ptr<NestedIndex>> CreateResetting(
      PageFile* file, uint32_t max_fanout = kPaperFanout);

  // Reopens an index over a previously populated file (metadata from the
  // manifest written by SetIndex::Checkpoint()).
  static StatusOr<std::unique_ptr<NestedIndex>> CreateFromExisting(
      PageFile* file, uint32_t max_fanout, PageId root, uint32_t height,
      uint64_t leaf_pages, uint64_t internal_pages,
      uint64_t overflow_pages = 0);

  const std::string& name() const override { return name_; }

  // Inserts/removes one posting per set element (the model's
  // UC_I = UC_D = rc·Dt).
  Status Insert(Oid oid, const ElementSet& set_value) override;
  Status Remove(Oid oid, const ElementSet& set_value) override;

  // Grouped write path: aggregates the batch's posting adds/removes per
  // element value, then descends the B-tree once per DISTINCT key in sorted
  // order (BTree::Apply), so posting-list writes are coalesced per key and
  // splits amortize — the batched K·rc cost instead of n·Dt·rc.
  Status ApplyBatch(const std::vector<BatchOp>& ops) override;

  StatusOr<CandidateResult> Candidates(QueryKind kind,
                                       const ElementSet& query) override;

  // SC = lp + nlp.
  uint64_t StoragePages() const override { return tree_->total_pages(); }

  // Tracing: the whole index is one file (descents + postings together).
  std::vector<std::pair<std::string, IoStats>> StageStats() const override {
    return {{"btree descent", tree_->file().stats()}};
  }

  // Smart T ⊇ Q (paper §5.1.3): intersect the postings of only
  // min(use_elements, Dq) query elements; the result is exact only when all
  // elements were used.
  StatusOr<CandidateResult> CandidatesSmartSuperset(const ElementSet& query,
                                                    size_t use_elements);

  // Bulk-builds the index from the full database: `sets[i]` is the set
  // value of the object with OID `oids[i]`.  Produces the packed tree the
  // paper's storage formulas assume (Table 5).
  Status BulkBuild(const std::vector<Oid>& oids,
                   const std::vector<ElementSet>& sets);

  const BTree& tree() const { return *tree_; }
  BTree& mutable_tree() { return *tree_; }

  // The in-memory mirror of the empty-set roster, ascending (tests).
  const std::vector<Oid>& empty_set_oids() const { return empty_oids_; }

 private:
  explicit NestedIndex(std::unique_ptr<BTree> tree) : tree_(std::move(tree)) {}

  // Tree lookup that treats the reserved roster key as an ordinary absent
  // element: the descent still happens (and is charged), the postings are
  // discarded.  Everything query-shaped goes through here.
  StatusOr<std::vector<Oid>> LookupPostings(uint64_t element) const;

  // Roster mirror maintenance (the tree-side sentinel entry is written by
  // the caller); keeps empty_oids_ sorted.
  void RosterAdd(Oid oid);
  void RosterRemove(Oid oid);

  std::string name_ = "nix";
  std::unique_ptr<BTree> tree_;
  std::vector<Oid> empty_oids_;
};

}  // namespace sigsetdb

#endif  // SIGSET_NIX_NESTED_INDEX_H_
