// HyperLogLog cardinality sketch.
//
// The cost model needs V, the number of distinct elements in the indexed
// domain (it drives every actual-drop estimate).  Rather than asking the
// user for it, SetIndex/Database feed every inserted element through this
// sketch and hand the advisor a live estimate.  Standard HLL (Flajolet et
// al. 2007) with the usual small-range linear-counting correction;
// 2^precision byte registers give ~1.04/√(2^precision) relative error
// (~1.6 % at the default precision 12 = 4 KiB of state).

#ifndef SIGSET_UTIL_HYPERLOGLOG_H_
#define SIGSET_UTIL_HYPERLOGLOG_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace sigsetdb {

// Streaming distinct-count estimator over 64-bit values.
class HyperLogLog {
 public:
  // `precision` in [4, 16]: 2^precision single-byte registers.
  explicit HyperLogLog(int precision = 12);

  // Observes one value (idempotent per distinct value).
  void Add(uint64_t value);

  // Current cardinality estimate.
  double Estimate() const;

  // Merges another sketch of the same precision (union of streams).
  void Merge(const HyperLogLog& other);

  // Resets to the empty state.
  void Clear();

  int precision() const { return precision_; }
  size_t num_registers() const { return registers_.size(); }

  // Raw register access for checkpoint serialization.
  const std::vector<uint8_t>& registers() const { return registers_; }
  // Restores registers saved earlier; `data` must match num_registers().
  bool LoadRegisters(const uint8_t* data, size_t len) {
    if (len != registers_.size()) return false;
    registers_.assign(data, data + len);
    return true;
  }

 private:
  int precision_;
  std::vector<uint8_t> registers_;
};

}  // namespace sigsetdb

#endif  // SIGSET_UTIL_HYPERLOGLOG_H_
