#include "util/failpoint.h"

namespace sigsetdb {

std::atomic<int> FailpointRegistry::armed_count_{0};

FailpointRegistry& FailpointRegistry::Instance() {
  static FailpointRegistry* registry = new FailpointRegistry();
  return *registry;
}

void FailpointRegistry::ArmCountdown(std::string_view site, uint64_t countdown,
                                     bool sticky, StatusCode code) {
  std::lock_guard<std::mutex> lock(mu_);
  Site& s = sites_[std::string(site)];
  if (s.mode == Mode::kDisarmed) armed_count_.fetch_add(1);
  s.mode = Mode::kCountdown;
  s.countdown = countdown == 0 ? 1 : countdown;
  s.sticky = sticky;
  s.code = code;
}

void FailpointRegistry::ArmProbability(std::string_view site, double p,
                                       uint64_t seed, StatusCode code) {
  std::lock_guard<std::mutex> lock(mu_);
  Site& s = sites_[std::string(site)];
  if (s.mode == Mode::kDisarmed) armed_count_.fetch_add(1);
  s.mode = Mode::kProbability;
  s.probability = p;
  s.rng.Seed(seed);
  s.code = code;
}

void FailpointRegistry::Disarm(std::string_view site) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = sites_.find(std::string(site));
  if (it == sites_.end()) return;
  if (it->second.mode != Mode::kDisarmed) armed_count_.fetch_sub(1);
  it->second.mode = Mode::kDisarmed;
}

void FailpointRegistry::DisarmAll() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, site] : sites_) {
    if (site.mode != Mode::kDisarmed) armed_count_.fetch_sub(1);
    site.mode = Mode::kDisarmed;
  }
}

uint64_t FailpointRegistry::HitCount(std::string_view site) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = sites_.find(std::string(site));
  return it == sites_.end() ? 0 : it->second.hits;
}

Status FailpointRegistry::Evaluate(std::string_view site) {
  if (!AnyArmed()) return Status::OK();
  return EvaluateSlow(site);
}

Status FailpointRegistry::EvaluateSlow(std::string_view site) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = sites_.find(std::string(site));
  if (it == sites_.end()) return Status::OK();
  Site& s = it->second;
  if (s.mode == Mode::kDisarmed) return Status::OK();
  ++s.hits;
  bool fire = false;
  if (s.mode == Mode::kCountdown) {
    if (s.countdown > 0) --s.countdown;
    if (s.countdown == 0) {
      fire = true;
      if (!s.sticky) {
        s.mode = Mode::kDisarmed;
        armed_count_.fetch_sub(1);
      } else {
        // Leave countdown at 0: every later evaluation keeps firing.
      }
    }
  } else {  // kProbability
    fire = s.rng.NextDouble() < s.probability;
  }
  if (!fire) return Status::OK();
  std::string msg = "failpoint fired: " + std::string(site);
  return Status(s.code, std::move(msg));
}

}  // namespace sigsetdb
