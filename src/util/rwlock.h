// RwLock: a writer-preferring reader/writer lock.
//
// std::shared_mutex on glibc maps to a pthread rwlock whose default policy
// prefers readers: as long as any reader holds the lock, new readers are
// admitted immediately, so a steady stream of read acquisitions starves
// writers indefinitely.  On a single-core machine a reader polling loop
// (e.g. a scan thread re-querying until a flag flips) can block writers
// forever — a livelock, not just unfairness.
//
// This lock closes the gate to NEW readers as soon as a writer is waiting:
// in-flight readers drain, the writer runs, then all queued readers are
// released together.  Readers still run fully in parallel with each other.
// Satisfies the SharedLockable named requirements, so it drops in behind
// std::shared_lock / std::unique_lock.

#ifndef SIGSET_UTIL_RWLOCK_H_
#define SIGSET_UTIL_RWLOCK_H_

#include <condition_variable>
#include <mutex>

namespace sigsetdb {

class RwLock {
 public:
  RwLock() = default;
  RwLock(const RwLock&) = delete;
  RwLock& operator=(const RwLock&) = delete;

  // --- exclusive (writer) side ---
  void lock() {
    std::unique_lock<std::mutex> lock(mu_);
    ++waiting_writers_;
    writer_cv_.wait(lock,
                    [this] { return !writer_active_ && active_readers_ == 0; });
    --waiting_writers_;
    writer_active_ = true;
  }

  bool try_lock() {
    std::unique_lock<std::mutex> lock(mu_);
    if (writer_active_ || active_readers_ != 0 || waiting_writers_ != 0) {
      return false;
    }
    writer_active_ = true;
    return true;
  }

  void unlock() {
    std::unique_lock<std::mutex> lock(mu_);
    writer_active_ = false;
    if (waiting_writers_ != 0) {
      writer_cv_.notify_one();
    } else {
      reader_cv_.notify_all();
    }
  }

  // --- shared (reader) side ---
  void lock_shared() {
    std::unique_lock<std::mutex> lock(mu_);
    reader_cv_.wait(lock,
                    [this] { return !writer_active_ && waiting_writers_ == 0; });
    ++active_readers_;
  }

  bool try_lock_shared() {
    std::unique_lock<std::mutex> lock(mu_);
    if (writer_active_ || waiting_writers_ != 0) return false;
    ++active_readers_;
    return true;
  }

  void unlock_shared() {
    std::unique_lock<std::mutex> lock(mu_);
    if (--active_readers_ == 0 && waiting_writers_ != 0) {
      writer_cv_.notify_one();
    }
  }

 private:
  std::mutex mu_;
  std::condition_variable reader_cv_;
  std::condition_variable writer_cv_;
  int active_readers_ = 0;
  int waiting_writers_ = 0;
  bool writer_active_ = false;
};

}  // namespace sigsetdb

#endif  // SIGSET_UTIL_RWLOCK_H_
