// CRC32C (Castagnoli): the checksum guarding write-ahead-log records.
//
// The WAL frames every record with a CRC over its payload so that a torn
// tail — the partially persisted final record left by a crash — is detected
// and cleanly truncated at recovery instead of being replayed as garbage.
// CRC32C is the polynomial used by iSCSI/ext4/RocksDB for exactly this job;
// the implementation here is the classic 8-entry slicing-by-1 table form
// (portable, no SSE4.2 dependency, ~1 B/cycle — the log appends are page
// writes, so the checksum is never the bottleneck).

#ifndef SIGSET_UTIL_CRC32C_H_
#define SIGSET_UTIL_CRC32C_H_

#include <cstddef>
#include <cstdint>

namespace sigsetdb {

// Returns the CRC32C of `data[0, n)`.
uint32_t Crc32c(const void* data, size_t n);

// Incremental form: extends `crc` (a previous Crc32cExtend/0 result) with
// `data[0, n)`.  Crc32c(d, n) == Crc32cExtend(0, d, n).
uint32_t Crc32cExtend(uint32_t crc, const void* data, size_t n);

}  // namespace sigsetdb

#endif  // SIGSET_UTIL_CRC32C_H_
