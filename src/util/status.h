// Status and StatusOr: exception-free error handling for the sigset library.
//
// All fallible operations in the library return a Status (or a StatusOr<T>
// when they also produce a value).  The style follows the familiar
// absl/RocksDB idiom: a Status is cheap to copy in the OK case, carries an
// error code plus a human-readable message otherwise, and is annotated
// [[nodiscard]] so that ignoring an error is a compile-time warning.

#ifndef SIGSET_UTIL_STATUS_H_
#define SIGSET_UTIL_STATUS_H_

#include <cassert>
#include <cstdlib>
#include <memory>
#include <string>
#include <utility>
#include <vector>

namespace sigsetdb {

// Error categories used across the library.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kOutOfRange,
  kAlreadyExists,
  kFailedPrecondition,
  kCorruption,
  kIoError,
  kUnimplemented,
  kInternal,
};

// Returns a stable lower-case name for `code` ("ok", "invalid_argument", ...).
const char* StatusCodeName(StatusCode code);

// A Status holds either success (OK) or an error code with a message.
class [[nodiscard]] Status {
 public:
  // Constructs an OK status.
  Status() = default;

  Status(StatusCode code, std::string message)
      : rep_(code == StatusCode::kOk
                 ? nullptr
                 : std::make_shared<Rep>(code, std::move(message))) {}

  Status(const Status&) = default;
  Status& operator=(const Status&) = default;
  Status(Status&&) noexcept = default;
  Status& operator=(Status&&) noexcept = default;

  // Factory helpers, one per error category.
  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status Corruption(std::string msg) {
    return Status(StatusCode::kCorruption, std::move(msg));
  }
  static Status IoError(std::string msg) {
    return Status(StatusCode::kIoError, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }

  bool ok() const { return rep_ == nullptr; }
  StatusCode code() const { return rep_ == nullptr ? StatusCode::kOk : rep_->code; }

  // Returns the error message; empty for OK.
  const std::string& message() const {
    static const std::string kEmpty;
    return rep_ == nullptr ? kEmpty : rep_->message;
  }

  // Returns "ok" or "<code_name>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code() == other.code() && message() == other.message();
  }

 private:
  struct Rep {
    Rep(StatusCode c, std::string m) : code(c), message(std::move(m)) {}
    StatusCode code;
    std::string message;
  };
  // Null for OK so that the common case is a single null pointer.
  std::shared_ptr<const Rep> rep_;
};

// StatusOr<T> holds either a value of type T or a non-OK Status.
// Accessing the value of an errored StatusOr aborts the process (the library
// does not use exceptions), so callers must check ok() first.
template <typename T>
class [[nodiscard]] StatusOr {
 public:
  // Constructs from a value (implicit by design, mirroring absl::StatusOr).
  StatusOr(T value) : status_(), value_(std::move(value)) {}  // NOLINT

  // Constructs from an error; aborts if `status` is OK, because an OK
  // StatusOr must carry a value.
  StatusOr(Status status) : status_(std::move(status)) {  // NOLINT
    if (status_.ok()) {
      assert(false && "StatusOr constructed from OK status without a value");
      std::abort();
    }
  }

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    CheckOk();
    return value_;
  }
  T& value() & {
    CheckOk();
    return value_;
  }
  T&& value() && {
    CheckOk();
    return std::move(value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  void CheckOk() const {
    if (!status_.ok()) {
      assert(false && "accessing value of errored StatusOr");
      std::abort();
    }
  }

  Status status_;
  T value_{};
};

// Deterministically merges per-worker statuses from a parallel region: OK if
// every worker succeeded, else the first (lowest-index) non-OK status.  When
// more than one worker failed, the survivor's message is annotated with how
// many further failures were dropped, so multi-worker faults are not silently
// reported as a single-site error.
Status MergeWorkerStatuses(const std::vector<Status>& statuses);

// Propagates a non-OK status to the caller.  Usage:
//   SIGSET_RETURN_IF_ERROR(file->Write(page, buf));
#define SIGSET_RETURN_IF_ERROR(expr)                \
  do {                                              \
    ::sigsetdb::Status _sigset_status = (expr);       \
    if (!_sigset_status.ok()) return _sigset_status; \
  } while (false)

// Evaluates `rexpr` (a StatusOr<T>), propagating errors, else moves the value
// into `lhs`.  Usage:
//   SIGSET_ASSIGN_OR_RETURN(auto page_no, file->Allocate());
#define SIGSET_ASSIGN_OR_RETURN(lhs, rexpr)                   \
  SIGSET_ASSIGN_OR_RETURN_IMPL_(                              \
      SIGSET_STATUS_CONCAT_(_sigset_statusor, __LINE__), lhs, rexpr)

#define SIGSET_STATUS_CONCAT_INNER_(a, b) a##b
#define SIGSET_STATUS_CONCAT_(a, b) SIGSET_STATUS_CONCAT_INNER_(a, b)
#define SIGSET_ASSIGN_OR_RETURN_IMPL_(tmp, lhs, rexpr) \
  auto tmp = (rexpr);                                  \
  if (!tmp.ok()) return tmp.status();                  \
  lhs = std::move(tmp).value()

}  // namespace sigsetdb

#endif  // SIGSET_UTIL_STATUS_H_
