#include "util/table_printer.h"

#include <cassert>
#include <cstdio>
#include <iomanip>

namespace sigsetdb {

TablePrinter::TablePrinter(std::vector<std::string> header)
    : header_(std::move(header)) {}

void TablePrinter::AddRow(std::vector<std::string> cells) {
  assert(cells.size() == header_.size());
  rows_.push_back(std::move(cells));
}

std::string TablePrinter::Num(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

std::string TablePrinter::Int(int64_t v) { return std::to_string(v); }

void TablePrinter::Print(std::ostream& os) const {
  std::vector<size_t> widths(header_.size());
  for (size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto print_row = [&](const std::vector<std::string>& row) {
    for (size_t c = 0; c < row.size(); ++c) {
      os << "  " << std::setw(static_cast<int>(widths[c])) << row[c];
    }
    os << "\n";
  };
  print_row(header_);
  size_t total = 0;
  for (size_t w : widths) total += w + 2;
  os << "  " << std::string(total > 2 ? total - 2 : 0, '-') << "\n";
  for (const auto& row : rows_) print_row(row);
}

}  // namespace sigsetdb
