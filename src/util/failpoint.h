// Failpoint: a process-wide registry of named fault-injection sites.
//
// Production code marks fallible points with SIGSET_FAILPOINT("site.name");
// tests arm a site to fire on the Nth evaluation (deterministic) or with a
// seeded probability (randomized soak runs).  Disarmed sites cost one relaxed
// atomic load and no branch into the registry, so instrumented code paths
// reproduce the paper's page-access counts bit-for-bit when no test is
// injecting faults.
//
// Naming convention (see DESIGN.md §9): "<component>.<operation>", e.g.
// "bssf.touch_slice" or "btree.split".  Sites are created lazily on first
// Arm — evaluating a never-armed name is valid and free.

#ifndef SIGSET_UTIL_FAILPOINT_H_
#define SIGSET_UTIL_FAILPOINT_H_

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "util/rng.h"
#include "util/status.h"

namespace sigsetdb {

// Thread-safe singleton registry of failpoint sites.
class FailpointRegistry {
 public:
  static FailpointRegistry& Instance();

  // Arms `site` to return an error on its `countdown`-th evaluation from now
  // (countdown=1 fires on the very next evaluation).  If `sticky` is true the
  // site keeps failing on every later evaluation (models a dead device); if
  // false it fires exactly once and disarms itself.
  void ArmCountdown(std::string_view site, uint64_t countdown,
                    bool sticky = false,
                    StatusCode code = StatusCode::kIoError);

  // Arms `site` to fail each evaluation independently with probability `p`,
  // drawn from an Rng seeded with `seed` (deterministic across runs for a
  // fixed evaluation order).
  void ArmProbability(std::string_view site, double p, uint64_t seed,
                      StatusCode code = StatusCode::kIoError);

  // Disarms one site / every site.  Idempotent.
  void Disarm(std::string_view site);
  void DisarmAll();

  // Number of times `site` has been evaluated since it was first armed
  // (counts both firing and non-firing evaluations; 0 if never armed).
  uint64_t HitCount(std::string_view site) const;

  // Evaluates `site`: OK unless the site is armed and due to fire.  The
  // returned error message names the site so harnesses can assert on which
  // failpoint tripped.
  Status Evaluate(std::string_view site);

  // True if any site is currently armed.  Relaxed and lock-free; this is the
  // fast-path check that keeps disarmed failpoints out of hot loops.
  static bool AnyArmed() {
    return armed_count_.load(std::memory_order_relaxed) != 0;
  }

 private:
  FailpointRegistry() = default;

  enum class Mode { kDisarmed, kCountdown, kProbability };

  struct Site {
    Mode mode = Mode::kDisarmed;
    uint64_t countdown = 0;  // Remaining evaluations before firing.
    bool sticky = false;
    double probability = 0.0;
    Rng rng{0};
    StatusCode code = StatusCode::kIoError;
    uint64_t hits = 0;  // Evaluations since first armed.
  };

  Status EvaluateSlow(std::string_view site);

  // Count of sites in an armed mode, mirrored outside the mutex so Evaluate
  // can bail without locking when nothing is armed anywhere.
  static std::atomic<int> armed_count_;

  mutable std::mutex mu_;
  std::unordered_map<std::string, Site> sites_;
};

// Statement form: propagates the failpoint error from the enclosing function.
// Compiles to a single relaxed load when nothing is armed.
#define SIGSET_FAILPOINT(site)                                          \
  do {                                                                  \
    if (::sigsetdb::FailpointRegistry::AnyArmed()) {                    \
      SIGSET_RETURN_IF_ERROR(                                           \
          ::sigsetdb::FailpointRegistry::Instance().Evaluate(site));    \
    }                                                                   \
  } while (false)

}  // namespace sigsetdb

#endif  // SIGSET_UTIL_FAILPOINT_H_
