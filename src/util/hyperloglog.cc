#include "util/hyperloglog.h"

#include <algorithm>
#include <bit>
#include <cassert>
#include <cmath>

#include "util/hashing.h"

namespace sigsetdb {

namespace {

// Bias-correction constant alpha_m for m registers.
double Alpha(size_t m) {
  switch (m) {
    case 16:
      return 0.673;
    case 32:
      return 0.697;
    case 64:
      return 0.709;
    default:
      return 0.7213 / (1.0 + 1.079 / static_cast<double>(m));
  }
}

}  // namespace

HyperLogLog::HyperLogLog(int precision) : precision_(precision) {
  assert(precision >= 4 && precision <= 16);
  registers_.assign(size_t{1} << precision_, 0);
}

void HyperLogLog::Add(uint64_t value) {
  uint64_t h = Mix64(value ^ 0x9e3779b97f4a7c15ULL);
  size_t idx = static_cast<size_t>(h >> (64 - precision_));
  uint64_t rest = h << precision_;
  // Rank: position of the leftmost 1 bit in the remaining stream (1-based);
  // an all-zero remainder ranks as its full width + 1.
  int rank = rest == 0 ? (64 - precision_ + 1)
                       : std::countl_zero(rest) + 1;
  registers_[idx] =
      std::max(registers_[idx], static_cast<uint8_t>(rank));
}

double HyperLogLog::Estimate() const {
  const double m = static_cast<double>(registers_.size());
  double inverse_sum = 0.0;
  size_t zeros = 0;
  for (uint8_t r : registers_) {
    inverse_sum += std::ldexp(1.0, -static_cast<int>(r));
    if (r == 0) ++zeros;
  }
  double raw = Alpha(registers_.size()) * m * m / inverse_sum;
  // Small-range correction: linear counting while registers remain empty.
  if (raw <= 2.5 * m && zeros > 0) {
    return m * std::log(m / static_cast<double>(zeros));
  }
  return raw;
}

void HyperLogLog::Merge(const HyperLogLog& other) {
  assert(precision_ == other.precision_);
  for (size_t i = 0; i < registers_.size(); ++i) {
    registers_[i] = std::max(registers_[i], other.registers_[i]);
  }
}

void HyperLogLog::Clear() {
  std::fill(registers_.begin(), registers_.end(), 0);
}

}  // namespace sigsetdb
