// TablePrinter renders the bench output tables (the reproduced figures and
// tables of the paper) as aligned fixed-width text.

#ifndef SIGSET_UTIL_TABLE_PRINTER_H_
#define SIGSET_UTIL_TABLE_PRINTER_H_

#include <ostream>
#include <string>
#include <vector>

namespace sigsetdb {

// Collects rows of string cells and prints them with per-column alignment.
// Numeric convenience overloads format doubles with a fixed precision.
//
// Example:
//   TablePrinter t({"Dq", "SSF", "BSSF", "NIX"});
//   t.AddRow({"1", "245.0", "138.8", "27.6"});
//   t.Print(std::cout);
class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> header);

  // Appends a data row; must have the same arity as the header.
  void AddRow(std::vector<std::string> cells);

  // Formats a double with `precision` digits after the point.
  static std::string Num(double v, int precision = 1);
  static std::string Int(int64_t v);

  // Writes the table (header, rule, rows) to `os`.
  void Print(std::ostream& os) const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace sigsetdb

#endif  // SIGSET_UTIL_TABLE_PRINTER_H_
