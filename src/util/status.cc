#include "util/status.h"

namespace sigsetdb {

const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "ok";
    case StatusCode::kInvalidArgument:
      return "invalid_argument";
    case StatusCode::kNotFound:
      return "not_found";
    case StatusCode::kOutOfRange:
      return "out_of_range";
    case StatusCode::kAlreadyExists:
      return "already_exists";
    case StatusCode::kFailedPrecondition:
      return "failed_precondition";
    case StatusCode::kCorruption:
      return "corruption";
    case StatusCode::kIoError:
      return "io_error";
    case StatusCode::kUnimplemented:
      return "unimplemented";
    case StatusCode::kInternal:
      return "internal";
  }
  return "unknown";
}

Status MergeWorkerStatuses(const std::vector<Status>& statuses) {
  const Status* first = nullptr;
  size_t first_index = 0;
  size_t failures = 0;
  for (size_t i = 0; i < statuses.size(); ++i) {
    if (statuses[i].ok()) continue;
    ++failures;
    if (first == nullptr) {
      first = &statuses[i];
      first_index = i;
    }
  }
  if (first == nullptr) return Status::OK();
  if (failures == 1) return *first;
  std::string msg = first->message();
  msg += " [worker " + std::to_string(first_index) + "; +" +
         std::to_string(failures - 1) + " more worker failure" +
         (failures - 1 == 1 ? "" : "s") + "]";
  return Status(first->code(), std::move(msg));
}

std::string Status::ToString() const {
  if (ok()) return "ok";
  std::string result = StatusCodeName(code());
  result += ": ";
  result += message();
  return result;
}

}  // namespace sigsetdb
