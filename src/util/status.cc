#include "util/status.h"

namespace sigsetdb {

const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "ok";
    case StatusCode::kInvalidArgument:
      return "invalid_argument";
    case StatusCode::kNotFound:
      return "not_found";
    case StatusCode::kOutOfRange:
      return "out_of_range";
    case StatusCode::kAlreadyExists:
      return "already_exists";
    case StatusCode::kFailedPrecondition:
      return "failed_precondition";
    case StatusCode::kCorruption:
      return "corruption";
    case StatusCode::kIoError:
      return "io_error";
    case StatusCode::kUnimplemented:
      return "unimplemented";
    case StatusCode::kInternal:
      return "internal";
  }
  return "unknown";
}

std::string Status::ToString() const {
  if (ok()) return "ok";
  std::string result = StatusCodeName(code());
  result += ": ";
  result += message();
  return result;
}

}  // namespace sigsetdb
