// Hash utilities for signature generation.
//
// The paper assumes an "ideal" hash: the m one-bits of an element signature
// are uniformly distributed over the F bit positions.  We realize this with
// a counter-mode SplitMix64 finalizer keyed by the element value: position i
// of element e is derived from Mix(e, i) and rejection-sampled to m distinct
// positions.  The mapping is a pure function of (element, F, m), so target
// and query signatures of equal elements always agree — signature search can
// therefore never produce a false negative.

#ifndef SIGSET_UTIL_HASHING_H_
#define SIGSET_UTIL_HASHING_H_

#include <cstdint>

namespace sigsetdb {

// A strong 64->64 bit mixer (SplitMix64 finalizer).
constexpr uint64_t Mix64(uint64_t x) {
  x ^= x >> 30;
  x *= 0xbf58476d1ce4e5b9ULL;
  x ^= x >> 27;
  x *= 0x94d049bb133111ebULL;
  x ^= x >> 31;
  return x;
}

// Combines two 64-bit values into one hash.
constexpr uint64_t HashCombine(uint64_t a, uint64_t b) {
  return Mix64(a ^ (b + 0x9e3779b97f4a7c15ULL + (a << 6) + (a >> 2)));
}

}  // namespace sigsetdb

#endif  // SIGSET_UTIL_HASHING_H_
