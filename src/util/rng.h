// Deterministic pseudo-random number generation for workload synthesis.
//
// All experiments are seeded so that every bench/test run is reproducible.
// The generator is SplitMix64-seeded xoshiro256**, which is fast, has a tiny
// state, and passes BigCrush — more than adequate for sampling synthetic set
// attributes.

#ifndef SIGSET_UTIL_RNG_H_
#define SIGSET_UTIL_RNG_H_

#include <cstdint>
#include <vector>

namespace sigsetdb {

// xoshiro256** 1.0 (Blackman & Vigna), seeded via SplitMix64.
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x5167536574u /* "SigSet" */) { Seed(seed); }

  void Seed(uint64_t seed);

  // Uniform 64-bit value.
  uint64_t Next();

  // Uniform integer in [0, bound), bound > 0.  Uses Lemire's multiply-shift
  // rejection method to avoid modulo bias.
  uint64_t NextBelow(uint64_t bound);

  // Uniform double in [0, 1).
  double NextDouble();

  // Samples `k` distinct values uniformly from [0, n) in increasing order
  // (Floyd's algorithm followed by a sort).  Requires k <= n.
  std::vector<uint64_t> SampleWithoutReplacement(uint64_t n, uint64_t k);

 private:
  uint64_t state_[4];
};

}  // namespace sigsetdb

#endif  // SIGSET_UTIL_RNG_H_
