// A fixed-size dynamic bit vector with the word-wise operations needed by
// signature processing: OR (superimposing element signatures), AND/AND-NOT
// (bit-slice combination and inclusion tests), popcount (signature weight),
// and raw byte access (for storing signatures in pages).

#ifndef SIGSET_UTIL_BITVECTOR_H_
#define SIGSET_UTIL_BITVECTOR_H_

#include <bit>
#include <cassert>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <vector>

namespace sigsetdb {

// BitVector stores `size()` bits packed into 64-bit words.  Bits beyond
// size() inside the last word are kept at zero (an invariant maintained by
// all mutators), so word-wise comparisons and popcounts are exact.
class BitVector {
 public:
  BitVector() = default;

  // Creates a vector of `num_bits` zero bits.
  explicit BitVector(size_t num_bits)
      : num_bits_(num_bits), words_((num_bits + 63) / 64, 0) {}

  BitVector(const BitVector&) = default;
  BitVector& operator=(const BitVector&) = default;
  BitVector(BitVector&&) noexcept = default;
  BitVector& operator=(BitVector&&) noexcept = default;

  size_t size() const { return num_bits_; }
  size_t num_words() const { return words_.size(); }

  // Single-bit accessors assert i < size(): an out-of-range Set would park a
  // one in the padding region of the last word, breaking the invariant every
  // word-wise kernel (equality, popcount, containment) relies on.
  bool Test(size_t i) const {
    assert(i < num_bits_ && "BitVector index out of range");
    return (words_[i >> 6] >> (i & 63)) & 1u;
  }
  void Set(size_t i) {
    assert(i < num_bits_ && "BitVector::Set past size() corrupts padding");
    words_[i >> 6] |= uint64_t{1} << (i & 63);
  }
  void Clear(size_t i) {
    assert(i < num_bits_ && "BitVector index out of range");
    words_[i >> 6] &= ~(uint64_t{1} << (i & 63));
  }
  void Assign(size_t i, bool value) {
    if (value) {
      Set(i);
    } else {
      Clear(i);
    }
  }

  // Sets every bit to zero (one) respectively.  SetAll keeps the tail-bit
  // invariant by masking the last word.
  void ClearAll() { std::fill(words_.begin(), words_.end(), 0); }
  void SetAll() {
    std::fill(words_.begin(), words_.end(), ~uint64_t{0});
    MaskTail();
  }

  // Number of one bits.
  size_t Count() const {
    size_t n = 0;
    for (uint64_t w : words_) n += static_cast<size_t>(std::popcount(w));
    return n;
  }

  bool AnySet() const {
    for (uint64_t w : words_) {
      if (w != 0) return true;
    }
    return false;
  }

  // In-place word-wise operations.  All operands must have equal size().
  void OrWith(const BitVector& other) {
    for (size_t i = 0; i < words_.size(); ++i) words_[i] |= other.words_[i];
  }
  void AndWith(const BitVector& other) {
    for (size_t i = 0; i < words_.size(); ++i) words_[i] &= other.words_[i];
  }
  void AndNotWith(const BitVector& other) {
    for (size_t i = 0; i < words_.size(); ++i) words_[i] &= ~other.words_[i];
  }

  // Returns true iff every one bit of this vector is also set in `super`
  // (i.e. this ⊆ super viewed as bit sets).  This is exactly the signature
  // search condition of the paper: a target signature is a drop for
  //   T ⊇ Q  when  query_sig.IsSubsetOf(target_sig), and for
  //   T ⊆ Q  when  target_sig.IsSubsetOf(query_sig).
  bool IsSubsetOf(const BitVector& super) const {
    for (size_t i = 0; i < words_.size(); ++i) {
      if ((words_[i] & ~super.words_[i]) != 0) return false;
    }
    return true;
  }

  // Returns the number of one bits shared with `other`.
  size_t CountAnd(const BitVector& other) const {
    size_t n = 0;
    for (size_t i = 0; i < words_.size(); ++i) {
      n += static_cast<size_t>(std::popcount(words_[i] & other.words_[i]));
    }
    return n;
  }

  // Calls `fn(index)` for every set bit in increasing index order.
  template <typename Fn>
  void ForEachSetBit(Fn&& fn) const {
    for (size_t w = 0; w < words_.size(); ++w) {
      uint64_t word = words_[w];
      while (word != 0) {
        int bit = std::countr_zero(word);
        fn(w * 64 + static_cast<size_t>(bit));
        word &= word - 1;
      }
    }
  }

  // Returns the indices of all set bits.
  std::vector<size_t> SetBits() const {
    std::vector<size_t> out;
    out.reserve(Count());
    ForEachSetBit([&](size_t i) { out.push_back(i); });
    return out;
  }

  // Serializes into exactly NumBytes() bytes at `dst` / restores from `src`.
  // Layout is little-endian bit order within bytes (bit i of the vector is
  // bit (i % 8) of byte (i / 8)), which is stable across platforms we target.
  size_t NumBytes() const { return (num_bits_ + 7) / 8; }
  void CopyToBytes(uint8_t* dst) const {
    std::memcpy(dst, words_.data(), NumBytes());
  }
  void LoadFromBytes(const uint8_t* src) {
    ClearAll();
    std::memcpy(words_.data(), src, NumBytes());
    MaskTail();
  }

  bool operator==(const BitVector& other) const {
    return num_bits_ == other.num_bits_ && words_ == other.words_;
  }

  const uint64_t* words() const { return words_.data(); }
  uint64_t* mutable_words() { return words_.data(); }

  // Invariant probe: true iff every bit beyond size() in the last word is
  // zero.  Callers writing through mutable_words() (slice combination,
  // kernels) must leave this holding; the bitvector test suite audits every
  // mutator against it.
  bool PaddingIsClean() const {
    size_t tail = num_bits_ & 63;
    if (tail == 0 || words_.empty()) return true;
    return (words_.back() & ~((uint64_t{1} << tail) - 1)) == 0;
  }

 private:
  void MaskTail() {
    size_t tail = num_bits_ & 63;
    if (tail != 0 && !words_.empty()) {
      words_.back() &= (uint64_t{1} << tail) - 1;
    }
  }

  size_t num_bits_ = 0;
  std::vector<uint64_t> words_;
};

}  // namespace sigsetdb

#endif  // SIGSET_UTIL_BITVECTOR_H_
