// Numeric helpers used by the analytical cost model: log-gamma based
// combinatorics (the paper's probabilities involve ratios of binomial
// coefficients with V = 13,000 elements, far beyond what fits in a double
// without working in log space) and a few convenience functions.

#ifndef SIGSET_UTIL_MATH_H_
#define SIGSET_UTIL_MATH_H_

#include <cstdint>

namespace sigsetdb {

// Natural log of n! (exact for small n, lgamma otherwise).
double LogFactorial(int64_t n);

// Natural log of the binomial coefficient C(n, k).  Returns -infinity when
// the coefficient is zero (k < 0 or k > n).
double LogChoose(int64_t n, int64_t k);

// C(a, b) / C(c, d) computed in log space; returns 0 when the numerator is
// zero and +infinity is never produced for the parameter ranges used by the
// model (numerator <= denominator in all call sites).
double ChooseRatio(int64_t a, int64_t b, int64_t c, int64_t d);

// Hypergeometric point mass: probability that a uniform random Dt-subset of a
// V-element domain has exactly j elements inside a fixed Dq-subset,
//   P(j) = C(Dq, j) * C(V - Dq, Dt - j) / C(V, Dt).
double HypergeometricPmf(int64_t v, int64_t dq, int64_t dt, int64_t j);

// Integer ceiling division for non-negative operands.
constexpr int64_t CeilDiv(int64_t a, int64_t b) { return (a + b - 1) / b; }

}  // namespace sigsetdb

#endif  // SIGSET_UTIL_MATH_H_
