#include "util/thread_pool.h"

#include <exception>

namespace sigsetdb {

namespace {
// Set for the lifetime of a worker's loop; lets ParallelFor detect nested
// use and fall back to inline execution instead of deadlocking.
thread_local bool t_on_pool_worker = false;
}  // namespace

bool ThreadPool::OnWorkerThread() { return t_on_pool_worker; }

ThreadPool::ThreadPool(size_t num_threads) {
  threads_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    threads_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (std::thread& t : threads_) t.join();
}

void ThreadPool::WorkerLoop() {
  t_on_pool_worker = true;
  for (;;) {
    std::packaged_task<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stop_ set and nothing left to drain
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();  // packaged_task captures exceptions into its future
  }
}

std::future<void> ThreadPool::Submit(std::function<void()> fn) {
  std::packaged_task<void()> task(std::move(fn));
  std::future<void> future = task.get_future();
  if (threads_.empty()) {
    task();  // inline degradation; the future still carries any exception
    return future;
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.push_back(std::move(task));
  }
  cv_.notify_one();
  return future;
}

void ThreadPool::ParallelFor(
    size_t n, size_t num_workers,
    const std::function<void(size_t worker, size_t begin, size_t end)>& fn) {
  if (n == 0) return;
  if (num_workers == 0) num_workers = 1;
  if (num_workers > n) num_workers = n;

  // Contiguous ranges: the first n % W ranges get one extra item.
  const size_t base = n / num_workers;
  const size_t extra = n % num_workers;
  auto range_of = [&](size_t w, size_t* begin, size_t* end) {
    *begin = w * base + (w < extra ? w : extra);
    *end = *begin + base + (w < extra ? 1 : 0);
  };

  if (num_workers == 1 || threads_.empty() || OnWorkerThread()) {
    // Serial fallback (including nested calls from a pool worker, which must
    // not wait on the queue their own thread is supposed to drain).
    for (size_t w = 0; w < num_workers; ++w) {
      size_t begin, end;
      range_of(w, &begin, &end);
      fn(w, begin, end);
    }
    return;
  }

  std::vector<std::future<void>> futures;
  futures.reserve(num_workers);
  for (size_t w = 0; w < num_workers; ++w) {
    size_t begin, end;
    range_of(w, &begin, &end);
    futures.push_back(Submit([&fn, w, begin, end] { fn(w, begin, end); }));
  }
  // Wait for every chunk before surfacing a failure: callers merge
  // per-worker state after ParallelFor returns, so no chunk may still be
  // running when we leave — even on error.
  std::exception_ptr first_error;
  for (std::future<void>& f : futures) {
    try {
      f.get();
    } catch (...) {
      if (!first_error) first_error = std::current_exception();
    }
  }
  if (first_error) std::rethrow_exception(first_error);
}

}  // namespace sigsetdb
