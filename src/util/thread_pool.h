// A fixed-width thread pool for intra-query parallelism.
//
// The paper's BSSF retrieval cost is dominated by two embarrassingly
// parallel loops — AND/OR-combining bit slices (§4.2, §5.1.3/§5.2.2) and
// resolving false drops against the object store (§3.1).  Both are
// partitioned into contiguous chunks handed to this pool; there is no work
// stealing (chunks are statically sized, the work per item is uniform page
// I/O, and determinism of the merged result matters more than tail latency).
//
// Design constraints honoured here:
//   * No deadlock on nested use: a ParallelFor issued from inside a pool
//     worker runs inline on that worker (detected via a thread-local flag).
//   * Exceptions thrown by tasks propagate to the waiter (Submit through the
//     returned future, ParallelFor by rethrowing the first chunk failure
//     after all chunks finished — partial-state merging stays safe).
//   * A pool constructed with zero threads degrades to inline execution, so
//     callers never special-case "no pool".

#ifndef SIGSET_UTIL_THREAD_POOL_H_
#define SIGSET_UTIL_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <vector>

namespace sigsetdb {

// Fixed set of worker threads draining a FIFO task queue.
class ThreadPool {
 public:
  // Spawns `num_threads` workers.  Zero is allowed: tasks then execute
  // inline in Submit/ParallelFor on the calling thread.
  explicit ThreadPool(size_t num_threads);

  // Drains outstanding tasks, then joins the workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  size_t num_threads() const { return threads_.size(); }

  // Enqueues `fn`.  The returned future becomes ready when `fn` finished and
  // rethrows anything `fn` threw.  Never blocks the caller.
  std::future<void> Submit(std::function<void()> fn);

  // Splits [0, n) into `num_workers` contiguous ranges and runs
  // fn(worker, begin, end) for each non-empty range on the pool, blocking
  // until all finished.  `worker` is the dense range index in [0,
  // num_workers), so callers can keep per-worker accumulators and merge them
  // deterministically in worker order afterwards.  Rethrows the first chunk
  // exception after every chunk completed.  When called from a pool worker
  // (nested parallelism) or on an empty pool, all ranges run inline on the
  // calling thread as worker 0..num_workers-1 — same results, no deadlock.
  void ParallelFor(size_t n, size_t num_workers,
                   const std::function<void(size_t worker, size_t begin,
                                            size_t end)>& fn);

  // True when the calling thread is one of this process's pool workers.
  static bool OnWorkerThread();

 private:
  void WorkerLoop();

  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<std::packaged_task<void()>> queue_;
  bool stop_ = false;
  std::vector<std::thread> threads_;
};

// How a query is allowed to parallelize.  Passed (by pointer, nullable)
// through the executor into the BSSF slice scans and candidate resolution;
// a null context — or one with a null pool — means serial execution, which
// is byte-identical to the pre-parallel code path.
struct ParallelExecutionContext {
  ThreadPool* pool = nullptr;
  // Upper bound on concurrent workers per operation (0 = pool width).
  size_t max_workers = 0;

  bool parallel() const { return pool != nullptr && pool->num_threads() > 0; }

  // Workers to use for an operation over `n` items: never more than `n`,
  // never more than the pool offers, at least 1.
  size_t WorkersFor(size_t n) const {
    if (!parallel() || n <= 1) return 1;
    size_t cap = pool->num_threads();
    if (max_workers != 0 && max_workers < cap) cap = max_workers;
    if (cap < 1) cap = 1;
    return n < cap ? n : cap;
  }
};

}  // namespace sigsetdb

#endif  // SIGSET_UTIL_THREAD_POOL_H_
