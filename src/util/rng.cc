#include "util/rng.h"

#include <algorithm>
#include <cassert>
#include <unordered_set>

namespace sigsetdb {

namespace {

uint64_t SplitMix64(uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

void Rng::Seed(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : state_) s = SplitMix64(sm);
  // Avoid the (astronomically unlikely) all-zero state.
  if ((state_[0] | state_[1] | state_[2] | state_[3]) == 0) state_[0] = 1;
}

uint64_t Rng::Next() {
  uint64_t result = Rotl(state_[1] * 5, 7) * 9;
  uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = Rotl(state_[3], 45);
  return result;
}

uint64_t Rng::NextBelow(uint64_t bound) {
  assert(bound > 0);
  // Lemire's nearly-divisionless method.
  uint64_t x = Next();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  uint64_t low = static_cast<uint64_t>(m);
  if (low < bound) {
    uint64_t threshold = -bound % bound;
    while (low < threshold) {
      x = Next();
      m = static_cast<__uint128_t>(x) * bound;
      low = static_cast<uint64_t>(m);
    }
  }
  return static_cast<uint64_t>(m >> 64);
}

double Rng::NextDouble() {
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

std::vector<uint64_t> Rng::SampleWithoutReplacement(uint64_t n, uint64_t k) {
  assert(k <= n);
  // Floyd's subset sampling: k iterations, expected O(k) hash operations.
  std::unordered_set<uint64_t> chosen;
  chosen.reserve(static_cast<size_t>(k) * 2);
  for (uint64_t j = n - k; j < n; ++j) {
    uint64_t t = NextBelow(j + 1);
    if (!chosen.insert(t).second) chosen.insert(j);
  }
  std::vector<uint64_t> out(chosen.begin(), chosen.end());
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace sigsetdb
