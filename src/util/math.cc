#include "util/math.h"

#include <cmath>
#include <limits>

namespace sigsetdb {

double LogFactorial(int64_t n) {
  if (n <= 1) return 0.0;
  // Not std::lgamma: it writes the process-global `signgam`, which is a
  // data race when concurrent readers plan queries (the argument is always
  // positive here, so the sign output is irrelevant anyway).
#if defined(__GLIBC__) || defined(__APPLE__)
  int sign = 0;
  return lgamma_r(static_cast<double>(n) + 1.0, &sign);
#else
  return std::lgamma(static_cast<double>(n) + 1.0);
#endif
}

double LogChoose(int64_t n, int64_t k) {
  if (k < 0 || k > n || n < 0) {
    return -std::numeric_limits<double>::infinity();
  }
  return LogFactorial(n) - LogFactorial(k) - LogFactorial(n - k);
}

double ChooseRatio(int64_t a, int64_t b, int64_t c, int64_t d) {
  double log_num = LogChoose(a, b);
  double log_den = LogChoose(c, d);
  if (std::isinf(log_num) && log_num < 0) return 0.0;
  return std::exp(log_num - log_den);
}

double HypergeometricPmf(int64_t v, int64_t dq, int64_t dt, int64_t j) {
  double log_p = LogChoose(dq, j) + LogChoose(v - dq, dt - j) - LogChoose(v, dt);
  if (std::isinf(log_p) && log_p < 0) return 0.0;
  return std::exp(log_p);
}

}  // namespace sigsetdb
